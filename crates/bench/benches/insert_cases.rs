//! Figure 7 ablation: within-page insert (case 2a) vs page-overflow
//! insert (case 2b), as a function of the insert volume around the free
//! space of one page.

use mbxq_bench::harness::{BatchSize, BenchmarkId, Criterion};
use mbxq_bench::{criterion_group, criterion_main};
use mbxq_storage::{InsertCase, InsertPosition, PageConfig, PagedDoc};
use mbxq_xml::Document;

fn flat_doc(children: usize) -> String {
    let mut s = String::from("<root>");
    for i in 0..children {
        s.push_str(&format!("<c{i}/>"));
    }
    s.push_str("</root>");
    s
}

fn subtree(n: usize) -> mbxq_xml::Node {
    let mut s = String::from("<sub>");
    for i in 0..n.saturating_sub(1) {
        s.push_str(&format!("<x{i}/>"));
    }
    s.push_str("</sub>");
    Document::parse_fragment(&s).unwrap()
}

fn bench_cases(c: &mut Criterion) {
    // Page of 256 tuples filled to 80 % → ~51 free slots per page.
    let cfg = PageConfig::new(256, 80).unwrap();
    let base = PagedDoc::parse_str(&flat_doc(2000), cfg).unwrap();
    let target = base.pre_to_node(100).unwrap();
    let mut g = c.benchmark_group("insert_cases");
    g.sample_size(20);
    for &volume in &[8usize, 32, 48, 64, 128, 512] {
        let sub = subtree(volume);
        // Classify once for the label.
        let case = {
            let mut d = base.clone();
            let r = d.insert(InsertPosition::After(target), &sub).unwrap();
            match r.case {
                InsertCase::WithinPage => "2a",
                InsertCase::PageOverflow => "2b",
            }
        };
        g.bench_with_input(
            BenchmarkId::new(format!("case{case}"), volume),
            &volume,
            |b, _| {
                b.iter_batched(
                    || base.clone(),
                    |mut d| d.insert(InsertPosition::After(target), &sub).unwrap(),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_cases);
criterion_main!(benches);
