//! §3.2 ablation as a Criterion bench: time for N concurrent insert
//! transactions into disjoint subtrees, under delta vs exclusive
//! ancestor locking.

use mbxq_bench::harness::{BenchmarkId, Criterion};
use mbxq_bench::{criterion_group, criterion_main};
use mbxq_storage::{InsertPosition, PageConfig, PagedDoc};
use mbxq_txn::{wal::Wal, AncestorLockMode, Store, StoreConfig};
use mbxq_xml::Document;
use mbxq_xpath::XPath;
use std::time::Duration;

const WORKERS: usize = 4;
const TXNS_PER_WORKER: usize = 10;

fn build_store(mode: AncestorLockMode) -> Store {
    let mut xml = String::from("<site><regions>");
    for w in 0..WORKERS {
        xml.push_str(&format!("<region{w}>"));
        for i in 0..600 {
            xml.push_str(&format!("<item id=\"r{w}i{i}\"/>"));
        }
        xml.push_str(&format!("</region{w}>"));
    }
    xml.push_str("</regions></site>");
    let doc = PagedDoc::parse_str(&xml, PageConfig::new(512, 80).unwrap()).unwrap();
    Store::open(
        doc,
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: mode,
            lock_timeout: Duration::from_secs(20),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    )
}

fn run_burst(store: &Store) {
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            s.spawn(move || {
                let path = XPath::parse(&format!("/site/regions/region{w}")).unwrap();
                let scan = XPath::parse("count(//item)").unwrap();
                let frag = Document::parse_fragment("<item/>").unwrap();
                for _ in 0..TXNS_PER_WORKER {
                    let mut t = store.begin();
                    let target = t.select(&path).unwrap()[0];
                    t.insert(InsertPosition::LastChildOf(target), &frag)
                        .unwrap();
                    // Transaction read work performed while the locks
                    // are held — serialized by exclusive root locking,
                    // parallel under delta maintenance.
                    let _ = scan.eval(t.view(), &[0]);
                    t.commit().unwrap();
                }
            });
        }
    });
}

fn bench_concurrency(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrency");
    g.sample_size(10);
    for (label, mode) in [
        ("delta", AncestorLockMode::Delta),
        ("exclusive", AncestorLockMode::Exclusive),
    ] {
        g.bench_with_input(BenchmarkId::new(label, WORKERS), &mode, |b, &mode| {
            b.iter_batched(
                || build_store(mode),
                |store| run_burst(&store),
                mbxq_bench::harness::BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
