//! Criterion version of the Figure 3 ablation: insert cost on the naive
//! shifting store (O(N)) vs the paged store (O(update volume)) as the
//! document grows.

use mbxq_bench::harness::{BatchSize, BenchmarkId, Criterion};
use mbxq_bench::paper_page_config;
use mbxq_bench::{criterion_group, criterion_main};
use mbxq_storage::{InsertPosition, Kind, NaiveDoc, PagedDoc, TreeView};
use mbxq_xmark::{generate, XMarkConfig};
use mbxq_xml::Document;

fn bench_insert(c: &mut Criterion) {
    let subtree = Document::parse_fragment("<k><l/><m/></k>").unwrap();
    let mut g = c.benchmark_group("insert_cost");
    g.sample_size(15);
    for &scale in &[0.002, 0.008, 0.032] {
        let xml = generate(&XMarkConfig::scaled(scale, 7));
        let naive0 = NaiveDoc::parse_str(&xml).unwrap();
        let paged0 = PagedDoc::parse_str(&xml, paper_page_config()).unwrap();
        let nodes = naive0.len();
        let mid = (nodes as u64) / 2;
        let target_pre = (0..=mid)
            .rev()
            .find(|&p| naive0.kind(p) == Some(Kind::Element))
            .unwrap();
        let target = naive0.pre_to_node(target_pre).unwrap();
        g.bench_with_input(BenchmarkId::new("naive", nodes), &nodes, |b, _| {
            b.iter_batched(
                || naive0.clone(),
                |mut d| {
                    d.insert(InsertPosition::LastChildOf(target), &subtree)
                        .unwrap()
                },
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("paged", nodes), &nodes, |b, _| {
            b.iter_batched(
                || paged0.clone(),
                |mut d| {
                    d.insert(InsertPosition::LastChildOf(target), &subtree)
                        .unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
