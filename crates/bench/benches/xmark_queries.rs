//! Criterion version of the Figure 9 measurement: every XMark query on
//! both schemas at a fixed small scale.

use mbxq_bench::build_both;
use mbxq_bench::harness::{BenchmarkId, Criterion};
use mbxq_bench::{criterion_group, criterion_main};
use mbxq_xmark::{run_query, QUERY_COUNT};

fn bench_queries(c: &mut Criterion) {
    let (ro, up, _) = build_both(0.004, 42);
    let mut g = c.benchmark_group("xmark");
    g.sample_size(20);
    for q in 1..=QUERY_COUNT {
        g.bench_with_input(BenchmarkId::new("ro", q), &q, |b, &q| {
            b.iter(|| run_query(&ro, q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("up", q), &q, |b, &q| {
            b.iter(|| run_query(&up, q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
