//! §2.2 ablation: staircase-join axis steps (with size-based skipping
//! and unused-run skipping) vs a naive full-scan baseline, on both
//! schemas.

use mbxq_axes::{step, Axis, NodeTest};
use mbxq_bench::build_both;
use mbxq_bench::harness::{BenchmarkId, Criterion};
use mbxq_bench::{criterion_group, criterion_main};
use mbxq_storage::{Kind, TreeView};
use mbxq_xml::QName;
use mbxq_xpath::XPath;

/// Full-scan child "join": test every tuple in the document instead of
/// jumping sibling to sibling.
fn child_full_scan<V: TreeView>(view: &V, ctx: &[u64], name: &QName) -> Vec<u64> {
    let mut out = Vec::new();
    for &c in ctx {
        let lvl = view.level(c).unwrap();
        for p in 0..view.pre_end() {
            if view.level(p) == Some(lvl + 1)
                && view.kind(p) == Some(Kind::Element)
                && view.parent_of(p) == Some(c)
                && view
                    .name_id(p)
                    .and_then(|q| view.pool().qname(q))
                    .is_some_and(|q| q == name)
            {
                out.push(p);
            }
        }
    }
    out
}

fn bench_staircase(c: &mut Criterion) {
    let (ro, up, _) = build_both(0.004, 42);
    let items_ro = XPath::parse("//item")
        .unwrap()
        .select_from_root(&ro)
        .unwrap();
    let items_up = XPath::parse("//item")
        .unwrap()
        .select_from_root(&up)
        .unwrap();
    let name = QName::local("name");
    let test = NodeTest::Name(name.clone());

    let mut g = c.benchmark_group("staircase");
    g.sample_size(20);
    g.bench_function(BenchmarkId::new("child_staircase", "ro"), |b| {
        b.iter(|| step(&ro, &items_ro, Axis::Child, &test))
    });
    g.bench_function(BenchmarkId::new("child_staircase", "up"), |b| {
        b.iter(|| step(&up, &items_up, Axis::Child, &test))
    });
    g.bench_function(BenchmarkId::new("child_fullscan", "ro"), |b| {
        b.iter(|| child_full_scan(&ro, &items_ro, &name))
    });
    // Verify equivalence once.
    assert_eq!(
        step(&ro, &items_ro, Axis::Child, &test),
        child_full_scan(&ro, &items_ro, &name)
    );

    // Descendant step from the root: the skipping-over-unused-tuples
    // path of the updateable view.
    let root_ro: Vec<u64> = ro.root_pre().into_iter().collect();
    let root_up: Vec<u64> = up.root_pre().into_iter().collect();
    g.bench_function(BenchmarkId::new("descendant_item", "ro"), |b| {
        b.iter(|| step(&ro, &root_ro, Axis::Descendant, &test))
    });
    g.bench_function(BenchmarkId::new("descendant_item", "up"), |b| {
        b.iter(|| step(&up, &root_up, Axis::Descendant, &test))
    });
    g.finish();
}

criterion_group!(benches, bench_staircase);
criterion_main!(benches);
