//! Multi-threaded XMark mixed-workload driver — the concurrent-throughput
//! measurement behind the short-publish commit pipeline and group-commit
//! WAL batching. Emits `BENCH_workload.json`.
//!
//! The paper's claim (§3.2, Figure 8) is that the pre/post plane stays
//! *readable at full speed while being updated*: readers take snapshots
//! without blocking, writers lock pages — not the document — and the
//! commit's crucial stage "consists of a single I/O". This binary puts a
//! number on that under real thread-level concurrency: a grid of
//! (reader, writer) thread counts runs against one XMark store, readers
//! drawing queries from the hand-compiled Q1–Q20 plans on lock-free
//! snapshots, writers committing insert/delete/attribute bursts against
//! their regions through a **file-backed WAL**, so log I/O is real.
//!
//! Every grid point runs under both commit pipelines:
//!
//! * `short` — speculation + group commit; the global lock covers only
//!   the stamp-checked pointer swap (this PR);
//! * `long` — the previous behavior: one global lock across apply,
//!   validation, the WAL write and publish, so N writers queue for N
//!   log I/Os (the ablation baseline).
//!
//! Output per grid point: commit/read throughput, p50/p99 latencies and
//! the group-commit batching counters. Expected shape: `short` writer
//! throughput scales with writer count while `long` flattens against
//! the serialized log; reader throughput is essentially independent of
//! writer load in both (snapshots never touch a lock).
//!
//! Usage: `cargo run --release --bin workload [--smoke] [--secs N]`

use mbxq_storage::{InsertPosition, PageConfig, PagedDoc};
use mbxq_txn::wal::Wal;
use mbxq_txn::{AncestorLockMode, CommitPipeline, Store, StoreConfig};
use mbxq_xmark::rng::StdRng;
use mbxq_xmark::{generate, run_query_opts, XMarkConfig, QUERY_COUNT};
use mbxq_xml::Document;
use mbxq_xpath::{EvalOptions, XPath};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Writer target regions with their XMark item shares (matching the
/// generator's continental skew; writers cycle through them).
const REGIONS: [(&str, f64); 6] = [
    ("africa", 0.10),
    ("asia", 0.30),
    ("australia", 0.05),
    ("europe", 0.25),
    ("namerica", 0.25),
    ("samerica", 0.05),
];

/// Original `item{n}` id ranges per region, replicating the generator's
/// allocation (sequential ids, region order, last region takes the
/// remainder).
fn region_item_ranges(total: usize) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::with_capacity(REGIONS.len());
    let mut next = 0usize;
    for (i, &(_, share)) in REGIONS.iter().enumerate() {
        let n = if i + 1 == REGIONS.len() {
            total - next
        } else {
            (((total as f64) * share).round() as usize).min(total - next)
        };
        ranges.push(next..next + n);
        next += n;
    }
    ranges
}

/// Latency bucket for one XMark query class (Q1–Q20).
struct QueryBucket {
    q: usize,
    count: usize,
    p50_us: f64,
    p99_us: f64,
}

/// One grid point's outcome.
struct Cell {
    pipeline: &'static str,
    readers: usize,
    writers: usize,
    query_threads: usize,
    secs: f64,
    commits: u64,
    timeouts: u64,
    reads: u64,
    commit_p50_us: f64,
    commit_p99_us: f64,
    read_p50_us: f64,
    read_p99_us: f64,
    per_query: Vec<QueryBucket>,
    wal_batches: u64,
    wal_records: u64,
    wal_max_batch: u64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1000.0 // ns → µs
}

/// Runs one grid point: `writers` writer threads and `readers` reader
/// threads hammering a fresh store shredded from `xml` for `secs`.
fn run_cell(
    xml: &str,
    pipeline: CommitPipeline,
    readers: usize,
    writers: usize,
    query_threads: usize,
    secs: f64,
    wal_path: &std::path::Path,
) -> Cell {
    let _ = std::fs::remove_file(wal_path);
    // 256-tuple pages (80 % fill, the paper's updateable-schema head
    // room): small enough that the six XMark regions land on disjoint
    // logical pages, so writers bound to different regions contend on
    // the commit pipeline — the thing being measured — rather than on
    // page locks.
    let doc =
        PagedDoc::parse_str(xml, PageConfig::new(256, 80).expect("valid")).expect("shred XMark");
    let store = Store::open(
        doc,
        Wal::file(wal_path).expect("open file WAL"),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(250),
            validate_on_commit: false,
            pipeline,
            query_threads,
            ..StoreConfig::default()
        },
    );

    let stop = AtomicBool::new(false);
    let commits = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    let commit_lat = Mutex::new(Vec::<u64>::new());
    // (query number, latency ns) pairs — kept per class so p50/p99 can
    // be bucketed by Q1–Q20 after the run.
    let read_lat = Mutex::new(Vec::<(usize, u64)>::new());
    // Original items in the document (auctions use `<itemref`, so this
    // counts exactly the region items).
    let item_ranges = region_item_ranges(xml.match_indices("<item ").count());

    std::thread::scope(|s| {
        for r in 0..readers {
            let store = &store;
            let stop = &stop;
            let reads = &reads;
            let read_lat = &read_lat;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xecad + r as u64);
                // Readers share the store's morsel pool (if configured):
                // every snapshot query below runs morsel-parallel when
                // the cost model clears it, sequential otherwise.
                let opts = match store.query_pool() {
                    Some(pool) => EvalOptions::new().pool(pool),
                    None => EvalOptions::new(),
                };
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let q = 1 + rng.gen_range(0..QUERY_COUNT);
                    let t0 = Instant::now();
                    let snap = store.snapshot();
                    let out = run_query_opts(snap.as_ref(), q, &opts).expect("XMark query");
                    lat.push((q, t0.elapsed().as_nanos() as u64));
                    std::hint::black_box(out);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                read_lat.lock().unwrap().append(&mut lat);
            });
        }
        for w in 0..writers {
            let store = &store;
            let stop = &stop;
            let commits = &commits;
            let timeouts = &timeouts;
            let commit_lat = &commit_lat;
            let item_ranges = &item_ranges;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x17e6 + w as u64);
                let (region, _) = REGIONS[w % REGIONS.len()];
                // Anchor pool: the *interior* originals of this writer's
                // region (10 %–70 % of its id range). Region edges are
                // excluded on purpose: a region's first/last items share
                // logical pages with the neighboring region's element,
                // so edge writes would measure page-lock conflicts
                // between writers instead of the commit pipeline. All
                // inserts/updates/deletes anchor on pool items, keeping
                // each writer's lock set inside its own region.
                let range = &item_ranges[w % REGIONS.len()];
                let lo = range.start + range.len() / 10;
                let hi = range.start + (range.len() * 7) / 10;
                let mut pool: Vec<String> =
                    (lo..hi.max(lo + 1)).map(|n| format!("item{n}")).collect();
                let mut minted = 0usize; // ids this writer created
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let mut t = store.begin();
                    // A burst of 1–3 mixed operations per transaction,
                    // each anchored on a pool item found by an XPath
                    // selection (the transaction's read work).
                    let burst = 1 + rng.gen_range(0..3);
                    let mut staged: Vec<(bool, String)> = Vec::new();
                    let mut staged_deletes = 0usize;
                    let mut failed = false;
                    for _ in 0..burst {
                        let anchor_id = pool[rng.gen_range(0..pool.len())].clone();
                        let sel = XPath::parse(&format!(
                            "/site/regions/{region}/item[@id='{anchor_id}']"
                        ))
                        .expect("item path");
                        let anchor = match t.select(&sel) {
                            Ok(nodes) if !nodes.is_empty() => nodes[0],
                            Ok(_) => continue, // staged delete won this anchor
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        };
                        let roll = rng.gen_range(0..10);
                        let outcome = if roll < 5 {
                            // Insert a fresh item next to the anchor.
                            let id = format!("bench-w{w}-{minted}");
                            minted += 1;
                            let frag = Document::parse_fragment(&format!(
                                "<item id=\"{id}\"><name>workload item</name></item>"
                            ))
                            .expect("fragment");
                            let r = t.insert(InsertPosition::After(anchor), &frag);
                            if r.is_ok() {
                                staged.push((true, id));
                            }
                            r
                        } else if roll < 8 || pool.len() - staged_deletes <= 2 {
                            // Update: re-flag the anchor. (The pool-floor
                            // guard counts deletes already staged in this
                            // burst — they leave `pool` only at commit,
                            // but a multi-delete burst must not be able
                            // to drain it below the floor.)
                            t.set_attribute(anchor, &mbxq_xml::QName::local("featured"), "yes")
                        } else {
                            // Delete the anchor item.
                            let r = t.delete(anchor);
                            if r.is_ok() {
                                staged.push((false, anchor_id));
                                staged_deletes += 1;
                            }
                            r
                        };
                        if outcome.is_err() {
                            failed = true;
                            break;
                        }
                    }
                    if failed || t.staged_ops() == 0 {
                        if failed {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        t.abort();
                        continue;
                    }
                    let t0 = Instant::now();
                    match t.commit() {
                        Ok(_) => {
                            lat.push(t0.elapsed().as_nanos() as u64);
                            commits.fetch_add(1, Ordering::Relaxed);
                            for (inserted, id) in staged {
                                if inserted {
                                    pool.push(id);
                                } else {
                                    pool.retain(|x| x != &id);
                                }
                            }
                        }
                        Err(_) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                commit_lat.lock().unwrap().append(&mut lat);
            });
        }
        let t0 = Instant::now();
        while t0.elapsed().as_secs_f64() < secs {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        store.locked_pages(),
        0,
        "workload must not strand page locks"
    );
    mbxq_storage::invariants::check_paged(store.snapshot().as_ref())
        .expect("final state invariant-clean");

    let stats = store.group_commit_stats();
    let mut clat = commit_lat.into_inner().unwrap();
    let tagged = read_lat.into_inner().unwrap();
    clat.sort_unstable();
    // Bucket read latencies by query class, then flatten for the
    // aggregate percentiles.
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); QUERY_COUNT + 1];
    for &(q, ns) in &tagged {
        buckets[q].push(ns);
    }
    let per_query: Vec<QueryBucket> = buckets
        .iter_mut()
        .enumerate()
        .skip(1)
        .filter(|(_, b)| !b.is_empty())
        .map(|(q, b)| {
            b.sort_unstable();
            QueryBucket {
                q,
                count: b.len(),
                p50_us: percentile(b, 50.0),
                p99_us: percentile(b, 99.0),
            }
        })
        .collect();
    let mut rlat: Vec<u64> = tagged.iter().map(|&(_, ns)| ns).collect();
    rlat.sort_unstable();
    let _ = std::fs::remove_file(wal_path);
    Cell {
        pipeline: match pipeline {
            CommitPipeline::Short => "short",
            CommitPipeline::LongLock => "long",
        },
        readers,
        writers,
        query_threads,
        secs,
        commits: commits.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
        reads: reads.load(Ordering::Relaxed),
        commit_p50_us: percentile(&clat, 50.0),
        commit_p99_us: percentile(&clat, 99.0),
        read_p50_us: percentile(&rlat, 50.0),
        read_p99_us: percentile(&rlat, 99.0),
        per_query,
        wal_batches: stats.batches,
        wal_records: stats.records,
        wal_max_batch: stats.max_batch,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let secs = args
        .iter()
        .position(|a| a == "--secs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--secs takes a number"))
        .unwrap_or(if smoke { 0.25 } else { 1.0 });

    let scale = if smoke { 0.002 } else { 0.02 };
    let xml = generate(&XMarkConfig::scaled(scale, 42));
    println!(
        "XMark scale {scale} ({} bytes), {}s per grid point, file-backed WAL",
        xml.len(),
        secs
    );
    let wal_path = std::env::temp_dir().join(format!("mbxq-workload-{}.wal", std::process::id()));

    // Grid rows: (pipeline, readers, writers, query_threads).
    let grid: Vec<(CommitPipeline, usize, usize, usize)> = if smoke {
        // One writer: at smoke scale every region shares a page or two,
        // so two writers would spend the whole (tiny) run in lock waits.
        // query_threads = 2 exercises the morsel pool under concurrency
        // even in CI.
        vec![(CommitPipeline::Short, 2, 1, 2)]
    } else {
        let mut g = Vec::new();
        // Readers × query-threads grid: no writers, so the delta between
        // rows is purely the morsel pool (and its sharing across reader
        // threads).
        for readers in [1, 2, 4] {
            for threads in [0, 2, 4] {
                g.push((CommitPipeline::Short, readers, 0, threads));
            }
        }
        // Writers stay ≤ 6 so each gets its own XMark region (disjoint
        // page sets; page-lock conflicts would otherwise drown the
        // commit-pipeline signal in upgrade-deadlock timeouts).
        for pipeline in [CommitPipeline::Short, CommitPipeline::LongLock] {
            for writers in [1, 2, 4, 6] {
                g.push((pipeline, 0, writers, 0)); // pure writer scaling
                g.push((pipeline, 2, writers, 0)); // mixed workload
            }
        }
        // Mixed workload with the morsel pool on: commit throughput must
        // not regress when readers also fan out across the pool.
        g.push((CommitPipeline::Short, 2, 4, 2));
        g
    };

    println!(
        "{:>6} {:>3}r {:>3}w {:>3}t {:>10} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9} {:>7}",
        "mode",
        "",
        "",
        "",
        "commits/s",
        "timeouts",
        "c.p50 µs",
        "c.p99 µs",
        "reads/s",
        "r.p50 µs",
        "r.p99 µs",
        "batch"
    );
    let mut cells = Vec::new();
    for (pipeline, readers, writers, query_threads) in grid {
        let cell = run_cell(
            &xml,
            pipeline,
            readers,
            writers,
            query_threads,
            secs,
            &wal_path,
        );
        let avg_batch = if cell.wal_batches > 0 {
            cell.wal_records as f64 / cell.wal_batches as f64
        } else {
            0.0
        };
        println!(
            "{:>6} {:>3}r {:>3}w {:>3}t {:>10.0} {:>9} {:>10.1} {:>10.1} {:>10.0} {:>9.1} {:>9.1} {:>7.2}",
            cell.pipeline,
            cell.readers,
            cell.writers,
            cell.query_threads,
            cell.commits as f64 / cell.secs,
            cell.timeouts,
            cell.commit_p50_us,
            cell.commit_p99_us,
            cell.reads as f64 / cell.secs,
            cell.read_p50_us,
            cell.read_p99_us,
            avg_batch,
        );
        cells.push(cell);
    }

    // Per-query-class latency for the reader-only baselines: the rows
    // where the morsel pool's effect on individual query shapes (scan-
    // heavy Q6/Q7/Q14 vs point-lookup Q1) is cleanest.
    for c in cells.iter().filter(|c| c.writers == 0 && c.readers == 2) {
        println!(
            "per-query read latency ({} {}r {}t):",
            c.pipeline, c.readers, c.query_threads
        );
        for b in &c.per_query {
            println!(
                "  Q{:02}: n={:<6} p50={:>9.1} µs  p99={:>9.1} µs",
                b.q, b.count, b.p50_us, b.p99_us
            );
        }
    }

    if smoke {
        let c = &cells[0];
        assert!(c.commits > 0, "smoke: writers must commit");
        assert!(c.reads > 0, "smoke: readers must read");
        assert_eq!(
            c.wal_records, c.commits,
            "every commit must be durably logged exactly once"
        );
        println!("smoke mode: skipping BENCH_workload.json");
        return;
    }

    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let avg_batch = if c.wal_batches > 0 {
            c.wal_records as f64 / c.wal_batches as f64
        } else {
            0.0
        };
        let mut per_query = String::from("[");
        for (i, b) in c.per_query.iter().enumerate() {
            if i > 0 {
                per_query.push_str(", ");
            }
            let _ = write!(
                per_query,
                "{{\"q\": {}, \"count\": {}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
                b.q, b.count, b.p50_us, b.p99_us
            );
        }
        per_query.push(']');
        let _ = write!(
            json,
            "  {{\"pipeline\": \"{}\", \"readers\": {}, \"writers\": {}, \
             \"query_threads\": {}, \"secs\": {}, \
             \"commits\": {}, \"timeouts\": {}, \"commits_per_s\": {:.1}, \
             \"commit_p50_us\": {:.2}, \"commit_p99_us\": {:.2}, \
             \"reads\": {}, \"reads_per_s\": {:.1}, \
             \"read_p50_us\": {:.2}, \"read_p99_us\": {:.2}, \
             \"per_query\": {per_query}, \
             \"wal_batches\": {}, \"wal_records\": {}, \"wal_max_batch\": {}, \
             \"wal_avg_batch\": {:.3}, {host}}}",
            c.pipeline,
            c.readers,
            c.writers,
            c.query_threads,
            c.secs,
            c.commits,
            c.timeouts,
            c.commits as f64 / c.secs,
            c.commit_p50_us,
            c.commit_p99_us,
            c.reads,
            c.reads as f64 / c.secs,
            c.read_p50_us,
            c.read_p99_us,
            c.wal_batches,
            c.wal_records,
            c.wal_max_batch,
            avg_batch,
            host = mbxq_bench::host_json_fields(),
        );
    }
    json.push_str("\n]\n");
    std::fs::write("BENCH_workload.json", &json).expect("write BENCH_workload.json");
    println!("wrote BENCH_workload.json");
}
