//! Value-predicate strategy ablation over an XMark query set — the
//! measurement behind the content-index layer. Emits `BENCH_value.json`.
//!
//! Every query carries a value predicate the rewriter lowers to a
//! `ValueProbe` operator; each is executed three ways on both storage
//! schemas:
//!
//! * **scan** — [`ValueChoice::ForceScan`]: the axis step runs, then
//!   the predicate is evaluated against every candidate (the scalar
//!   path every value predicate took before this layer existed);
//! * **probe** — [`ValueChoice::ForceProbe`]: the content index serves
//!   the `(name, value)` lookup and a range semijoin restores the
//!   structural relationship;
//! * **cost** — [`ValueChoice::Auto`]: the per-step model decides from
//!   the posting-list estimate vs the context's region sizes.
//!
//! All three arms must select identical nodes (asserted). The summary
//! checks the two claims the PR makes: the probe beats the forced scan
//! by ≥ 10x on at least one selective query, and the cost-chosen arm
//! stays within 1.5x of the best arm on every query. `--smoke` runs a
//! tiny scale once (CI guard; no JSON rewrite).

use mbxq_bench::{build_both, time_min};
use mbxq_storage::TreeView;
use mbxq_xpath::{EvalOptions, EvalStats, ValueChoice, XPath};
use std::fmt::Write as _;

/// The ablation query set: attribute / self / child sources, equality
/// and ranges, selective and non-selective.
const QUERIES: &[(&str, &str)] = &[
    ("attr_point_item", "//item[@id = \"item0\"]"),
    (
        "attr_point_person",
        "/site/people/person[@id = \"person0\"]/name",
    ),
    ("attr_point_ref", "//personref[@person = \"person3\"]"),
    ("child_eq_missing", "//person[name = \"Qqq Zzz\"]"),
    ("child_range_high", "//closed_auction[price > 195]"),
    ("child_range_half", "//closed_auction[price > 100]"),
    ("self_range_high", "//price[. > 195]"),
    ("self_range_all", "//price[. < 1000]"),
    ("child_eq_quantity", "//item[quantity = 1]"),
    ("attr_star", "//*[@person = \"person0\"]"),
];

fn arm_opts(value: ValueChoice) -> EvalOptions<'static> {
    EvalOptions::new().value(value)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 0.003 } else { 0.03 };
    let reps = if smoke { 2 } else { 9 };

    let (ro, up, bytes) = build_both(scale, 42);
    println!("XMark scale {scale} ({bytes} B, {} nodes)", ro.used_count());

    let mut json = String::from("[\n");
    let mut first = true;
    let mut max_speedup = 0.0f64;
    let mut max_auto_over_best = 0.0f64;

    for &(label, path) in QUERIES {
        let xp = XPath::parse(path).expect(path);
        assert!(
            xp.explain_physical().contains("value-probe"),
            "{label}: query must lower to a value probe:\n{}",
            xp.explain_physical()
        );

        // Correctness first: all arms agree on both schemas.
        let want_ro = xp
            .select_from_root_opts(&ro, &arm_opts(ValueChoice::ForceScan))
            .expect(path);
        let want_up = xp
            .select_from_root_opts(&up, &arm_opts(ValueChoice::ForceScan))
            .expect(path);
        for arm in [ValueChoice::ForceProbe, ValueChoice::Auto] {
            let got = xp.select_from_root_opts(&ro, &arm_opts(arm)).expect(path);
            assert_eq!(got, want_ro, "{label}: {arm:?} diverged on ro");
            let got = xp.select_from_root_opts(&up, &arm_opts(arm)).expect(path);
            assert_eq!(got, want_up, "{label}: {arm:?} diverged on paged");
        }

        let time = |view: &dyn TreeView, arm: ValueChoice| {
            time_min(reps, || {
                xp.select_from_root_opts(view, &arm_opts(arm))
                    .unwrap()
                    .len()
            })
            .as_nanos()
        };
        let scan_ro = time(&ro, ValueChoice::ForceScan);
        let probe_ro = time(&ro, ValueChoice::ForceProbe);
        let auto_ro = time(&ro, ValueChoice::Auto);
        let scan_up = time(&up, ValueChoice::ForceScan);
        let probe_up = time(&up, ValueChoice::ForceProbe);
        let auto_up = time(&up, ValueChoice::Auto);

        // Which arm did the cost model actually take?
        let stats = EvalStats::default();
        xp.select_from_root_opts(&ro, &EvalOptions::new().stats(&stats))
            .unwrap();
        let chose_probe = stats.value_probe_steps.get();
        let chose_scan = stats.value_scan_steps.get();

        let speedup = scan_ro as f64 / probe_ro.max(1) as f64;
        max_speedup = max_speedup.max(speedup);
        let best_ro = scan_ro.min(probe_ro);
        let auto_over_best = auto_ro as f64 / best_ro.max(1) as f64;
        max_auto_over_best = max_auto_over_best.max(auto_over_best);

        println!(
            "{label:<20} rows {:>6}  ro: scan {scan_ro:>10}ns probe {probe_ro:>9}ns \
             (x{speedup:>6.1}) auto {auto_ro:>10}ns (x{auto_over_best:>4.2} of best)  \
             up: scan {scan_up:>10}ns probe {probe_up:>9}ns auto {auto_up:>10}ns  \
             [auto: {chose_probe} probe / {chose_scan} scan]",
            want_ro.len()
        );

        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "  {{\"label\": \"{label}\", \"path\": {path:?}, \"rows\": {}, \
             \"ro_scan_ns\": {scan_ro}, \"ro_probe_ns\": {probe_ro}, \
             \"ro_cost_ns\": {auto_ro}, \"up_scan_ns\": {scan_up}, \
             \"up_probe_ns\": {probe_up}, \"up_cost_ns\": {auto_up}, \
             \"probe_speedup_ro\": {speedup:.2}, \
             \"cost_over_best_ro\": {auto_over_best:.4}, \
             \"auto_probe_steps\": {chose_probe}, \"auto_scan_steps\": {chose_scan}, {host}}}",
            want_ro.len(),
            host = mbxq_bench::host_json_fields()
        );
    }
    json.push_str("\n]\n");

    println!(
        "\nsummary: best probe speedup {max_speedup:.1}x over forced scan; \
         cost-chosen worst-case {max_auto_over_best:.2}x of the best arm"
    );
    if !smoke {
        assert!(
            max_speedup >= 10.0,
            "the content index must beat the scan ≥ 10x on a selective query \
             (got {max_speedup:.1}x)"
        );
        assert!(
            max_auto_over_best <= 1.5,
            "the cost model strayed {max_auto_over_best:.2}x from the best arm"
        );
        std::fs::write("BENCH_value.json", &json).expect("write BENCH_value.json");
        println!("wrote BENCH_value.json");
    } else {
        println!("smoke mode: skipping BENCH_value.json");
    }
}
