//! Morsel-parallel scaling over the XMark selection corpus — the
//! measurement behind the work-stealing query pool and the columnar
//! batch kernels. Emits `BENCH_parallel.json`.
//!
//! Every pure-XPath selection in [`QUERY_PATHS`] runs on both storage
//! schemas under three strategy arms:
//!
//! * **seq** — [`ParChoice::ForceSequential`]: the single-thread
//!   path (the baseline every parallel result must be bit-identical to);
//! * **par** — [`ParChoice::ForceParallel`]: every eligible step is
//!   split into morsels and fanned across the worker pool regardless of
//!   what the cost heuristic thinks;
//! * **auto** — [`ParChoice::Auto`]: the executor parallelizes only
//!   steps whose scan volume clears the pool-aware break-even point.
//!
//! On top of the strategy arms sits the **kernel grid**: the same
//! queries run under [`KernelChoice::ForceScalar`] and
//! [`KernelChoice::ForceSimd`] — sequentially (the micro-bench columns
//! `kernel_scalar_ns` / `kernel_simd_ns`) and inside every pooled
//! arm × thread-count cell. With the `simd` feature off the forced-simd
//! arm runs the unrolled scalar twin, so the grid stays meaningful (and
//! bit-identical) on every build.
//!
//! Each cell asserts its node set equals the sequential scalar arm's —
//! the ordering guarantee (morsels are merged in morsel order, which is
//! document order) and the kernel-equivalence guarantee are checked on
//! every query, not just in the oracle tests.
//!
//! The scaling claims are hardware-gated: on a multi-core host the full
//! run asserts forced-parallel beats forced-sequential on at least one
//! scan-heavy query at ≥ 2 threads; on a single-core container that is
//! physically impossible, so the run only enforces the *safety*
//! properties — the auto arm must stay within a small factor of
//! forced-sequential, and the auto-dispatched kernel must stay within
//! 1.4x of the best forced kernel arm on every query. The
//! simd-beats-scalar assertion likewise only fires when the build
//! actually carries vector instructions ([`simd_width`] ≥ 16) and the
//! run is at full scale.
//!
//! Usage: `cargo run --release --bin par_scaling [--smoke]`

use mbxq_bench::{build_both, host_json_fields, time_min};
use mbxq_storage::TreeView;
use mbxq_xmark::QUERY_PATHS;
use mbxq_xpath::{
    simd_width, AxisChoice, EvalOptions, EvalStats, KernelChoice, ParChoice, WorkerPool, XPath,
};
use std::fmt::Write as _;

/// Order-sensitive FNV-1a over a node set (recorded in the JSON so
/// runs on different machines can be diffed for result identity).
fn checksum(pres: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in pres {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Scan-heavy corpus labels: full-document descendant scans with large
/// outputs, where morsel fan-out has actual work to split.
const SCAN_HEAVY: &[&str] = &[
    "q07_descriptions",
    "q07_annotations",
    "q14_items",
    "q16_keywords",
    "q19_locations",
];

/// The forced chunk-kernel arms of the grid.
const KERNELS: [(&str, KernelChoice); 2] = [
    ("scalar", KernelChoice::ForceScalar),
    ("simd", KernelChoice::ForceSimd),
];

struct Arm {
    threads: usize,
    kernel: &'static str,
    par_ns: u128,
    auto_ns: u128,
    morsels: u64,
    steals: u64,
    par_steps: u64,
}

struct Row {
    label: &'static str,
    path: &'static str,
    schema: &'static str,
    rows: usize,
    checksum: u64,
    /// Forced-sequential staircase scan, auto kernel (the parallel
    /// arms' baseline and the kernel cost model's dispatch under test).
    seq_ns: u128,
    /// Forced-sequential with the cost-chosen axis (the auto arm's
    /// baseline — what a plain single-threaded query costs today).
    plain_ns: u128,
    /// Sequential staircase scan under the forced scalar kernel.
    kernel_scalar_ns: u128,
    /// Sequential staircase scan under the forced simd kernel (the
    /// unrolled scalar twin when the `simd` feature is off).
    kernel_simd_ns: u128,
    /// Vectorized-kernel dispatches counted under the forced simd arm.
    simd_steps: u64,
    arms: Vec<Arm>,
}

#[allow(clippy::too_many_arguments)]
fn run_schema(
    schema: &'static str,
    view: &dyn TreeView,
    thread_counts: &[usize],
    reps: usize,
    rows_out: &mut Vec<Row>,
) {
    for &(label, path) in QUERY_PATHS {
        let xp = XPath::parse(path).expect(path);
        // The forced arms pin the staircase axis: Auto lowers many of
        // these corpus paths to name-index probes, and the scaling
        // claim is about the scan path the morsels actually split.
        let seq_opts = EvalOptions::new()
            .par(ParChoice::ForceSequential)
            .axis(AxisChoice::ForceStaircase);
        let want = xp.select_from_root_opts(view, &seq_opts).expect(path);
        let seq_ns = time_min(reps, || {
            xp.select_from_root_opts(view, &seq_opts).unwrap().len()
        })
        .as_nanos();
        // The production sequential baseline (cost-chosen axis), which
        // the auto arm is held against.
        let plain_opts = EvalOptions::new().par(ParChoice::ForceSequential);
        assert_eq!(
            xp.select_from_root_opts(view, &plain_opts).expect(path),
            want,
            "{label} ({schema}): index and staircase plans diverged"
        );
        let plain_ns = time_min(reps, || {
            xp.select_from_root_opts(view, &plain_opts).unwrap().len()
        })
        .as_nanos();

        // Kernel micro-bench: the same sequential staircase scan under
        // each forced chunk-kernel arm, bit-identity asserted per arm.
        let mut kernel_ns = [0u128; 2];
        for (slot, &(kname, kchoice)) in KERNELS.iter().enumerate() {
            let opts = seq_opts.kernel(kchoice);
            assert_eq!(
                xp.select_from_root_opts(view, &opts).expect(path),
                want,
                "{label} ({schema}, {kname} kernel): forced kernel diverged"
            );
            kernel_ns[slot] = time_min(reps, || {
                xp.select_from_root_opts(view, &opts).unwrap().len()
            })
            .as_nanos();
        }
        let kstats = EvalStats::default();
        xp.select_from_root_opts(
            view,
            &seq_opts.kernel(KernelChoice::ForceSimd).stats(&kstats),
        )
        .unwrap();
        let simd_steps = kstats.simd_steps.get();

        let mut arms = Vec::new();
        for &threads in thread_counts {
            let pool = WorkerPool::new(threads);
            for &(kname, kchoice) in KERNELS.iter() {
                let par_opts = EvalOptions::new()
                    .pool(&pool)
                    .par(ParChoice::ForceParallel)
                    .axis(AxisChoice::ForceStaircase)
                    .kernel(kchoice);
                let auto_opts = EvalOptions::new().pool(&pool).kernel(kchoice);

                // Ordering guarantee: both pooled arms must produce the
                // sequential node set, in document order, on every
                // query, under either kernel.
                for (arm, opts) in [("par", &par_opts), ("auto", &auto_opts)] {
                    let got = xp.select_from_root_opts(view, opts).expect(path);
                    assert_eq!(
                        got, want,
                        "{label} ({schema}, {threads} threads, {arm}, {kname} kernel): \
                         parallel result diverged"
                    );
                }

                let par_ns = time_min(reps, || {
                    xp.select_from_root_opts(view, &par_opts).unwrap().len()
                })
                .as_nanos();
                let auto_ns = time_min(reps, || {
                    xp.select_from_root_opts(view, &auto_opts).unwrap().len()
                })
                .as_nanos();

                let stats = EvalStats::default();
                xp.select_from_root_opts(view, &par_opts.stats(&stats))
                    .unwrap();
                arms.push(Arm {
                    threads,
                    kernel: kname,
                    par_ns,
                    auto_ns,
                    morsels: stats.morsels.get(),
                    steals: stats.steals.get(),
                    par_steps: stats.par_steps.get(),
                });
            }
        }
        rows_out.push(Row {
            label,
            path,
            schema,
            rows: want.len(),
            checksum: checksum(&want),
            seq_ns,
            plain_ns,
            kernel_scalar_ns: kernel_ns[0],
            kernel_simd_ns: kernel_ns[1],
            simd_steps,
            arms,
        });
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 0.003 } else { 0.03 };
    let reps = if smoke { 2 } else { 7 };
    let thread_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (ro, up, bytes) = build_both(scale, 42);
    println!(
        "XMark scale {scale} ({bytes} B, {} nodes), {cores} core(s), threads {thread_counts:?}, \
         kernel {} (simd width {})",
        ro.used_count(),
        mbxq_bench::kernel_arm(),
        simd_width()
    );

    let mut rows = Vec::new();
    run_schema("ro", &ro, thread_counts, reps, &mut rows);
    run_schema("up", &up, thread_counts, reps, &mut rows);

    let mut best_speedup = 0.0f64;
    let mut worst_auto = 0.0f64;
    let mut best_simd = 0.0f64;
    for r in &rows {
        let simd_speedup = r.kernel_scalar_ns as f64 / r.kernel_simd_ns.max(1) as f64;
        if SCAN_HEAVY.contains(&r.label) {
            best_simd = best_simd.max(simd_speedup);
        }
        let mut line = format!(
            "{:<22} {:<2} rows {:>6}  seq {:>10}ns  scalar {:>10}ns simd {:>10}ns (x{simd_speedup:>5.2})",
            r.label, r.schema, r.rows, r.seq_ns, r.kernel_scalar_ns, r.kernel_simd_ns
        );
        for a in &r.arms {
            let speedup = r.seq_ns as f64 / a.par_ns.max(1) as f64;
            let auto_ratio = a.auto_ns as f64 / r.plain_ns.max(1) as f64;
            if SCAN_HEAVY.contains(&r.label) && a.threads >= 2 {
                best_speedup = best_speedup.max(speedup);
            }
            worst_auto = worst_auto.max(auto_ratio);
            let _ = write!(
                line,
                "  [{}t/{} par {:>10}ns (x{speedup:>5.2}) auto {:>10}ns \
                 m={} s={} p={}]",
                a.threads, a.kernel, a.par_ns, a.auto_ns, a.morsels, a.steals, a.par_steps
            );
        }
        println!("{line}");
    }
    println!(
        "\nsummary: best forced-parallel speedup on scan-heavy queries {best_speedup:.2}x; \
         worst auto/seq ratio {worst_auto:.2}x; best simd/scalar speedup {best_simd:.2}x"
    );

    // Forced-parallel must actually fan out on the scan-heavy queries
    // (the eligibility plumbing, not the hardware, is under test here).
    let fanned = rows
        .iter()
        .filter(|r| SCAN_HEAVY.contains(&r.label))
        .all(|r| r.arms.iter().all(|a| a.par_steps > 0));
    assert!(
        fanned,
        "forced-parallel must take the morsel path on every scan-heavy query"
    );

    if cores >= 2 {
        assert!(
            best_speedup > 1.0,
            "with {cores} cores, forced-parallel must beat forced-sequential on at \
             least one scan-heavy query (best {best_speedup:.2}x)"
        );
    } else {
        println!("single core: skipping the speedup assertion (no concurrency to win)");
    }
    // The cost gate's safety property holds everywhere: auto must never
    // lose badly to sequential, even where parallelism cannot pay.
    let factor = if smoke { 3.0 } else { 2.0 };
    assert!(
        worst_auto <= factor,
        "auto must stay within {factor}x of forced-sequential (worst {worst_auto:.2}x)"
    );

    // The kernel cost model's safety property: the auto-dispatched arm
    // (seq_ns) must stay within 1.4x of the best forced kernel arm on
    // every corpus query. The absolute epsilon absorbs timer noise on
    // the microsecond-scale smoke queries.
    let eps_ns: u128 = 200_000;
    for r in &rows {
        let best = r.kernel_scalar_ns.min(r.kernel_simd_ns);
        assert!(
            r.seq_ns <= best + best * 2 / 5 + eps_ns,
            "{} ({}): auto kernel {}ns must stay within 1.4x of the best forced \
             arm {}ns",
            r.label,
            r.schema,
            r.seq_ns,
            best
        );
    }

    // The vectorization claim only holds when the build carries actual
    // vector instructions and the queries are big enough to time.
    if simd_width() >= 16 && !smoke {
        assert!(
            best_simd > 1.0,
            "with compiled simd (width {}), the forced-simd kernel must beat \
             forced-scalar on at least one scan-heavy query (best {best_simd:.2}x)",
            simd_width()
        );
    } else {
        println!("scalar build or smoke run: skipping the simd-speedup assertion");
    }

    if smoke {
        println!("smoke mode: skipping BENCH_parallel.json");
        return;
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let mut arms = String::from("[");
        for (j, a) in r.arms.iter().enumerate() {
            if j > 0 {
                arms.push_str(", ");
            }
            let _ = write!(
                arms,
                "{{\"threads\": {}, \"kernel\": \"{}\", \"par_ns\": {}, \
                 \"auto_ns\": {}, \"speedup\": {:.3}, \"morsels\": {}, \
                 \"steals\": {}, \"par_steps\": {}}}",
                a.threads,
                a.kernel,
                a.par_ns,
                a.auto_ns,
                r.seq_ns as f64 / a.par_ns.max(1) as f64,
                a.morsels,
                a.steals,
                a.par_steps
            );
        }
        arms.push(']');
        let _ = write!(
            json,
            "  {{\"label\": \"{}\", \"path\": {:?}, \"schema\": \"{}\", \
             \"rows\": {}, \"checksum\": {}, {host}, \
             \"seq_scan_ns\": {}, \"seq_auto_ns\": {}, \
             \"kernel_scalar_ns\": {}, \"kernel_simd_ns\": {}, \
             \"simd_steps\": {}, \"arms\": {arms}}}",
            r.label,
            r.path,
            r.schema,
            r.rows,
            r.checksum,
            r.seq_ns,
            r.plain_ns,
            r.kernel_scalar_ns,
            r.kernel_simd_ns,
            r.simd_steps,
            host = host_json_fields()
        );
    }
    json.push_str("\n]\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
