//! Morsel-parallel scaling over the XMark selection corpus — the
//! measurement behind the work-stealing query pool and the columnar
//! batch kernels. Emits `BENCH_parallel.json`.
//!
//! Every pure-XPath selection in [`QUERY_PATHS`] runs on both storage
//! schemas under three strategy arms:
//!
//! * **seq** — [`ParChoice::ForceSequential`]: the scalar single-thread
//!   path (the baseline every parallel result must be bit-identical to);
//! * **par** — [`ParChoice::ForceParallel`]: every eligible step is
//!   split into morsels and fanned across the worker pool regardless of
//!   what the cost heuristic thinks;
//! * **auto** — [`ParChoice::Auto`]: the executor parallelizes only
//!   steps whose scan volume clears the morsel threshold.
//!
//! Each arm × thread-count cell asserts its node set equals the
//! sequential arm's — the ordering guarantee (morsels are merged in
//! morsel order, which is document order) is checked on every query,
//! not just in the oracle test.
//!
//! The scaling claim is hardware-gated: on a multi-core host the full
//! run asserts forced-parallel beats forced-sequential on at least one
//! scan-heavy query at ≥ 2 threads; on a single-core container that is
//! physically impossible (the pool adds coordination overhead and no
//! concurrency), so the run only enforces the *safety* property — the
//! auto arm must stay within a small factor of forced-sequential,
//! i.e. the cost gate must keep parallelism off when it cannot pay.
//!
//! Usage: `cargo run --release --bin par_scaling [--smoke]`

use mbxq_bench::{build_both, time_min};
use mbxq_storage::TreeView;
use mbxq_xmark::QUERY_PATHS;
use mbxq_xpath::{AxisChoice, EvalOptions, EvalStats, ParChoice, WorkerPool, XPath};
use std::fmt::Write as _;

/// Order-sensitive FNV-1a over a node set (recorded in the JSON so
/// runs on different machines can be diffed for result identity).
fn checksum(pres: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in pres {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Scan-heavy corpus labels: full-document descendant scans with large
/// outputs, where morsel fan-out has actual work to split.
const SCAN_HEAVY: &[&str] = &[
    "q07_descriptions",
    "q07_annotations",
    "q14_items",
    "q16_keywords",
    "q19_locations",
];

struct Arm {
    threads: usize,
    par_ns: u128,
    auto_ns: u128,
    morsels: u64,
    steals: u64,
    par_steps: u64,
}

struct Row {
    label: &'static str,
    path: &'static str,
    schema: &'static str,
    rows: usize,
    checksum: u64,
    /// Forced-sequential staircase scan (the parallel arms' baseline).
    seq_ns: u128,
    /// Forced-sequential with the cost-chosen axis (the auto arm's
    /// baseline — what a plain single-threaded query costs today).
    plain_ns: u128,
    arms: Vec<Arm>,
}

#[allow(clippy::too_many_arguments)]
fn run_schema(
    schema: &'static str,
    view: &dyn TreeView,
    thread_counts: &[usize],
    reps: usize,
    rows_out: &mut Vec<Row>,
) {
    for &(label, path) in QUERY_PATHS {
        let xp = XPath::parse(path).expect(path);
        // The forced arms pin the staircase axis: Auto lowers many of
        // these corpus paths to name-index probes, and the scaling
        // claim is about the scan path the morsels actually split.
        let seq_opts = EvalOptions::new()
            .par(ParChoice::ForceSequential)
            .axis(AxisChoice::ForceStaircase);
        let want = xp.select_from_root_opts(view, &seq_opts).expect(path);
        let seq_ns = time_min(reps, || {
            xp.select_from_root_opts(view, &seq_opts).unwrap().len()
        })
        .as_nanos();
        // The production sequential baseline (cost-chosen axis), which
        // the auto arm is held against.
        let plain_opts = EvalOptions::new().par(ParChoice::ForceSequential);
        assert_eq!(
            xp.select_from_root_opts(view, &plain_opts).expect(path),
            want,
            "{label} ({schema}): index and staircase plans diverged"
        );
        let plain_ns = time_min(reps, || {
            xp.select_from_root_opts(view, &plain_opts).unwrap().len()
        })
        .as_nanos();

        let mut arms = Vec::new();
        for &threads in thread_counts {
            let pool = WorkerPool::new(threads);
            let par_opts = EvalOptions::new()
                .pool(&pool)
                .par(ParChoice::ForceParallel)
                .axis(AxisChoice::ForceStaircase);
            let auto_opts = EvalOptions::new().pool(&pool);

            // Ordering guarantee: both pooled arms must produce the
            // sequential node set, in document order, on every query.
            for (arm, opts) in [("par", &par_opts), ("auto", &auto_opts)] {
                let got = xp.select_from_root_opts(view, opts).expect(path);
                assert_eq!(
                    got, want,
                    "{label} ({schema}, {threads} threads, {arm}): parallel result diverged"
                );
            }

            let par_ns = time_min(reps, || {
                xp.select_from_root_opts(view, &par_opts).unwrap().len()
            })
            .as_nanos();
            let auto_ns = time_min(reps, || {
                xp.select_from_root_opts(view, &auto_opts).unwrap().len()
            })
            .as_nanos();

            let stats = EvalStats::default();
            xp.select_from_root_opts(view, &par_opts.stats(&stats))
                .unwrap();
            arms.push(Arm {
                threads,
                par_ns,
                auto_ns,
                morsels: stats.morsels.get(),
                steals: stats.steals.get(),
                par_steps: stats.par_steps.get(),
            });
        }
        rows_out.push(Row {
            label,
            path,
            schema,
            rows: want.len(),
            checksum: checksum(&want),
            seq_ns,
            plain_ns,
            arms,
        });
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 0.003 } else { 0.03 };
    let reps = if smoke { 2 } else { 7 };
    let thread_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (ro, up, bytes) = build_both(scale, 42);
    println!(
        "XMark scale {scale} ({bytes} B, {} nodes), {cores} core(s), threads {thread_counts:?}",
        ro.used_count()
    );

    let mut rows = Vec::new();
    run_schema("ro", &ro, thread_counts, reps, &mut rows);
    run_schema("up", &up, thread_counts, reps, &mut rows);

    let mut best_speedup = 0.0f64;
    let mut worst_auto = 0.0f64;
    for r in &rows {
        let mut line = format!(
            "{:<22} {:<2} rows {:>6}  seq {:>10}ns",
            r.label, r.schema, r.rows, r.seq_ns
        );
        for a in &r.arms {
            let speedup = r.seq_ns as f64 / a.par_ns.max(1) as f64;
            let auto_ratio = a.auto_ns as f64 / r.plain_ns.max(1) as f64;
            if SCAN_HEAVY.contains(&r.label) && a.threads >= 2 {
                best_speedup = best_speedup.max(speedup);
            }
            worst_auto = worst_auto.max(auto_ratio);
            let _ = write!(
                line,
                "  [{}t par {:>10}ns (x{speedup:>5.2}) auto {:>10}ns \
                 m={} s={} p={}]",
                a.threads, a.par_ns, a.auto_ns, a.morsels, a.steals, a.par_steps
            );
        }
        println!("{line}");
    }
    println!(
        "\nsummary: best forced-parallel speedup on scan-heavy queries {best_speedup:.2}x; \
         worst auto/seq ratio {worst_auto:.2}x"
    );

    // Forced-parallel must actually fan out on the scan-heavy queries
    // (the eligibility plumbing, not the hardware, is under test here).
    let fanned = rows
        .iter()
        .filter(|r| SCAN_HEAVY.contains(&r.label))
        .all(|r| r.arms.iter().all(|a| a.par_steps > 0));
    assert!(
        fanned,
        "forced-parallel must take the morsel path on every scan-heavy query"
    );

    if cores >= 2 {
        assert!(
            best_speedup > 1.0,
            "with {cores} cores, forced-parallel must beat forced-sequential on at \
             least one scan-heavy query (best {best_speedup:.2}x)"
        );
    } else {
        println!("single core: skipping the speedup assertion (no concurrency to win)");
    }
    // The cost gate's safety property holds everywhere: auto must never
    // lose badly to sequential, even where parallelism cannot pay.
    let factor = if smoke { 3.0 } else { 2.0 };
    assert!(
        worst_auto <= factor,
        "auto must stay within {factor}x of forced-sequential (worst {worst_auto:.2}x)"
    );

    if smoke {
        println!("smoke mode: skipping BENCH_parallel.json");
        return;
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let mut arms = String::from("[");
        for (j, a) in r.arms.iter().enumerate() {
            if j > 0 {
                arms.push_str(", ");
            }
            let _ = write!(
                arms,
                "{{\"threads\": {}, \"par_ns\": {}, \"auto_ns\": {}, \
                 \"speedup\": {:.3}, \"morsels\": {}, \"steals\": {}, \
                 \"par_steps\": {}}}",
                a.threads,
                a.par_ns,
                a.auto_ns,
                r.seq_ns as f64 / a.par_ns.max(1) as f64,
                a.morsels,
                a.steals,
                a.par_steps
            );
        }
        arms.push(']');
        let _ = write!(
            json,
            "  {{\"label\": \"{}\", \"path\": {:?}, \"schema\": \"{}\", \
             \"rows\": {}, \"checksum\": {}, \"cores\": {cores}, \
             \"seq_scan_ns\": {}, \"seq_auto_ns\": {}, \"arms\": {arms}}}",
            r.label, r.path, r.schema, r.rows, r.checksum, r.seq_ns, r.plain_ns
        );
    }
    json.push_str("\n]\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
