//! The **§3.2 concurrency ablation**: commutative delta-increments for
//! ancestor sizes vs exclusive ancestor locking.
//!
//! Worker threads repeatedly run insert transactions against *disjoint*
//! subtrees (so page-level conflicts between targets never happen), and
//! each transaction does some realistic read work — an XPath scan of its
//! subtree — *while holding its locks*, which is where lock granularity
//! bites: the paper's point is precisely that exclusive ancestor locking
//! makes every writer hold the root "during the entire transaction"
//! (§3.2), so under [`AncestorLockMode::Exclusive`] the scans serialize,
//! while under [`AncestorLockMode::Delta`] they overlap and only the
//! short commit sections serialize.
//!
//! Usage: `cargo run -p mbxq-bench --release --bin txn_throughput [threads] [seconds]`

use mbxq_storage::{InsertPosition, PagedDoc, TreeView};
use mbxq_txn::{wal::Wal, AncestorLockMode, Store, StoreConfig};
use mbxq_xml::Document;
use mbxq_xpath::XPath;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One target subtree per worker: region elements of an XMark-shaped
/// document spread across many pages.
fn build_doc(workers: usize) -> (PagedDoc, Vec<String>) {
    let mut xml = String::from("<site><regions>");
    let mut names = Vec::new();
    for w in 0..workers {
        let name = format!("region{w}");
        // Pad each region past one logical page so workers never share a
        // target page (page size 256, fill 80 % → > 205 tuples each).
        xml.push_str(&format!("<{name}>"));
        for i in 0..300 {
            xml.push_str(&format!("<item id=\"r{w}i{i}\"/>"));
        }
        xml.push_str(&format!("</{name}>"));
        names.push(name);
    }
    xml.push_str("</regions></site>");
    let cfg = mbxq_storage::PageConfig::new(256, 80).expect("valid");
    (PagedDoc::parse_str(&xml, cfg).expect("shred"), names)
}

fn run_mode(mode: AncestorLockMode, workers: usize, secs: f64) -> (u64, u64) {
    let (doc, regions) = build_doc(workers);
    let store = Store::open(
        doc,
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: mode,
            lock_timeout: Duration::from_millis(2000),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    );
    let commits = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for region in regions.iter().take(workers) {
            let store = &store;
            let commits = &commits;
            let timeouts = &timeouts;
            let stop = &stop;
            let region = region.clone();
            s.spawn(move || {
                let path = XPath::parse(&format!("/site/regions/{region}")).unwrap();
                let frag = Document::parse_fragment("<item/>").unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let mut t = store.begin();
                    let target = match t.select(&path) {
                        Ok(v) if !v.is_empty() => v[0],
                        _ => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                            t.abort();
                            continue;
                        }
                    };
                    // Realistic transaction work while the locks are
                    // held: scan the worker's subtree. In Exclusive
                    // mode the root page is locked during this scan, so
                    // every other writer stalls.
                    let scan = XPath::parse("count(//item)").unwrap();
                    match t.insert(InsertPosition::LastChildOf(target), &frag) {
                        Ok(()) => {
                            let _ = scan.eval(t.view(), &[0]);
                            match t.commit() {
                                Ok(_) => {
                                    commits.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    timeouts.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                            t.abort();
                        }
                    }
                }
            });
        }
        let t0 = Instant::now();
        while t0.elapsed().as_secs_f64() < secs {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let total = commits.load(Ordering::Relaxed);
    // Sanity: all committed inserts must be visible.
    let d = store.snapshot();
    assert_eq!(
        TreeView::size(d.as_ref(), 0),
        (1 + workers as u64 * 301) + total
    );
    (total, timeouts.load(Ordering::Relaxed))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args
        .next()
        .map(|a| a.parse().expect("threads"))
        .unwrap_or(4);
    let secs: f64 = args
        .next()
        .map(|a| a.parse().expect("seconds"))
        .unwrap_or(2.0);
    println!(
        "Concurrent insert transactions, {workers} workers x {secs}s per mode \
         (disjoint target subtrees)"
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14}",
        "mode", "commits", "timeouts", "commits/s"
    );
    for (label, mode) in [
        ("delta", AncestorLockMode::Delta),
        ("exclusive", AncestorLockMode::Exclusive),
    ] {
        let (commits, timeouts) = run_mode(mode, workers, secs);
        println!(
            "{:>12} {:>12} {:>12} {:>14.0}",
            label,
            commits,
            timeouts,
            commits as f64 / secs
        );
    }
    println!(
        "\nexpected shape: 'delta' sustains parallel commits; 'exclusive'\n\
         serializes every writer on the root's page (§2.2's locking bottleneck)."
    );
}
