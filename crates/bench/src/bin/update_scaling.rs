//! The **Figure 3 ablation**: physical update cost of a structural
//! insert as a function of document size.
//!
//! The paper's argument (§2.2): on the dense encoding, an insert shifts
//! every following tuple — cost O(N) — while the logical-page scheme
//! bounds the work by the update volume plus one page (§3). This binary
//! inserts the paper's own `<k><l/><m/></k>` subtree into the middle of
//! XMark documents of growing size and reports, for both stores, the
//! tuples physically touched and the wall time, so the O(N) vs O(1)
//! separation is directly visible.
//!
//! Usage: `cargo run -p mbxq-bench --release --bin update_scaling`

use mbxq_bench::{paper_page_config, time_min};
use mbxq_storage::{InsertPosition, NaiveDoc, PagedDoc, TreeView};
use mbxq_xmark::{generate, XMarkConfig};
use mbxq_xml::Document;

fn main() {
    println!("Structural-insert cost vs document size (Figure 3 ablation)");
    println!(
        "{:>10} {:>10} | {:>14} {:>12} | {:>14} {:>12} {:>8}",
        "nodes", "bytes", "naive touched", "naive [us]", "paged touched", "paged [us]", "case"
    );
    let subtree = Document::parse_fragment("<k><l/><m/></k>").unwrap();
    for &scale in &[0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064] {
        let xml = generate(&XMarkConfig::scaled(scale, 7));
        let naive0 = NaiveDoc::parse_str(&xml).expect("shred naive");
        let paged0 = PagedDoc::parse_str(&xml, paper_page_config()).expect("shred paged");
        let nodes = naive0.len();

        // Insert under an element near the middle of the document (the
        // average-case position: "on average half of the document are
        // following nodes").
        let mid_pre = (nodes as u64) / 2;
        let target_pre = (0..=mid_pre)
            .rev()
            .find(|&p| naive0.kind(p) == Some(mbxq_storage::Kind::Element))
            .expect("an element exists");
        let target = naive0.pre_to_node(target_pre).unwrap();

        let mut naive_touched = 0u64;
        let t_naive = time_min(5, || {
            let mut d = naive0.clone();
            let r = d
                .insert(InsertPosition::LastChildOf(target), &subtree)
                .unwrap();
            naive_touched = r.changed + r.shifted;
            d
        });

        let mut paged_touched = 0u64;
        let mut case = String::new();
        let t_paged = time_min(5, || {
            let mut d = paged0.clone();
            let r = d
                .insert(InsertPosition::LastChildOf(target), &subtree)
                .unwrap();
            paged_touched = r.inserted + r.moved;
            case = format!("{:?}", r.case);
            d
        });

        println!(
            "{:>10} {:>10} | {:>14} {:>12.1} | {:>14} {:>12.1} {:>8}",
            nodes,
            xml.len(),
            naive_touched,
            t_naive.as_secs_f64() * 1e6,
            paged_touched,
            t_paged.as_secs_f64() * 1e6,
            case.replace("WithinPage", "2a")
                .replace("PageOverflow", "2b"),
        );
    }
    println!(
        "\nexpected shape: 'naive touched' grows linearly with the document;\n\
         'paged touched' stays bounded by the insert volume + one page."
    );
    println!(
        "note: wall times include cloning the store each repetition (both sides\n\
         equally); the touched-tuple counts are the clean cost signal."
    );
}
