//! Per-node vs loop-lifted axis evaluation on descendant-heavy XMark
//! queries — the measurement behind the PR that routed the whole XPath
//! engine through `step_lifted`. Emits `BENCH_lifted.json`.
//!
//! The per-node baseline is what `mbxq-xpath::eval` used to do: call the
//! staircase join once per context node (`step(view, &[c], ..)`) inside a
//! loop, then sort/dedup the union. The lifted plan pushes the whole
//! context through one `step_lifted` invocation per location step.

use mbxq_axes::{step, step_lifted, Axis, ContextSeq, NodeTest};
use mbxq_bench::{build_both, time_min};
use mbxq_storage::TreeView;
use mbxq_xml::QName;
use std::fmt::Write as _;

struct Case {
    name: &'static str,
    steps: Vec<(Axis, NodeTest)>,
}

fn name_test(local: &str) -> NodeTest {
    NodeTest::Name(QName::local(local))
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "//item/name",
            steps: vec![
                (Axis::Descendant, name_test("item")),
                (Axis::Child, name_test("name")),
            ],
        },
        Case {
            name: "//description//keyword",
            steps: vec![
                (Axis::Descendant, name_test("description")),
                (Axis::Descendant, name_test("keyword")),
            ],
        },
        Case {
            name: "//open_auction/bidder/increase",
            steps: vec![
                (Axis::Descendant, name_test("open_auction")),
                (Axis::Child, name_test("bidder")),
                (Axis::Child, name_test("increase")),
            ],
        },
        Case {
            name: "//regions//item//text()",
            steps: vec![
                (Axis::Descendant, name_test("regions")),
                (Axis::Descendant, name_test("item")),
                (Axis::Descendant, NodeTest::Text),
            ],
        },
        // Nested context: every element is a context node, so the
        // staircase pruning (skip regions covered by an earlier context
        // node) only helps the set-at-a-time plan.
        Case {
            name: "//*//text()",
            steps: vec![
                (Axis::Descendant, NodeTest::AnyElement),
                (Axis::Descendant, NodeTest::Text),
            ],
        },
        // Following from a large context: the lifted staircase join
        // needs one scan (the first context node covers the union); the
        // per-node plan rescans the document tail per bidder.
        Case {
            name: "//bidder/following::increase",
            steps: vec![
                (Axis::Descendant, name_test("bidder")),
                (Axis::Following, name_test("increase")),
            ],
        },
    ]
}

/// The old evaluator's shape: one staircase join *per context node* per
/// step, merged by sort + dedup.
fn eval_per_node<V: TreeView + ?Sized>(
    view: &V,
    start: &[u64],
    steps: &[(Axis, NodeTest)],
) -> Vec<u64> {
    let mut current: Vec<u64> = start.to_vec();
    for (axis, test) in steps {
        let mut out = Vec::new();
        for &c in &current {
            out.extend(step(view, &[c], *axis, test));
        }
        out.sort_unstable();
        out.dedup();
        current = out;
    }
    current
}

/// The lifted plan: the whole context flows through one `step_lifted`
/// per step.
fn eval_lifted<V: TreeView + ?Sized>(
    view: &V,
    start: &[u64],
    steps: &[(Axis, NodeTest)],
) -> Vec<u64> {
    let mut current = ContextSeq::single_iter(start.to_vec());
    for (axis, test) in steps {
        current = step_lifted(view, &current, *axis, test);
    }
    current.pres
}

fn main() {
    // `--smoke` runs a single tiny scale with few reps — the CI guard
    // that the binary (and the lifted-vs-per-node equivalence asserts
    // it carries) keeps working.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 2 } else { 7 };
    let scales: &[f64] = if smoke { &[0.003] } else { &[0.01, 0.04] };
    let mut json = String::from("[\n");
    let mut first = true;
    for &scale in scales {
        let (ro, up, bytes) = build_both(scale, 42);
        println!("scale {scale} ({bytes} bytes of XML)");
        for case in cases() {
            for (view_name, view) in [("ro", &ro as &dyn TreeView), ("up", &up as &dyn TreeView)] {
                let root: Vec<u64> = view.root_pre().into_iter().collect();
                let expect = eval_per_node(view, &root, &case.steps);
                let got = eval_lifted(view, &root, &case.steps);
                assert_eq!(expect, got, "{} diverged on {view_name}", case.name);
                let t_per_node =
                    time_min(reps, || eval_per_node(view, &root, &case.steps)).as_nanos();
                let t_lifted = time_min(reps, || eval_lifted(view, &root, &case.steps)).as_nanos();
                let speedup = t_per_node as f64 / t_lifted.max(1) as f64;
                println!(
                    "  {:<32} {view_name}  per-node {:>10} ns  lifted {:>10} ns  speedup {speedup:.2}x  ({} rows)",
                    case.name, t_per_node, t_lifted, got.len()
                );
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    json,
                    "  {{\"query\": \"{}\", \"view\": \"{view_name}\", \"scale\": {scale}, \"rows\": {}, \"per_node_ns\": {t_per_node}, \"lifted_ns\": {t_lifted}, \"speedup\": {speedup:.4}, {host}}}",
                    case.name,
                    got.len(),
                    host = mbxq_bench::host_json_fields()
                );
            }
        }
    }
    json.push_str("\n]\n");
    if smoke {
        // Don't clobber the committed full-scale dataset with one tiny
        // smoke row (CI and developers run --smoke from the repo root).
        println!("smoke mode: skipping BENCH_lifted.json");
    } else {
        std::fs::write("BENCH_lifted.json", &json).expect("write BENCH_lifted.json");
        println!("wrote BENCH_lifted.json");
    }
}
