//! Multi-predicate strategy ablation — the measurement behind the
//! posting-list intersection layer. Merges its rows into
//! `BENCH_plan.json` (tagged `"bench": "multi_pred"`).
//!
//! Every query carries 2–3 indexable predicates on one step, collected
//! by the rewriter into a single `MultiProbe` operator; each runs four
//! ways on both storage schemas:
//!
//! * **scan** — [`MultiChoice::ForceScan`]: the axis step runs, then
//!   every predicate is evaluated against every candidate;
//! * **probe** — [`MultiChoice::ForceBestProbe`]: only the cheapest
//!   posting list is probed, the remaining predicates verify per
//!   candidate (what the planner did before this layer);
//! * **intersect** — [`MultiChoice::ForceIntersect`]: every predicate's
//!   posting list is materialized and intersected by the k-way
//!   galloping kernel before the range semijoin;
//! * **cost** — [`MultiChoice::Auto`]: pessimistic degree bounds rank
//!   the lists and grow the intersection prefix greedily.
//!
//! All four arms must select identical nodes (asserted). The summary
//! checks the PR's claims: the intersection beats the best single probe
//! on at least one query where every predicate is selective, and the
//! cost-chosen arm stays within 1.35x of the best forced arm on every
//! query. A skew-injected document (one hot key holding > 50 % of its
//! index's postings) then shows the estimator steering the join order
//! around the hot list, and [`ReplanMode::Default`] recovering from a
//! poisoned estimate within one replan. `--smoke` runs a tiny scale
//! once (CI guard; no JSON rewrite).

use mbxq_bench::{build_both, merge_bench_rows, time_min};
use mbxq_storage::{ReadOnlyDoc, TreeView};
use mbxq_xpath::{
    EvalOptions, EvalStats, MultiChoice, MultiStrategy, PlanFeedback, ReplanMode, StepFeedback,
    XPath,
};
use std::fmt::Write as _;

/// The ablation query set: attr + child-text sources, exact and
/// numeric-range comparisons, two and three predicates per step.
const QUERIES: &[(&str, &str)] = &[
    ("attr_child_point", "//item[@id = \"item0\"][quantity = 1]"),
    (
        "child_pair_item",
        "//item[quantity = 1][location = \"United States\"]",
    ),
    (
        "range_pair_price",
        "//closed_auction[price > 100][price < 120]",
    ),
    ("eq_range_same_key", "//item[quantity = 1][quantity < 3]"),
    (
        "triple_item",
        "//item[quantity = 1][quantity < 3][location = \"United States\"]",
    ),
    (
        "range_pair_narrow",
        "//closed_auction[price > 195][price < 199]",
    ),
];

fn arm_opts(multi: MultiChoice) -> EvalOptions<'static> {
    EvalOptions::new().multi(multi)
}

/// One hot key (`<k>hot</k>`) holding 60 % of the `k` index's postings,
/// every `<u>` value unique — the shape where intersecting in the wrong
/// order materializes a giant list for a one-row answer.
fn skew_doc() -> ReadOnlyDoc {
    let mut xml = String::from("<root>");
    for i in 0..1000 {
        if i % 10 < 6 {
            let _ = write!(xml, "<p><k>hot</k><u>u{i}</u></p>");
        } else {
            let _ = write!(xml, "<p><k>k{i}</k><u>u{i}</u></p>");
        }
    }
    xml.push_str("</root>");
    ReadOnlyDoc::parse_str(&xml).expect("skew doc is well-formed")
}

/// The skew scenario of the acceptance criteria: the pessimistic
/// estimator must keep the hot list out of the intersection prefix, and
/// a poisoned estimate must heal in exactly one replan.
fn skew_scenario() {
    let doc = skew_doc();
    // i = 5 is a hot row, so both predicates really must combine.
    let xp = XPath::parse("//p[k = \"hot\"][u = \"u5\"]").unwrap();
    assert!(
        xp.explain_physical().contains("multi-probe"),
        "skew query must lower to a multi-probe"
    );

    let fb = PlanFeedback::new();
    let stats = EvalStats::default();
    let hits = xp
        .select_from_root_opts(&doc, &EvalOptions::new().feedback(&fb).stats(&stats))
        .unwrap();
    assert_eq!(hits.len(), 1, "exactly one row is both hot and u5");
    assert_eq!(stats.multi_probe_steps.get(), 1);
    let snap = fb.snapshot();
    assert_eq!(snap.len(), 1);
    match &snap[0].strategy {
        MultiStrategy::Probe(prefix) => {
            assert_eq!(
                prefix,
                &[1],
                "the unique-key predicate must lead and the hot list must \
                 stay out of the intersection prefix, got probe{prefix:?}"
            );
        }
        MultiStrategy::Scan => panic!("a one-row probe must beat the 1000-row scan"),
    }
    println!(
        "skew: hot key holds 600/1000 postings; auto chose probe(#1) \
         est {} obs {} — hot list never materialized",
        snap[0].estimated, snap[0].observed
    );

    // Poison the estimate; one Default-mode execution must replan,
    // record a healthy estimate, and a second run must reuse it.
    fb.record(
        0,
        StepFeedback {
            estimated: 100_000,
            observed: 1,
            strategy: MultiStrategy::Scan,
            pred_lists: vec![None, None],
        },
    );
    assert!(fb.any_diverged());
    let replan_stats = EvalStats::default();
    let healed = xp
        .select_from_root_opts(
            &doc,
            &EvalOptions::new()
                .feedback(&fb)
                .stats(&replan_stats)
                .replan(ReplanMode::Default),
        )
        .unwrap();
    assert_eq!(healed, hits);
    assert_eq!(
        replan_stats.replans.get(),
        1,
        "a poisoned estimate must heal in exactly one replan"
    );
    assert!(!fb.any_diverged(), "the replan recorded a healthy estimate");
    let reuse_stats = EvalStats::default();
    xp.select_from_root_opts(
        &doc,
        &EvalOptions::new()
            .feedback(&fb)
            .stats(&reuse_stats)
            .replan(ReplanMode::Default),
    )
    .unwrap();
    assert_eq!(reuse_stats.replans.get(), 0, "healthy feedback is reused");
    println!("skew: poisoned estimate recovered in 1 replan, then reused");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 0.003 } else { 0.03 };
    let reps = if smoke { 2 } else { 9 };

    let (ro, up, bytes) = build_both(scale, 42);
    println!("XMark scale {scale} ({bytes} B, {} nodes)", ro.used_count());

    let mut rows: Vec<String> = Vec::new();
    let mut max_auto_over_best = 0.0f64;
    let mut intersect_wins = 0usize;

    for &(label, path) in QUERIES {
        let xp = XPath::parse(path).expect(path);
        assert!(
            xp.explain_physical().contains("multi-probe"),
            "{label}: query must lower to a multi-probe:\n{}",
            xp.explain_physical()
        );

        // Correctness first: all four arms agree on both schemas.
        let want_ro = xp
            .select_from_root_opts(&ro, &arm_opts(MultiChoice::ForceScan))
            .expect(path);
        let want_up = xp
            .select_from_root_opts(&up, &arm_opts(MultiChoice::ForceScan))
            .expect(path);
        for arm in [
            MultiChoice::ForceBestProbe,
            MultiChoice::ForceIntersect,
            MultiChoice::Auto,
        ] {
            let got = xp.select_from_root_opts(&ro, &arm_opts(arm)).expect(path);
            assert_eq!(got, want_ro, "{label}: {arm:?} diverged on ro");
            let got = xp.select_from_root_opts(&up, &arm_opts(arm)).expect(path);
            assert_eq!(got, want_up, "{label}: {arm:?} diverged on paged");
        }

        let time = |view: &dyn TreeView, arm: MultiChoice| {
            time_min(reps, || {
                xp.select_from_root_opts(view, &arm_opts(arm))
                    .unwrap()
                    .len()
            })
            .as_nanos()
        };
        let scan_ro = time(&ro, MultiChoice::ForceScan);
        let probe_ro = time(&ro, MultiChoice::ForceBestProbe);
        let inter_ro = time(&ro, MultiChoice::ForceIntersect);
        let auto_ro = time(&ro, MultiChoice::Auto);
        let scan_up = time(&up, MultiChoice::ForceScan);
        let probe_up = time(&up, MultiChoice::ForceBestProbe);
        let inter_up = time(&up, MultiChoice::ForceIntersect);
        let auto_up = time(&up, MultiChoice::Auto);

        // What the cost model actually did.
        let stats = EvalStats::default();
        xp.select_from_root_opts(&ro, &EvalOptions::new().stats(&stats))
            .unwrap();
        let multi_steps = stats.multi_probe_steps.get();
        let auto_inter_rows = stats.intersect_rows.get();

        let best_ro = scan_ro.min(probe_ro).min(inter_ro);
        let auto_over_best = auto_ro as f64 / best_ro.max(1) as f64;
        max_auto_over_best = max_auto_over_best.max(auto_over_best);
        if inter_ro < probe_ro {
            intersect_wins += 1;
        }

        println!(
            "{label:<18} rows {:>5}  ro: scan {scan_ro:>9}ns probe {probe_ro:>9}ns \
             intersect {inter_ro:>9}ns auto {auto_ro:>9}ns (x{auto_over_best:>4.2} of best)  \
             up: scan {scan_up:>9}ns probe {probe_up:>9}ns intersect {inter_up:>9}ns \
             auto {auto_up:>9}ns  [auto: {multi_steps} multi-step, {auto_inter_rows} ∩-rows]",
            want_ro.len()
        );

        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"bench\": \"multi_pred\", \"label\": \"{label}\", \"path\": {path:?}, \
             \"rows\": {}, \"ro_scan_ns\": {scan_ro}, \"ro_probe_ns\": {probe_ro}, \
             \"ro_intersect_ns\": {inter_ro}, \"ro_cost_ns\": {auto_ro}, \
             \"up_scan_ns\": {scan_up}, \"up_probe_ns\": {probe_up}, \
             \"up_intersect_ns\": {inter_up}, \"up_cost_ns\": {auto_up}, \
             \"cost_over_best_ro\": {auto_over_best:.4}, \
             \"auto_multi_steps\": {multi_steps}, \"auto_intersect_rows\": {auto_inter_rows}, \
             {host}}}",
            want_ro.len(),
            host = mbxq_bench::host_json_fields()
        );
        rows.push(row);
    }

    println!(
        "\nsummary: intersection beats the best single probe on {intersect_wins}/{} \
         queries; cost-chosen worst-case {max_auto_over_best:.2}x of the best arm",
        QUERIES.len()
    );

    skew_scenario();

    if !smoke {
        assert!(
            intersect_wins >= 1,
            "the intersection must beat the single probe on at least one \
             doubly-selective query"
        );
        assert!(
            max_auto_over_best <= 1.35,
            "the cost model strayed {max_auto_over_best:.2}x from the best arm"
        );
        merge_bench_rows("BENCH_plan.json", "multi_pred", &rows).expect("write BENCH_plan.json");
        println!("merged {} rows into BENCH_plan.json", rows.len());
    } else {
        println!("smoke mode: skipping BENCH_plan.json");
    }
}
