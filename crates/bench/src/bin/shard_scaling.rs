//! Shards-axis throughput driver for the multi-document [`Catalog`] —
//! does splitting the workload across N shards multiply the commit
//! ceiling? Merges its rows into `BENCH_workload.json`.
//!
//! The single-store `workload` bench tops out where its one group-commit
//! pipeline serializes WAL I/O. The catalog's answer is N *independent*
//! pipelines: every document is its own [`Shard`] with its own WAL,
//! commit lock and lock table, so writers bound to different documents
//! share **nothing** on the commit path. This driver pins a number on
//! that: a grid of (shards × writers) cells, each loading one small
//! XMark document per shard (the many-small-documents routing shape)
//! into a durable catalog with file-backed per-shard WALs, writers
//! committing insert/attribute bursts against their own shard's
//! regions, and readers timing cross-document [`Catalog::query_all`]
//! fan-outs over the shared worker pool throughout.
//!
//! Expected shape: with the same total writer count, aggregate commit
//! throughput grows with the shard count (4 shards ≥ 2x 1 shard on ≥ 4
//! cores — asserted below), because the 1-shard arm queues all writers
//! on one WAL while the 4-shard arm gives each its own. Reader p50/p99
//! stays flat: snapshots are per-shard lock-free pointer loads either
//! way.
//!
//! Usage: `cargo run --release --bin shard_scaling [--smoke] [--secs N]`

use mbxq_storage::{InsertPosition, PageConfig};
use mbxq_txn::{Catalog, CatalogConfig, Shard, StoreConfig};
use mbxq_xmark::rng::StdRng;
use mbxq_xmark::{generate, XMarkConfig};
use mbxq_xml::Document;
use mbxq_xpath::XPath;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Writer target regions (the XMark continental split; every generated
/// document contains all six).
const REGIONS: [(&str, f64); 6] = [
    ("africa", 0.10),
    ("asia", 0.30),
    ("australia", 0.05),
    ("europe", 0.25),
    ("namerica", 0.25),
    ("samerica", 0.05),
];

/// Original `item{n}` id ranges per region (sequential ids, region
/// order, last region takes the remainder — the generator's layout).
fn region_item_ranges(total: usize) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::with_capacity(REGIONS.len());
    let mut next = 0usize;
    for (i, &(_, share)) in REGIONS.iter().enumerate() {
        let n = if i + 1 == REGIONS.len() {
            total - next
        } else {
            (((total as f64) * share).round() as usize).min(total - next)
        };
        ranges.push(next..next + n);
        next += n;
    }
    ranges
}

/// One grid point's outcome.
struct Cell {
    shards: usize,
    writers: usize,
    readers: usize,
    secs: f64,
    commits: u64,
    timeouts: u64,
    per_shard_commits: Vec<u64>,
    reads: u64,
    read_p50_us: f64,
    read_p99_us: f64,
    wal_records: u64,
    pool_steals: u64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1000.0 // ns → µs
}

/// Runs one grid point: a fresh durable catalog of `shards` documents,
/// `writers` writer threads round-robined across the shards (distinct
/// writers on the same shard bind to distinct regions, so page-lock
/// conflicts never pollute the commit-pipeline signal) and `readers`
/// threads timing `query_all` fan-outs, for `secs`.
fn run_cell(
    docs: &[String],
    shards: usize,
    writers: usize,
    readers: usize,
    secs: f64,
    dir: &std::path::Path,
) -> Cell {
    let _ = std::fs::remove_dir_all(dir);
    let cat = Catalog::open(
        dir,
        CatalogConfig {
            store: StoreConfig {
                lock_timeout: Duration::from_millis(250),
                query_threads: 2,
                ..StoreConfig::default()
            },
            // 256-tuple pages: the six regions of each document land on
            // disjoint logical pages (same reasoning as `workload`).
            page: PageConfig::new(256, 80).expect("valid"),
        },
    )
    .expect("open catalog");
    let shard_handles: Vec<Arc<Shard>> = (0..shards)
        .map(|k| {
            cat.create_doc(&format!("xmark{k}"), &docs[k])
                .expect("create shard doc")
        })
        .collect();
    let item_ranges = region_item_ranges(docs[0].match_indices("<item ").count());

    let stop = AtomicBool::new(false);
    let timeouts = AtomicU64::new(0);
    let per_shard: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    let reads = AtomicU64::new(0);
    let read_lat = Mutex::new(Vec::<u64>::new());
    let queries = ["//item", "//person", "//open_auction", "//keyword"];

    std::thread::scope(|s| {
        for r in 0..readers {
            let cat = &cat;
            let stop = &stop;
            let reads = &reads;
            let read_lat = &read_lat;
            let queries = &queries;
            s.spawn(move || {
                let mut lat = Vec::new();
                let mut i = r; // stagger the query mix across readers
                while !stop.load(Ordering::Relaxed) {
                    let q = queries[i % queries.len()];
                    i += 1;
                    let t0 = Instant::now();
                    let out = cat.query_all(q).expect("query_all");
                    lat.push(t0.elapsed().as_nanos() as u64);
                    std::hint::black_box(out);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                read_lat.lock().unwrap().append(&mut lat);
            });
        }
        for w in 0..writers {
            let shard = shard_handles[w % shards].clone();
            let stop = &stop;
            let timeouts = &timeouts;
            let commits = &per_shard[w % shards];
            let item_ranges = &item_ranges;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x54a6 + w as u64);
                // Writers sharing a shard take distinct regions; writers
                // on different shards touch different documents, so any
                // region works. Interior anchors only (region edges share
                // pages with neighbors — see `workload`).
                let region_idx = (w / shards) % REGIONS.len();
                let (region, _) = REGIONS[region_idx];
                let range = &item_ranges[region_idx];
                let lo = range.start + range.len() / 10;
                let hi = (range.start + (range.len() * 7) / 10).max(lo + 1);
                let mut minted = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let mut t = shard.begin();
                    let burst = 1 + rng.gen_range(0..2);
                    let mut failed = false;
                    for _ in 0..burst {
                        let anchor_id = format!("item{}", lo + rng.gen_range(0..hi - lo));
                        let sel = XPath::parse(&format!(
                            "/site/regions/{region}/item[@id='{anchor_id}']"
                        ))
                        .expect("item path");
                        let anchor = match t.select(&sel) {
                            Ok(nodes) if !nodes.is_empty() => nodes[0],
                            Ok(_) => continue,
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        };
                        let outcome = if rng.gen_range(0..10) < 6 {
                            let frag = Document::parse_fragment(&format!(
                                "<item id=\"shard-w{w}-{minted}\"><name>shard item</name></item>"
                            ))
                            .expect("fragment");
                            minted += 1;
                            t.insert(InsertPosition::After(anchor), &frag).map(|_| ())
                        } else {
                            t.set_attribute(anchor, &mbxq_xml::QName::local("featured"), "yes")
                                .map(|_| ())
                        };
                        if outcome.is_err() {
                            failed = true;
                            break;
                        }
                    }
                    if failed || t.staged_ops() == 0 {
                        if failed {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        t.abort();
                        continue;
                    }
                    match t.commit() {
                        Ok(_) => {
                            commits.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        let t0 = Instant::now();
        while t0.elapsed().as_secs_f64() < secs {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let per_shard_commits: Vec<u64> = per_shard
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    let wal_records: u64 = shard_handles
        .iter()
        .map(|s| s.group_commit_stats().records)
        .sum();
    for s in &shard_handles {
        assert_eq!(s.locked_pages(), 0, "no stranded page locks");
        mbxq_storage::invariants::check_paged(s.snapshot().as_ref())
            .expect("final state invariant-clean");
    }
    let pool_steals = cat.pool_stats().steals;
    drop(shard_handles);
    drop(cat);
    let _ = std::fs::remove_dir_all(dir);

    let mut rlat = read_lat.into_inner().unwrap();
    rlat.sort_unstable();
    Cell {
        shards,
        writers,
        readers,
        secs,
        commits: per_shard_commits.iter().sum(),
        timeouts: timeouts.load(Ordering::Relaxed),
        per_shard_commits,
        reads: reads.load(Ordering::Relaxed),
        read_p50_us: percentile(&rlat, 50.0),
        read_p99_us: percentile(&rlat, 99.0),
        wal_records,
        pool_steals,
    }
}

/// Replaces any previous shard_scaling rows in `BENCH_workload.json`
/// with `rows` — the file is one JSON object per line, so the merge is
/// line-based and leaves the single-store `workload` rows untouched.
fn merge_into_workload_json(rows: &[String]) {
    let path = "BENCH_workload.json";
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .map(|l| l.trim_end().trim_end_matches(',').to_string())
                .filter(|l| {
                    let t = l.trim();
                    t != "["
                        && t != "]"
                        && !t.is_empty()
                        && !t.contains("\"bench\": \"shard_scaling\"")
                })
                .collect()
        })
        .unwrap_or_default();
    lines.extend(rows.iter().cloned());
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    std::fs::write(path, out).expect("write BENCH_workload.json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let secs = args
        .iter()
        .position(|a| a == "--secs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--secs takes a number"))
        .unwrap_or(if smoke { 0.25 } else { 1.0 });

    // One small XMark document per shard, distinct seeds — independent
    // content, identical shape and size (counts depend on scale only).
    let scale = if smoke { 0.002 } else { 0.01 };
    let max_shards = if smoke { 2 } else { 4 };
    let docs: Vec<String> = (0..max_shards)
        .map(|k| generate(&XMarkConfig::scaled(scale, 42 + k as u64)))
        .collect();
    println!(
        "XMark scale {scale} per shard ({} bytes each), {}s per grid point, per-shard file WALs",
        docs[0].len(),
        secs
    );
    let dir = std::env::temp_dir().join(format!("mbxq-shard-scaling-{}", std::process::id()));

    // (shards, writers): same total writer count across the shard axis,
    // so the only variable is how many commit pipelines serve them.
    let grid: Vec<(usize, usize)> = if smoke {
        vec![(1, 2), (2, 2)]
    } else {
        vec![(1, 1), (1, 2), (1, 4), (2, 2), (2, 4), (4, 4)]
    };
    let readers = 2;

    println!(
        "{:>3}s {:>3}w {:>10} {:>14} {:>9} {:>10} {:>9} {:>9} {:>7}",
        "",
        "",
        "commits/s",
        "per-shard c/s",
        "timeouts",
        "reads/s",
        "r.p50 µs",
        "r.p99 µs",
        "steals"
    );
    let mut cells = Vec::new();
    for (shards, writers) in grid {
        let cell = run_cell(&docs, shards, writers, readers, secs, &dir);
        let per_shard = cell
            .per_shard_commits
            .iter()
            .map(|&c| format!("{:.0}", c as f64 / cell.secs))
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:>3}s {:>3}w {:>10.0} {:>14} {:>9} {:>10.0} {:>9.1} {:>9.1} {:>7}",
            cell.shards,
            cell.writers,
            cell.commits as f64 / cell.secs,
            per_shard,
            cell.timeouts,
            cell.reads as f64 / cell.secs,
            cell.read_p50_us,
            cell.read_p99_us,
            cell.pool_steals,
        );
        cells.push(cell);
    }

    for c in &cells {
        assert_eq!(
            c.wal_records, c.commits,
            "{}s/{}w: every commit durably logged exactly once across the shard WALs",
            c.shards, c.writers
        );
    }

    if smoke {
        for c in &cells {
            assert!(c.commits > 0, "smoke: writers must commit");
            assert!(c.reads > 0, "smoke: readers must read");
        }
        println!("smoke mode: skipping BENCH_workload.json");
        return;
    }

    // The headline claim: with 4 writers, 4 independent commit pipelines
    // must at least double the single-pipeline aggregate. Only meaningful
    // with enough cores to actually run the pipelines concurrently.
    let one = cells
        .iter()
        .find(|c| c.shards == 1 && c.writers == 4)
        .unwrap();
    let four = cells
        .iter()
        .find(|c| c.shards == 4 && c.writers == 4)
        .unwrap();
    let speedup = four.commits as f64 / one.commits.max(1) as f64;
    println!("4-shard / 1-shard aggregate commit speedup at 4 writers: {speedup:.2}x");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "4 shards must at least double the 1-shard commit ceiling on {cores} cores \
             (got {speedup:.2}x)"
        );
    } else {
        println!("({cores} cores: skipping the >=2x scaling assertion)");
    }

    let mut rows = Vec::new();
    for c in &cells {
        let per_shard = c
            .per_shard_commits
            .iter()
            .map(|&n| format!("{:.1}", n as f64 / c.secs))
            .collect::<Vec<_>>()
            .join(", ");
        let mut row = String::new();
        let _ = write!(
            row,
            "  {{\"bench\": \"shard_scaling\", \"shards\": {}, \"writers\": {}, \
             \"readers\": {}, \"secs\": {}, \"commits\": {}, \"commits_per_s\": {:.1}, \
             \"per_shard_commits_per_s\": [{per_shard}], \"timeouts\": {}, \
             \"reads\": {}, \"reads_per_s\": {:.1}, \
             \"read_p50_us\": {:.2}, \"read_p99_us\": {:.2}, \
             \"wal_records\": {}, \"pool_steals\": {}, {host}}}",
            c.shards,
            c.writers,
            c.readers,
            c.secs,
            c.commits,
            c.commits as f64 / c.secs,
            c.timeouts,
            c.reads,
            c.reads as f64 / c.secs,
            c.read_p50_us,
            c.read_p99_us,
            c.wal_records,
            c.pool_steals,
            host = mbxq_bench::host_json_fields(),
        );
        rows.push(row);
    }
    merge_into_workload_json(&rows);
    println!(
        "merged {} shard_scaling rows into BENCH_workload.json",
        rows.len()
    );
}
