//! Strategy ablation over the XMark XPath corpus — the measurement
//! behind the algebraic query layer. Emits `BENCH_plan.json`.
//!
//! Every path of [`mbxq_xmark::QUERY_PATHS`] is compiled once through
//! the plan pipeline and executed three ways on both storage schemas:
//!
//! * **staircase** — [`AxisChoice::ForceStaircase`]: every axis step
//!   scans its context regions (the interpreter's only strategy);
//! * **index** — [`AxisChoice::ForceIndex`]: every indexable step
//!   probes the element-name index and semijoins back to the context;
//! * **cost** — [`AxisChoice::Auto`]: the per-step cost model decides
//!   from live statistics.
//!
//! All three arms must select identical nodes (asserted). The summary
//! checks the two claims the PR makes: the index arm beats the forced
//! staircase on the selective queries, and the cost-chosen arm never
//! strays far from the best ablation arm. `--smoke` runs a tiny scale
//! once (CI guard that the binary keeps working; no JSON rewrite).

use mbxq_bench::{build_both, merge_bench_rows, time_min};
use mbxq_storage::TreeView;
use mbxq_xmark::QUERY_PATHS;
use mbxq_xpath::{AxisChoice, EvalOptions, EvalStats, XPath};
use std::fmt::Write as _;

fn arm_opts(axis: AxisChoice) -> EvalOptions<'static> {
    EvalOptions::new().axis(axis)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 0.003 } else { 0.03 };
    let reps = if smoke { 2 } else { 9 };

    let (ro, up, bytes) = build_both(scale, 42);
    println!("XMark scale {scale} ({bytes} B, {} nodes)", ro.used_count());

    let mut rows: Vec<String> = Vec::new();
    // (auto-vs-best ratio, index beat staircase) per query, ro view.
    let mut max_auto_over_best = 0.0f64;
    let mut log_sum_auto_over_best = 0.0f64;
    let mut index_wins = 0usize;

    for &(label, path) in QUERY_PATHS {
        let xp = XPath::parse(path).expect(path);

        // Correctness first: all arms agree on both schemas.
        let want_ro = xp
            .select_from_root_opts(&ro, &arm_opts(AxisChoice::ForceStaircase))
            .expect(path);
        for arm in [AxisChoice::ForceIndex, AxisChoice::Auto] {
            let got = xp.select_from_root_opts(&ro, &arm_opts(arm)).expect(path);
            assert_eq!(got, want_ro, "{label}: {arm:?} diverged on ro");
        }
        let want_up = xp
            .select_from_root_opts(&up, &arm_opts(AxisChoice::ForceStaircase))
            .expect(path);
        for arm in [AxisChoice::ForceIndex, AxisChoice::Auto] {
            let got = xp.select_from_root_opts(&up, &arm_opts(arm)).expect(path);
            assert_eq!(got, want_up, "{label}: {arm:?} diverged on paged");
        }

        let stair_ro = time_min(reps, || {
            xp.select_from_root_opts(&ro, &arm_opts(AxisChoice::ForceStaircase))
                .unwrap()
                .len()
        })
        .as_nanos();
        let index_ro = time_min(reps, || {
            xp.select_from_root_opts(&ro, &arm_opts(AxisChoice::ForceIndex))
                .unwrap()
                .len()
        })
        .as_nanos();
        let auto_ro = time_min(reps, || {
            xp.select_from_root_opts(&ro, &arm_opts(AxisChoice::Auto))
                .unwrap()
                .len()
        })
        .as_nanos();
        let stair_up = time_min(reps, || {
            xp.select_from_root_opts(&up, &arm_opts(AxisChoice::ForceStaircase))
                .unwrap()
                .len()
        })
        .as_nanos();
        let index_up = time_min(reps, || {
            xp.select_from_root_opts(&up, &arm_opts(AxisChoice::ForceIndex))
                .unwrap()
                .len()
        })
        .as_nanos();
        let auto_up = time_min(reps, || {
            xp.select_from_root_opts(&up, &arm_opts(AxisChoice::Auto))
                .unwrap()
                .len()
        })
        .as_nanos();

        // Which arms did the cost model actually take?
        let stats = EvalStats::default();
        xp.select_from_root_opts(
            &ro,
            &EvalOptions::new().axis(AxisChoice::Auto).stats(&stats),
        )
        .unwrap();
        let chose_index = stats.index_steps.get();
        let chose_stair = stats.staircase_steps.get();

        let best_ro = stair_ro.min(index_ro);
        let auto_over_best = auto_ro as f64 / best_ro.max(1) as f64;
        max_auto_over_best = max_auto_over_best.max(auto_over_best);
        log_sum_auto_over_best += auto_over_best.max(f64::MIN_POSITIVE).ln();
        if index_ro < stair_ro {
            index_wins += 1;
        }

        println!(
            "{label:<24} rows {:>6}  ro: stair {stair_ro:>9}ns index {index_ro:>9}ns \
             auto {auto_ro:>9}ns (x{auto_over_best:>4.2} of best)  \
             up: stair {stair_up:>9}ns index {index_up:>9}ns auto {auto_up:>9}ns  \
             [auto steps: {chose_index} index / {chose_stair} staircase]",
            want_ro.len()
        );

        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"bench\": \"plan_cost\", \"label\": \"{label}\", \"path\": {path:?}, \
             \"rows\": {}, \
             \"ro_staircase_ns\": {stair_ro}, \"ro_index_ns\": {index_ro}, \
             \"ro_cost_ns\": {auto_ro}, \"up_staircase_ns\": {stair_up}, \
             \"up_index_ns\": {index_up}, \"up_cost_ns\": {auto_up}, \
             \"cost_over_best_ro\": {auto_over_best:.4}, \
             \"auto_index_steps\": {chose_index}, \"auto_staircase_steps\": {chose_stair}, {host}}}",
            want_ro.len(),
            host = mbxq_bench::host_json_fields()
        );
        rows.push(row);
    }

    let geomean = (log_sum_auto_over_best / QUERY_PATHS.len() as f64).exp();
    println!(
        "\nsummary: index beats forced-staircase on {index_wins}/{} queries; \
         cost-chosen worst-case {max_auto_over_best:.2}x of the best arm \
         (geomean {geomean:.3}x)",
        QUERY_PATHS.len()
    );
    if !smoke {
        assert!(
            index_wins >= 2,
            "the name-index strategy must win at least two queries"
        );
        assert!(
            max_auto_over_best <= 1.5,
            "the cost model strayed {max_auto_over_best:.2}x from the best arm"
        );
        // The per-query cap tolerates one noisy outlier; the aggregate
        // guard catches a fleet-wide recalibration drift that stays
        // under the cap on every individual query.
        assert!(
            geomean <= 1.15,
            "the cost model drifted to {geomean:.3}x of best across the corpus"
        );
        merge_bench_rows("BENCH_plan.json", "plan_cost", &rows).expect("write BENCH_plan.json");
        println!("merged {} rows into BENCH_plan.json", rows.len());
    } else {
        println!("smoke mode: skipping BENCH_plan.json");
    }
}
