//! Regenerates **Figure 9**: XMark Q1–Q20 on the read-only (`ro`) vs the
//! updateable (`up`) schema, with the updateable schema holding ~20 %
//! unused tuples per logical page (the paper's post-update scenario).
//!
//! Usage: `cargo run -p mbxq-bench --release --bin figure9 [scale...]`
//! Default scales: 0.01 (~1 MB class) and 0.1 (~10 MB class) — scaled
//! stand-ins for the paper's 1.1 MB / 11 MB columns; pass larger scale
//! factors for bigger runs. Absolute times differ from the paper's 2005
//! Opteron; the reproduced signal is the per-query *overhead* (up/ro−1)
//! and its "<30 % on average" envelope.

use mbxq_bench::{build_both, time_min, FIGURE9, PAPER_SIZES};
use mbxq_xmark::{run_query, QUERY_COUNT};

fn main() {
    let scales: Vec<f64> = {
        let args: Vec<f64> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("scale factors are numbers"))
            .collect();
        if args.is_empty() {
            vec![0.01, 0.1]
        } else {
            args
        }
    };
    let reps = 3;

    println!("Figure 9 reproduction — XMark Q1-Q20, read-only (ro) vs updateable (up)");
    println!("(paper columns show the published seconds for comparison of *shape*)");
    for &scale in &scales {
        let (ro, up, bytes) = build_both(scale, 42);
        println!(
            "\n=== scale {scale} ({:.1} MB, {} nodes) ===",
            bytes as f64 / 1e6,
            mbxq_storage::TreeView::used_count(&ro),
        );
        println!(
            "{:>3} {:>12} {:>12} {:>9}   {:>22} {:>9}",
            "Q", "ro [ms]", "up [ms]", "ovh [%]", "paper ro/up [s]", "paper [%]"
        );
        let mut overheads = Vec::new();
        for q in 1..=QUERY_COUNT {
            let t_ro = time_min(reps, || run_query(&ro, q).expect("query runs"));
            let t_up = time_min(reps, || run_query(&up, q).expect("query runs"));
            // Verify both schemas agree before trusting the timing.
            let a = run_query(&ro, q).unwrap();
            let b = run_query(&up, q).unwrap();
            assert_eq!(a, b, "Q{q}: schemas disagree");
            let ovh = (t_up.as_secs_f64() / t_ro.as_secs_f64() - 1.0) * 100.0;
            overheads.push(ovh.max(0.0));
            // Nearest paper column for the "shape" comparison: use the
            // 11 MB column (index 1) as the representative mid-size.
            let paper = FIGURE9[q - 1][1];
            let (p_txt, p_ovh) = match paper {
                Some((pro, pup)) => (
                    format!("{pro:.3}/{pup:.3} ({})", PAPER_SIZES[1]),
                    format!("{:+.0}", (pup / pro - 1.0) * 100.0),
                ),
                None => ("-".into(), "-".into()),
            };
            println!(
                "{:>3} {:>12.3} {:>12.3} {:>+9.1}   {:>22} {:>9}",
                q,
                t_ro.as_secs_f64() * 1e3,
                t_up.as_secs_f64() * 1e3,
                ovh,
                p_txt,
                p_ovh
            );
        }
        let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
        println!("average overhead: {avg:.1}%  (paper: <30% on average at 1.1 GB; ~15% at 11 MB)");
    }

    // Storage overhead comparison (the §4.1 "about 25% more space" claim
    // is covered in detail by the storage_overhead binary).
    println!("\ndone.");
}
