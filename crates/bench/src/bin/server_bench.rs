//! Client-observed latency of the network server — what does the wire
//! (framing + session + cursor paging) add on top of the engine? Merges
//! its rows into `BENCH_workload.json`.
//!
//! N concurrent clients hammer one in-memory two-document XMark catalog
//! through real TCP connections, each cycling the Q1–Q20 path corpus
//! ([`mbxq_xmark::QUERY_PATHS`]), parameterized point lookups
//! (`//item[@id = $id]` with a `$id` binding), and write bursts
//! (XUpdate appends of client-unique marker elements). Every request is
//! a full round trip — query, cursor header, page fetches until done —
//! so the numbers are end-to-end client-observed latencies, per query
//! class, aggregated across clients into p50/p99.
//!
//! Usage: `cargo run --release --bin server_bench [--smoke] [--secs N] [--clients N]`

use mbxq_server::{Client, Server, ServerConfig};
use mbxq_txn::{Catalog, CatalogConfig, StoreConfig};
use mbxq_xmark::rng::StdRng;
use mbxq_xmark::{generate, XMarkConfig, QUERY_PATHS};
use mbxq_xpath::{Bindings, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DOCS: [&str; 2] = ["xmark0", "xmark1"];

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1000.0 // ns → µs
}

/// One client's samples: (class label, latency ns) pairs plus failure
/// counts (write bursts can lose lock races under contention).
struct ClientLog {
    samples: Vec<(&'static str, u64)>,
    write_conflicts: u64,
}

/// One client's life: cycle classes until `stop`, timing every full
/// round trip. Clients alternate target documents per iteration and
/// write only their own marker element names, so queries stay on
/// steady-state node sets while writes genuinely mutate the documents.
fn run_client(
    addr: std::net::SocketAddr,
    id: usize,
    items_per_doc: usize,
    stop: &AtomicBool,
) -> ClientLog {
    let mut cl = Client::connect(addr).expect("connect");
    let mut rng = StdRng::seed_from_u64(0xbe7c + id as u64);
    let mut log = ClientLog {
        samples: Vec::new(),
        write_conflicts: 0,
    };
    let mut iter = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let doc = DOCS[(id + iter) % DOCS.len()];
        // The Q1–Q20 path corpus, one class per iteration.
        let (label, path) = QUERY_PATHS[iter % QUERY_PATHS.len()];
        let t0 = Instant::now();
        let nodes = cl.query_nodes(doc, path, None).expect("query class");
        log.samples.push((label, t0.elapsed().as_nanos() as u64));
        std::hint::black_box(nodes);
        // A parameterized point lookup with a `$id` binding.
        let mut b = Bindings::new();
        let id_n = rng.gen_range(0..items_per_doc.max(1));
        b.set("id", Value::Str(format!("item{id_n}")));
        let t0 = Instant::now();
        let hit = cl
            .query_nodes(doc, "//item[@id = $id]", Some(&b))
            .expect("point lookup");
        log.samples
            .push(("point_lookup", t0.elapsed().as_nanos() as u64));
        std::hint::black_box(hit);
        // A write burst: append one client-unique marker element. Lock
        // races with other clients on the same document root are real
        // contention, not failures — counted, not fatal.
        let script = format!(
            r#"<xupdate:modifications version="1.0">
                 <xupdate:append select="/site">
                   <xupdate:element name="srvbench{id}">
                     <xupdate:attribute name="i">{iter}</xupdate:attribute>
                   </xupdate:element>
                 </xupdate:append>
               </xupdate:modifications>"#
        );
        let t0 = Instant::now();
        match cl.xupdate(doc, &script) {
            Ok(_) => log
                .samples
                .push(("write_burst", t0.elapsed().as_nanos() as u64)),
            Err(_) => log.write_conflicts += 1,
        }
        iter += 1;
    }
    let _ = cl.goodbye();
    log
}

/// Replaces any previous server rows in `BENCH_workload.json` with
/// `rows` — the file is one JSON object per line, so the merge is
/// line-based and leaves every other bench's rows untouched.
fn merge_into_workload_json(rows: &[String]) {
    let path = "BENCH_workload.json";
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .map(|l| l.trim_end().trim_end_matches(',').to_string())
                .filter(|l| {
                    let t = l.trim();
                    t != "[" && t != "]" && !t.is_empty() && !t.contains("\"bench\": \"server\"")
                })
                .collect()
        })
        .unwrap_or_default();
    lines.extend(rows.iter().cloned());
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    std::fs::write(path, out).expect("write BENCH_workload.json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg_num = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|s| {
                s.parse::<f64>()
                    .unwrap_or_else(|_| panic!("{name} takes a number"))
            })
    };
    let secs = arg_num("--secs").unwrap_or(if smoke { 0.3 } else { 2.0 });
    let clients = arg_num("--clients")
        .map(|c| c as usize)
        .unwrap_or(if smoke { 2 } else { 4 });

    let scale = if smoke { 0.002 } else { 0.01 };
    let cat = Arc::new(Catalog::in_memory(CatalogConfig {
        store: StoreConfig {
            lock_timeout: Duration::from_millis(500),
            query_threads: 2,
            ..StoreConfig::default()
        },
        page: mbxq_storage::PageConfig::new(256, 80).expect("valid"),
    }));
    let mut items_per_doc = usize::MAX;
    for (k, name) in DOCS.iter().enumerate() {
        let xml = generate(&XMarkConfig::scaled(scale, 42 + k as u64));
        items_per_doc = items_per_doc.min(xml.match_indices("<item ").count());
        cat.create_doc(name, &xml).expect("create doc");
    }
    let server = Server::start(
        cat.clone(),
        ServerConfig {
            workers: clients + 2,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    println!(
        "XMark scale {scale} × {} docs ({items_per_doc} items each), {clients} clients, {secs}s, \
         server at {addr}",
        DOCS.len()
    );

    let stop = AtomicBool::new(false);
    let logs: Vec<ClientLog> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let stop = &stop;
                s.spawn(move || run_client(addr, c, items_per_doc, stop))
            })
            .collect();
        let t0 = Instant::now();
        while t0.elapsed().as_secs_f64() < secs {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Aggregate across clients, per class.
    let mut by_class: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for log in &logs {
        for &(class, ns) in &log.samples {
            by_class.entry(class).or_default().push(ns);
        }
    }
    let write_conflicts: u64 = logs.iter().map(|l| l.write_conflicts).sum();
    let total: usize = by_class.values().map(|v| v.len()).sum();
    println!("{total} requests, {write_conflicts} write-burst lock conflicts");
    println!(
        "{:<22} {:>7} {:>10} {:>10}",
        "class", "count", "p50 µs", "p99 µs"
    );
    let mut rows = Vec::new();
    for (class, lat) in by_class.iter_mut() {
        lat.sort_unstable();
        let (p50, p99) = (percentile(lat, 50.0), percentile(lat, 99.0));
        println!("{class:<22} {:>7} {p50:>10.1} {p99:>10.1}", lat.len());
        let mut row = String::new();
        let _ = write!(
            row,
            "  {{\"bench\": \"server\", \"class\": \"{class}\", \"clients\": {clients}, \
             \"secs\": {secs}, \"count\": {}, \"p50_us\": {p50:.2}, \"p99_us\": {p99:.2}, {host}}}",
            lat.len(),
            host = mbxq_bench::host_json_fields()
        );
        rows.push(row);
    }

    // Liveness: every class must have been exercised, the marker writes
    // must have landed, and the server must still answer.
    assert!(
        by_class.len() > QUERY_PATHS.len(),
        "every query class sampled at least once (got {})",
        by_class.len()
    );
    let mut check = Client::connect(addr).expect("post-run connect");
    let markers: usize = DOCS
        .iter()
        .flat_map(|d| (0..clients).map(move |c| (d, c)))
        .map(|(d, c)| {
            check
                .query_nodes(d, &format!("//srvbench{c}"), None)
                .expect("marker query")
                .len()
        })
        .sum();
    let writes: usize = by_class.get("write_burst").map_or(0, |v| v.len());
    assert_eq!(markers, writes, "every acknowledged write is visible");
    assert!(writes > 0 || write_conflicts > 0, "writers must have run");
    drop(check);
    server.shutdown();

    if smoke {
        println!("smoke mode: skipping BENCH_workload.json");
        return;
    }
    merge_into_workload_json(&rows);
    println!("merged {} server rows into BENCH_workload.json", rows.len());
}
