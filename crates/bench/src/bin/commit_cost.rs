//! Commit cost vs document size — the measurement behind the
//! O(touched-pages) commit PR. Emits `BENCH_commit.json`.
//!
//! The paper's §3.2 design keeps the pre/post plane *updateable* because
//! a commit touches only the logical pages it modified plus the
//! delta-adjusted ancestor sizes. The old `WriteTxn::commit` buried that
//! property under a deep clone of the whole `PagedDoc` (O(document) per
//! commit); the copy-on-write column layout restores it. This binary
//! commits the same single small update against XMark documents of
//! growing scale and times:
//!
//! * **cow** — the real commit path: COW clone + apply + WAL + publish;
//! * **clone** — the old behavior, reproduced via
//!   [`PagedDoc::deep_clone`]: copy every page, apply, publish.
//!
//! The cow series must stay near-flat in document size while the clone
//! baseline grows linearly. `--smoke` runs a tiny scale once (CI guard
//! that the binary keeps working).

use mbxq_bench::paper_page_config;
use mbxq_storage::{InsertPosition, PagedDoc, TreeView};
use mbxq_txn::wal::Wal;
use mbxq_txn::{AncestorLockMode, Store, StoreConfig};
use mbxq_xmark::{generate, XMarkConfig};
use mbxq_xml::Document;
use mbxq_xpath::XPath;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn store_config() -> StoreConfig {
    StoreConfig {
        ancestor_mode: AncestorLockMode::Delta,
        lock_timeout: Duration::from_secs(5),
        validate_on_commit: false,
        ..StoreConfig::default()
    }
}

/// Minimum over `reps` runs of `stage` (untimed) followed by `run`
/// (timed) — commit latency without the staging noise.
fn min_timed<S, R>(reps: usize, mut stage: impl FnMut() -> S, mut run: impl FnMut(S) -> R) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let staged = stage();
        let t0 = Instant::now();
        let out = run(staged);
        let dt = t0.elapsed().as_nanos();
        std::hint::black_box(out);
        best = best.min(dt);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[f64] = if smoke {
        &[0.002]
    } else {
        &[0.005, 0.02, 0.08, 0.24]
    };
    let reps = if smoke { 2 } else { 7 };

    let frag_xml = r#"<person id="bench"><name>B</name></person>"#;
    let frag = Document::parse_fragment(frag_xml).unwrap();
    let path = XPath::parse("/site/people").unwrap();

    let mut json = String::from("[\n");
    let mut first = true;
    for &scale in scales {
        let xml = generate(&XMarkConfig::scaled(scale, 42));
        let bytes = xml.len();
        let doc = PagedDoc::parse_str(&xml, paper_page_config()).expect("shred XMark");
        let nodes = doc.used_count();
        let pages = doc.stats().pages;
        let store = Store::open(doc, Wal::in_memory(), store_config());

        // One instrumented commit: how many column pages did publishing
        // actually privatize?
        let before = store.snapshot();
        {
            let mut t = store.begin();
            let people = t.select(&path).unwrap();
            t.insert(InsertPosition::LastChildOf(people[0]), &frag)
                .unwrap();
            t.commit().unwrap();
        }
        let after = store.snapshot();
        let (shared, total) = after.shared_pages_with(&before);
        let touched = total - shared;

        // COW path: stage outside the timer, time commit() alone.
        let cow_ns = min_timed(
            reps,
            || {
                let mut t = store.begin();
                let people = t.select(&path).unwrap();
                t.insert(InsertPosition::LastChildOf(people[0]), &frag)
                    .unwrap();
                t
            },
            |t| t.commit().unwrap(),
        );

        // Clone baseline: what the old commit did — deep-copy the master,
        // apply the op, publish a fresh Arc.
        let people_node = {
            let snap = store.snapshot();
            let pres = path.select_from_root(snap.as_ref()).unwrap();
            snap.pre_to_node(pres[0]).unwrap()
        };
        let clone_ns = min_timed(
            reps,
            || store.snapshot(),
            |cur| {
                let mut new_doc = cur.deep_clone();
                new_doc
                    .insert(InsertPosition::LastChildOf(people_node), &frag)
                    .unwrap();
                Arc::new(new_doc)
            },
        );

        let speedup = clone_ns as f64 / cow_ns.max(1) as f64;
        println!(
            "scale {scale:<5} ({bytes:>9} B, {nodes:>8} nodes, {pages:>5} pages)  \
             cow {cow_ns:>10} ns  clone {clone_ns:>12} ns  speedup {speedup:>8.1}x  \
             pages touched {touched}/{total}"
        );
        if smoke {
            assert!(
                touched < total,
                "COW commit must keep some pages shared ({touched}/{total})"
            );
        }

        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "  {{\"scale\": {scale}, \"xml_bytes\": {bytes}, \"nodes\": {nodes}, \
             \"logical_pages\": {pages}, \"cow_commit_ns\": {cow_ns}, \
             \"clone_commit_ns\": {clone_ns}, \"speedup\": {speedup:.4}, \
             \"pages_touched\": {touched}, \"column_pages_total\": {total}, {host}}}",
            host = mbxq_bench::host_json_fields()
        );
    }
    json.push_str("\n]\n");
    if smoke {
        // Don't clobber the committed full-scale dataset with one tiny
        // smoke row (CI and developers run --smoke from the repo root).
        println!("smoke mode: skipping BENCH_commit.json");
    } else {
        std::fs::write("BENCH_commit.json", &json).expect("write BENCH_commit.json");
        println!("wrote BENCH_commit.json");
    }
}
