//! The **§4.1 storage-overhead claim**: "the pos/size/level table of the
//! updateable schema occupies about 25% more space than the
//! pre/size/level table of the read-only mapping", from 20 % unused
//! tuples plus the extra `node` column and the `node→pos` table.
//!
//! Usage: `cargo run -p mbxq-bench --release --bin storage_overhead`

use mbxq_bench::paper_page_config;
use mbxq_storage::{PagedDoc, ReadOnlyDoc, TreeView};
use mbxq_xmark::{generate, XMarkConfig};

fn main() {
    println!("Storage footprint: read-only vs updateable schema (§4.1)");
    println!(
        "{:>8} {:>10} | {:>9} {:>9} {:>10} | {:>12} {:>12} {:>10}",
        "scale",
        "xml bytes",
        "ro slots",
        "up slots",
        "slot ovh",
        "ro bytes",
        "up bytes",
        "byte ovh"
    );
    for &scale in &[0.001, 0.004, 0.016, 0.064] {
        let xml = generate(&XMarkConfig::scaled(scale, 42));
        let ro = ReadOnlyDoc::parse_str(&xml).unwrap();
        let up = PagedDoc::parse_str(&xml, paper_page_config()).unwrap();
        let ro_bytes = ro.table_bytes();
        let stats = up.stats();
        // The paper's "~25% more space" claim compares tuple counts of
        // pre/size/level vs pos/size/level at equal tuple width: with
        // 20% of each page unused, the paged table holds used/0.8 slots.
        let slot_ovh = (stats.capacity as f64 / stats.used as f64 - 1.0) * 100.0;
        // Byte overhead additionally includes the node column and the
        // node→pos table (our slots are also wider: 64-bit sizes/ids).
        let byte_ovh = (stats.table_bytes as f64 / ro_bytes as f64 - 1.0) * 100.0;
        println!(
            "{:>8} {:>10} | {:>9} {:>9} {:>+9.1}% | {:>12} {:>12} {:>+9.1}%",
            scale,
            xml.len(),
            stats.used,
            stats.capacity,
            slot_ovh,
            ro_bytes,
            stats.table_bytes,
            byte_ovh,
        );
        assert_eq!(ro.used_count(), stats.used);
    }
    println!("\npaper claim: ~+25% slots at fill factor 80 (the 'slot ovh' column),");
    println!("plus the extra node column and node/pos table ('byte ovh' adds those");
    println!("and our wider 64-bit sizes/node ids).");
}
