//! Minimal Criterion-compatible bench harness.
//!
//! The build environment has no access to crates.io, so the benches in
//! `benches/` run on this drop-in subset of the Criterion API instead
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `Bencher::iter_batched`, the `criterion_group!`/`criterion_main!`
//! macros). Each benchmark runs a warm-up pass plus `sample_size` timed
//! samples and prints min / median / mean per benchmark line — enough
//! statistical robustness for A/B comparisons, not a Criterion
//! replacement for rigorous regression detection.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// every variant re-runs setup per sample, untimed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh input for every single iteration.
    PerIteration,
}

/// A benchmark identifier: `function / parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, one sample per call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up (untimed).
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let r = f();
            let dt = t0.elapsed();
            black_box(r);
            self.samples.push(dt);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup is untimed.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            let r = routine(input);
            let dt = t0.elapsed();
            black_box(r);
            self.samples.push(dt);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Runs one benchmark with an input reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        self.criterion.report(&label, &mut b.samples);
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness state.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    /// Runs a stand-alone benchmark (outside any group).
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            sample_size: 50,
        };
        g.bench_function(id, f);
        self
    }

    fn report(&mut self, label: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{label:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            samples.len()
        );
    }
}

/// Mirrors `criterion_group!`: defines a function running each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: defines `main` invoking the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut setups = 0usize;
        g.bench_with_input(BenchmarkId::new("b", 1), &1, |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
