//! Shared helpers for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the paper's evaluation
//! artifacts; the benches in `benches/` (running on the in-tree
//! [`harness`], a Criterion-API subset — the build environment has no
//! crates.io access) provide repeated-sample versions of the same
//! measurements at a fixed small scale.

pub mod harness;

use mbxq_storage::{PageConfig, PagedDoc, ReadOnlyDoc};
use mbxq_xmark::{generate, XMarkConfig};
use std::time::{Duration, Instant};

/// The paper's updateable-schema scenario: "about 20 % of the logical
/// pages were kept unused" (§4.1) — fill factor 80 %.
pub fn paper_page_config() -> PageConfig {
    PageConfig::new(1024, 80).expect("valid config")
}

/// Logical cores on this host (`1` when the query fails).
pub fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The chunk-kernel arm this binary's auto dispatch resolves to:
/// `"simd"` when the build carries compiled vector instructions,
/// `"scalar"` otherwise (see [`mbxq_axes::simd_compiled`]).
pub fn kernel_arm() -> &'static str {
    if mbxq_axes::simd_compiled() {
        "simd"
    } else {
        "scalar"
    }
}

/// A host tag for benchmark provenance: `$MBXQ_HOST` when set, else
/// `<arch>-<os>`. Numbers from different hosts must never be compared
/// silently; this tag makes the provenance explicit in every row.
pub fn host_tag() -> String {
    std::env::var("MBXQ_HOST")
        .unwrap_or_else(|_| format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS))
}

/// The host/build provenance fields every `BENCH_*.json` row carries:
/// `"cores": N, "kernel": "...", "host": "..."` (no braces, ready to
/// splice into a JSON object literal).
pub fn host_json_fields() -> String {
    format!(
        "\"cores\": {}, \"kernel\": \"{}\", \"host\": \"{}\"",
        cores(),
        kernel_arm(),
        host_tag()
    )
}

/// Merges freshly measured rows into a shared `BENCH_*.json` array:
/// previous rows carrying the same `"bench"` tag are replaced, rows
/// from other binaries are kept (both `plan_cost` and `multi_pred`
/// write into `BENCH_plan.json`). Every row must be a single line —
/// the merge is line-oriented.
pub fn merge_bench_rows(path: &str, tag: &str, rows: &[String]) -> std::io::Result<()> {
    let marker = format!("\"bench\": \"{tag}\"");
    let mut kept: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let t = line.trim();
            // Untagged rows predate the shared-file format; they are
            // stale duplicates of whatever binary wrote them — drop.
            if t.starts_with('{') && t.contains("\"bench\": \"") && !t.contains(&marker) {
                kept.push(t.trim_end_matches(',').to_string());
            }
        }
    }
    kept.extend(
        rows.iter()
            .map(|r| r.trim().trim_end_matches(',').to_string()),
    );
    let mut out = String::from("[\n");
    for (i, row) in kept.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(row);
    }
    out.push_str("\n]\n");
    std::fs::write(path, out)
}

/// Builds the same XMark document in both schemas.
pub fn build_both(scale: f64, seed: u64) -> (ReadOnlyDoc, PagedDoc, usize) {
    let xml = generate(&XMarkConfig::scaled(scale, seed));
    let bytes = xml.len();
    let ro = ReadOnlyDoc::parse_str(&xml).expect("generated XML is well-formed");
    let up = PagedDoc::parse_str(&xml, paper_page_config()).expect("shred paged");
    (ro, up, bytes)
}

/// Times `f` over `reps` repetitions and returns the minimum (the
/// standard noise-robust point estimate for CPU-bound kernels).
pub fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        std::hint::black_box(r);
        if dt < best {
            best = dt;
        }
    }
    best
}

/// Figure 9's published numbers: seconds for (ro, up) per query, at the
/// four document sizes. `None` where the paper leaves a blank (Q11/Q12
/// at 1.1 GB).
pub type PaperRow = [Option<(f64, f64)>; 4];

/// The `ro`/`up` table of Figure 9, indexed `[query-1]`.
pub const FIGURE9: [PaperRow; 20] = [
    [
        Some((0.034, 0.035)),
        Some((0.045, 0.053)),
        Some((0.170, 0.204)),
        Some((1.334, 1.939)),
    ],
    [
        Some((0.043, 0.045)),
        Some((0.067, 0.088)),
        Some((0.317, 0.462)),
        Some((2.483, 4.136)),
    ],
    [
        Some((0.120, 0.124)),
        Some((0.241, 0.283)),
        Some((1.458, 1.800)),
        Some((12.656, 16.427)),
    ],
    [
        Some((0.053, 0.055)),
        Some((0.066, 0.069)),
        Some((0.459, 0.459)),
        Some((3.927, 4.190)),
    ],
    [
        Some((0.039, 0.041)),
        Some((0.051, 0.063)),
        Some((0.163, 0.241)),
        Some((1.211, 2.254)),
    ],
    [
        Some((0.020, 0.020)),
        Some((0.023, 0.023)),
        Some((0.060, 0.060)),
        Some((0.368, 0.408)),
    ],
    [
        Some((0.024, 0.025)),
        Some((0.029, 0.029)),
        Some((0.083, 0.083)),
        Some((0.544, 0.607)),
    ],
    [
        Some((0.071, 0.073)),
        Some((0.118, 0.133)),
        Some((0.730, 0.800)),
        Some((10.198, 11.268)),
    ],
    [
        Some((0.109, 0.112)),
        Some((0.161, 0.191)),
        Some((0.873, 1.027)),
        Some((12.439, 14.575)),
    ],
    [
        Some((0.279, 0.297)),
        Some((0.657, 0.825)),
        Some((5.088, 6.686)),
        Some((51.843, 67.198)),
    ],
    [
        Some((0.083, 0.084)),
        Some((0.162, 0.186)),
        Some((3.426, 3.584)),
        None,
    ],
    [
        Some((0.083, 0.086)),
        Some((0.127, 0.140)),
        Some((1.717, 1.750)),
        None,
    ],
    [
        Some((0.050, 0.053)),
        Some((0.066, 0.087)),
        Some((0.208, 0.372)),
        Some((1.436, 3.341)),
    ],
    [
        Some((0.050, 0.052)),
        Some((0.213, 0.221)),
        Some((1.789, 1.881)),
        Some((17.918, 18.371)),
    ],
    [
        Some((0.065, 0.068)),
        Some((0.082, 0.099)),
        Some((0.255, 0.399)),
        Some((1.855, 3.736)),
    ],
    [
        Some((0.072, 0.075)),
        Some((0.093, 0.101)),
        Some((0.253, 0.320)),
        Some((2.043, 2.879)),
    ],
    [
        Some((0.047, 0.049)),
        Some((0.067, 0.085)),
        Some((0.307, 0.422)),
        Some((2.652, 4.137)),
    ],
    [
        Some((0.032, 0.032)),
        Some((0.042, 0.047)),
        Some((0.136, 0.167)),
        Some((1.091, 1.577)),
    ],
    [
        Some((0.064, 0.066)),
        Some((0.107, 0.138)),
        Some((0.583, 0.837)),
        Some((5.152, 7.940)),
    ],
    [
        Some((0.130, 0.133)),
        Some((0.173, 0.174)),
        Some((0.578, 0.601)),
        Some((4.988, 5.507)),
    ],
];

/// Labels for the paper's four document sizes.
pub const PAPER_SIZES: [&str; 4] = ["1.1 MB", "11 MB", "110 MB", "1.1 GB"];
