//! Loop-lifted staircase join.
//!
//! Pathfinder compiles XQuery `for`-loops into *loop-lifted* relational
//! plans: instead of evaluating an axis step once per binding, the whole
//! sequence of bindings is processed in one operator invocation over an
//! `(iter, pre)` relation — "the combination of efficient nested XPath
//! axis evaluation with loop-lifted staircase join" is what gives
//! MonetDB/XQuery its interactive XMark times (§1). The XMark query
//! plans in `mbxq-xmark` use this form for their nested `for` clauses.

use crate::{step_with, Axis, KernelArm, NodeTest};
use mbxq_storage::TreeView;

/// A loop-lifted context: parallel `(iter, pre)` columns, sorted by
/// `(iter, pre)` with no duplicate pairs. `iter` identifies the
/// surrounding `for`-loop binding the node belongs to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContextSeq {
    /// Loop-iteration ids (non-decreasing).
    pub iters: Vec<u32>,
    /// Pre ranks, ascending within each iteration.
    pub pres: Vec<u64>,
}

impl ContextSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-iteration context holding `pres` (must be sorted).
    pub fn single_iter(pres: Vec<u64>) -> Self {
        ContextSeq {
            iters: vec![0; pres.len()],
            pres,
        }
    }

    /// Lifts each node of a flat context into its own iteration — the
    /// relational image of entering a `for`-loop over the node sequence.
    pub fn lift(pres: &[u64]) -> Self {
        ContextSeq {
            iters: (0..pres.len() as u32).collect(),
            pres: pres.to_vec(),
        }
    }

    /// Number of `(iter, pre)` pairs.
    pub fn len(&self) -> usize {
        self.pres.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.pres.is_empty()
    }

    /// Iterates `(iter, pre)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.iters.iter().copied().zip(self.pres.iter().copied())
    }

    /// Appends one pair (must preserve the sort order).
    pub fn push(&mut self, iter: u32, pre: u64) {
        debug_assert!(
            self.iters.last().is_none_or(|&last| last <= iter),
            "iters must be non-decreasing"
        );
        self.iters.push(iter);
        self.pres.push(pre);
    }

    /// The pre ranks of one iteration (ascending).
    pub fn pres_of_iter(&self, iter: u32) -> &[u64] {
        let lo = self.iters.partition_point(|&i| i < iter);
        let hi = self.iters.partition_point(|&i| i <= iter);
        &self.pres[lo..hi]
    }

    /// Distinct iteration ids in order.
    pub fn iter_ids(&self) -> Vec<u32> {
        let mut ids = self.iters.clone();
        ids.dedup();
        ids
    }

    /// Flattens the relation into one duplicate-free, document-ordered
    /// node sequence — the projection that ends a loop-lifted plan when
    /// XPath semantics ask for a merged node set.
    pub fn merged_pres(&self) -> Vec<u64> {
        let mut out = self.pres.clone();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Per-row `(position(), last())` vectors: 1-based rank of each row
    /// within its iteration group and the group size. `reverse` counts
    /// positions from the group's end — the XPath rule for reverse axes,
    /// whose candidates are stored here in document order.
    pub fn positions(&self, reverse: bool) -> (Vec<f64>, Vec<f64>) {
        let mut pos = Vec::with_capacity(self.len());
        let mut last = Vec::with_capacity(self.len());
        let mut start = 0usize;
        while start < self.len() {
            let iter = self.iters[start];
            let mut end = start;
            while end < self.len() && self.iters[end] == iter {
                end += 1;
            }
            let n = end - start;
            for k in 0..n {
                let p = if reverse { n - k } else { k + 1 };
                pos.push(p as f64);
                last.push(n as f64);
            }
            start = end;
        }
        (pos, last)
    }

    /// Keeps only the rows whose flag is set (the relational `select`
    /// that applies a predicate mask). Group tags are preserved.
    pub fn retain_rows(&self, keep: &[bool]) -> ContextSeq {
        debug_assert_eq!(keep.len(), self.len());
        let mut out = ContextSeq::new();
        for (&flag, (iter, pre)) in keep.iter().zip(self.iter()) {
            if flag {
                out.push(iter, pre);
            }
        }
        out
    }

    /// Regroups rows under new iteration tags (`row_iters[k]` is row
    /// `k`'s new tag, non-decreasing), merging rows that land in the same
    /// iteration into sorted, duplicate-free groups — the back-mapping
    /// after a nested scope expanded each row into its own iteration.
    pub fn regroup(&self, row_iters: &[u32]) -> ContextSeq {
        debug_assert_eq!(row_iters.len(), self.len());
        let mut out = ContextSeq::new();
        let mut start = 0usize;
        while start < self.len() {
            let target = row_iters[start];
            let mut end = start;
            while end < self.len() && row_iters[end] == target {
                end += 1;
            }
            let mut group: Vec<u64> = self.pres[start..end].to_vec();
            group.sort_unstable();
            group.dedup();
            for pre in group {
                out.push(target, pre);
            }
            start = end;
        }
        out
    }
}

/// Evaluates one axis step per iteration group in a single pass over the
/// groups — the loop-lifted operator. Results keep their iteration tags,
/// sorted by `(iter, pre)`.
pub fn step_lifted<V: TreeView + ?Sized>(
    view: &V,
    ctx: &ContextSeq,
    axis: Axis,
    test: &NodeTest,
) -> ContextSeq {
    step_lifted_with(view, ctx, axis, test, KernelArm::auto())
}

/// [`step_lifted`] on an explicit chunk-kernel arm (see
/// [`crate::batch::KernelArm`]).
pub fn step_lifted_with<V: TreeView + ?Sized>(
    view: &V,
    ctx: &ContextSeq,
    axis: Axis,
    test: &NodeTest,
    arm: KernelArm,
) -> ContextSeq {
    let mut out = ContextSeq::new();
    let mut start = 0usize;
    while start < ctx.len() {
        let iter = ctx.iters[start];
        let mut end = start;
        while end < ctx.len() && ctx.iters[end] == iter {
            end += 1;
        }
        let result = step_with(view, &ctx.pres[start..end], axis, test, arm);
        for pre in result {
            out.push(iter, pre);
        }
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step;
    use mbxq_storage::ReadOnlyDoc;

    const PAPER_DOC: &str =
        "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";

    #[test]
    fn lift_assigns_one_iter_per_node() {
        let ctx = ContextSeq::lift(&[1, 5]);
        assert_eq!(ctx.iter_ids(), vec![0, 1]);
        assert_eq!(ctx.pres_of_iter(0), &[1]);
        assert_eq!(ctx.pres_of_iter(1), &[5]);
    }

    #[test]
    fn lifted_step_keeps_iterations_separate() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        // for $x in (b, f) return $x/child::*
        let ctx = ContextSeq::lift(&[1, 5]);
        let out = step_lifted(&d, &ctx, Axis::Child, &NodeTest::AnyElement);
        assert_eq!(out.pres_of_iter(0), &[2]); // b -> c
        assert_eq!(out.pres_of_iter(1), &[6, 7]); // f -> g, h
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn single_iter_merges_results() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        let ctx = ContextSeq::single_iter(vec![1, 5]);
        let out = step_lifted(&d, &ctx, Axis::Child, &NodeTest::AnyElement);
        assert_eq!(out.pres, vec![2, 6, 7]);
        assert_eq!(out.iters, vec![0, 0, 0]);
    }

    #[test]
    fn nested_lift_composes() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        // for $x in (a)/* return $x/descendant::*
        let kids = step(&d, &[0], Axis::Child, &NodeTest::AnyElement);
        let ctx = ContextSeq::lift(&kids);
        let out = step_lifted(&d, &ctx, Axis::Descendant, &NodeTest::AnyElement);
        assert_eq!(out.pres_of_iter(0), &[2, 3, 4]); // b's subtree
        assert_eq!(out.pres_of_iter(1), &[6, 7, 8, 9]); // f's subtree
    }

    #[test]
    fn empty_context_is_fine() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        let out = step_lifted(&d, &ContextSeq::new(), Axis::Child, &NodeTest::AnyNode);
        assert!(out.is_empty());
    }

    #[test]
    fn merged_pres_flattens_and_dedups() {
        let mut cs = ContextSeq::new();
        cs.push(0, 4);
        cs.push(0, 9);
        cs.push(1, 2);
        cs.push(1, 9);
        assert_eq!(cs.merged_pres(), vec![2, 4, 9]);
    }

    #[test]
    fn positions_count_per_group_both_directions() {
        let mut cs = ContextSeq::new();
        cs.push(0, 1);
        cs.push(0, 2);
        cs.push(0, 3);
        cs.push(2, 7);
        let (pos, last) = cs.positions(false);
        assert_eq!(pos, vec![1.0, 2.0, 3.0, 1.0]);
        assert_eq!(last, vec![3.0, 3.0, 3.0, 1.0]);
        let (rpos, rlast) = cs.positions(true);
        assert_eq!(rpos, vec![3.0, 2.0, 1.0, 1.0]);
        assert_eq!(rlast, vec![3.0, 3.0, 3.0, 1.0]);
    }

    #[test]
    fn retain_rows_applies_mask_keeping_groups() {
        let mut cs = ContextSeq::new();
        cs.push(0, 1);
        cs.push(0, 2);
        cs.push(1, 5);
        let kept = cs.retain_rows(&[true, false, true]);
        assert_eq!(kept.iters, vec![0, 1]);
        assert_eq!(kept.pres, vec![1, 5]);
    }

    #[test]
    fn regroup_merges_rows_under_new_tags() {
        // Rows 0..3 were expanded into their own iterations; map them
        // back to outer iterations [0, 0, 4] and merge duplicates.
        let mut cs = ContextSeq::new();
        cs.push(0, 8);
        cs.push(1, 3);
        cs.push(2, 3);
        let back = cs.regroup(&[0, 0, 4]);
        assert_eq!(back.iters, vec![0, 0, 4]);
        assert_eq!(back.pres, vec![3, 8, 3]);
    }
}
