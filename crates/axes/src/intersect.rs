//! Sorted posting-list intersection kernels — the merge half of the
//! multi-predicate value step, with a vectorized and a scalar arm.
//!
//! A `MultiProbe` step probes the content index once per recognized
//! predicate and intersects the resulting candidate lists *before* the
//! range semijoin back into the context, so the semijoin and any
//! residual verification only ever touch nodes that already satisfy
//! every indexable predicate. Posting lists arrive sorted (document
//! order) and deduplicated, so intersection is a merge problem, and the
//! classic two-regime split applies:
//!
//! * **Galloping** — when one list is much shorter than the other
//!   (`GALLOP_RATIO`), walk the short list and exponentially search
//!   the long one from a moving cursor: `O(n · log(m/n))`, the shape
//!   that wins when a selective predicate meets an unselective one.
//!   Branchy binary search does not vectorize; both kernel arms share
//!   this path.
//! * **Block merge** — when the lists are comparable, advance two-lane
//!   windows through both lists, comparing all window cross pairs per
//!   iteration. Under [`KernelArm::Simd`] (the `simd` feature on
//!   x86_64) the four 64-bit equality tests of a window pair run as two
//!   SSE2 compares (no `cmpeq_epi64` in SSE2 — a lane is equal iff both
//!   of its 32-bit halves compare equal, checked on the byte movemask);
//!   otherwise a hand-unrolled scalar twin computes bit-identical
//!   results, so [`KernelArm::Simd`] is always safe to force.
//!
//! The k-way entry point [`intersect_sorted`] folds pairwise in the
//! *given* list order — the caller (the executor's degree-bound
//! estimator) ranks lists by estimated cardinality so the intermediate
//! result collapses as early as possible; this kernel deliberately does
//! not second-guess that order beyond putting the shorter operand of
//! each pairwise step on the driving side.

use crate::batch::KernelArm;

/// Length ratio above which a pairwise intersection gallops instead of
/// block-merging. 8 is the conventional crossover: below it the merge's
/// branch-free progress beats binary-search cache misses.
const GALLOP_RATIO: usize = 8;

/// Intersects `k` sorted, deduplicated posting lists in the given
/// order, folding pairwise (`((l0 ∩ l1) ∩ l2) …`) and short-circuiting
/// on an empty intermediate. Returns the sorted intersection.
pub fn intersect_sorted(lists: &[&[u64]], arm: KernelArm) -> Vec<u64> {
    match lists {
        [] => Vec::new(),
        [only] => only.to_vec(),
        [first, rest @ ..] => {
            let mut acc = Vec::new();
            intersect_pair(first, rest[0], arm, &mut acc);
            for list in &rest[1..] {
                if acc.is_empty() {
                    break;
                }
                let prev = std::mem::take(&mut acc);
                intersect_pair(&prev, list, arm, &mut acc);
            }
            acc
        }
    }
}

/// Appends the intersection of two sorted, deduplicated lists to
/// `out`, picking the regime from the length ratio (module docs).
pub fn intersect_pair(a: &[u64], b: &[u64], arm: KernelArm, out: &mut Vec<u64>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        gallop_intersect(small, large, out);
    } else {
        match arm {
            KernelArm::Scalar => merge_intersect(small, large, out),
            KernelArm::Simd => vector::block_intersect(small, large, out),
        }
    }
}

/// Walks `small`, exponentially searching `large` from a cursor that
/// only moves forward — `O(n · log(m/n))` total.
fn gallop_intersect(small: &[u64], large: &[u64], out: &mut Vec<u64>) {
    let mut base = 0usize;
    for &x in small {
        if base >= large.len() {
            break;
        }
        // Widen the probe window exponentially until it covers x …
        let mut bound = 1usize;
        while base + bound < large.len() && large[base + bound] < x {
            bound <<= 1;
        }
        // … then binary-search inside it.
        let end = (base + bound + 1).min(large.len());
        let idx = base + large[base..end].partition_point(|&v| v < x);
        if idx < large.len() && large[idx] == x {
            out.push(x);
            base = idx + 1;
        } else {
            base = idx;
        }
    }
}

/// The plain two-cursor merge — the [`KernelArm::Scalar`] arm of the
/// comparable-length regime.
fn merge_intersect(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// The [`KernelArm::Simd`] kernels — SSE2 under `--features simd` on
/// x86_64, a hand-unrolled scalar equivalent otherwise (same interface,
/// bit-identical results, as in `batch::vector`).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod vector {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// Two-lane block merge: compares the window pair `a[i..i+2]` ×
    /// `b[j..j+2]` (all four cross pairs) per iteration, then advances
    /// the window with the smaller maximum. Strict ascending order
    /// makes at most one match per element possible, so the aligned
    /// and swapped compares are mutually exclusive per lane.
    pub(super) fn block_intersect(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
        let (mut i, mut j) = (0usize, 0usize);
        // SAFETY: every 16-byte load reads lanes `i..i+2` / `j..j+2`,
        // and the loop bound guarantees both windows are in range.
        // Loads are unaligned (`loadu`) — posting lists carry no
        // alignment guarantee.
        unsafe {
            while i + 2 <= a.len() && j + 2 <= b.len() {
                let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
                let vb = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
                // 64-bit lane equality out of SSE2's 32-bit compare: a
                // lane matches iff all 8 of its mask bytes are set.
                let eq = _mm_movemask_epi8(_mm_cmpeq_epi32(va, vb)) as u32;
                let sw = _mm_shuffle_epi32::<0b0100_1110>(vb); // swap 64-bit lanes
                let eqs = _mm_movemask_epi8(_mm_cmpeq_epi32(va, sw)) as u32;
                if eq & 0x00ff == 0x00ff || eqs & 0x00ff == 0x00ff {
                    out.push(a[i]);
                }
                if eq & 0xff00 == 0xff00 || eqs & 0xff00 == 0xff00 {
                    out.push(a[i + 1]);
                }
                let (amax, bmax) = (a[i + 1], b[j + 1]);
                if amax <= bmax {
                    i += 2;
                }
                if bmax <= amax {
                    j += 2;
                }
            }
        }
        super::merge_intersect(&a[i..], &b[j..], out);
    }
}

/// The hand-unrolled scalar fallback for the [`KernelArm::Simd`] arm —
/// same window algorithm and results as the intrinsics module.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod vector {
    /// See the SSE2 twin: two-lane block merge, scalar cross compares.
    pub(super) fn block_intersect(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
        let (mut i, mut j) = (0usize, 0usize);
        while i + 2 <= a.len() && j + 2 <= b.len() {
            if a[i] == b[j] || a[i] == b[j + 1] {
                out.push(a[i]);
            }
            if a[i + 1] == b[j + 1] || a[i + 1] == b[j] {
                out.push(a[i + 1]);
            }
            let (amax, bmax) = (a[i + 1], b[j + 1]);
            if amax <= bmax {
                i += 2;
            }
            if bmax <= amax {
                j += 2;
            }
        }
        super::merge_intersect(&a[i..], &b[j..], out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Deterministic pseudo-random sorted list (xorshift; no external
    /// RNG dependency).
    fn list(seed: u64, len: usize, span: u64) -> Vec<u64> {
        let mut s = seed | 1;
        let mut set = BTreeSet::new();
        while set.len() < len {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            set.insert(s % span);
        }
        set.into_iter().collect()
    }

    fn naive(lists: &[&[u64]]) -> Vec<u64> {
        let Some((first, rest)) = lists.split_first() else {
            return Vec::new();
        };
        first
            .iter()
            .copied()
            .filter(|x| rest.iter().all(|l| l.binary_search(x).is_ok()))
            .collect()
    }

    /// Both arms must agree with the naive set intersection across
    /// length ratios spanning the gallop and block-merge regimes,
    /// odd lengths (partial tail windows) and empty lists included.
    #[test]
    fn pairwise_matches_naive_on_both_arms() {
        let shapes: &[(usize, usize, u64)] = &[
            (0, 10, 50),
            (1, 1, 4),
            (3, 200, 300), // gallop regime
            (7, 9, 40),
            (16, 16, 64),
            (17, 23, 60), // odd lengths: tail lanes
            (100, 130, 400),
            (64, 4096, 8192), // deep gallop
        ];
        for &(na, nb, span) in shapes {
            for (sa, sb) in [(1u64, 2u64), (11, 7), (5, 5)] {
                let a = list(sa.wrapping_mul(0x9e37_79b9), na, span);
                let b = list(sb.wrapping_mul(0x85eb_ca6b), nb, span);
                let want = naive(&[&a, &b]);
                for arm in [KernelArm::Scalar, KernelArm::Simd] {
                    let mut got = Vec::new();
                    intersect_pair(&a, &b, arm, &mut got);
                    assert_eq!(got, want, "na={na} nb={nb} span={span} {arm:?}");
                    // Symmetric: operand order must not matter.
                    let mut rev = Vec::new();
                    intersect_pair(&b, &a, arm, &mut rev);
                    assert_eq!(rev, want, "reversed na={na} nb={nb} {arm:?}");
                }
            }
        }
    }

    /// K-way folds agree with the naive intersection for 0–4 lists,
    /// both arms, including an empty list that kills the result.
    #[test]
    fn kway_matches_naive() {
        let l0 = list(0xdead, 40, 120);
        let l1 = list(0xbeef, 60, 120);
        let l2 = list(0xf00d, 25, 120);
        let l3: Vec<u64> = Vec::new();
        let cases: &[&[&[u64]]] = &[
            &[],
            &[&l0],
            &[&l0, &l1],
            &[&l2, &l0, &l1],
            &[&l0, &l1, &l2, &l3],
        ];
        for lists in cases {
            let want = naive(lists);
            for arm in [KernelArm::Scalar, KernelArm::Simd] {
                assert_eq!(
                    intersect_sorted(lists, arm),
                    want,
                    "k={} {arm:?}",
                    lists.len()
                );
            }
        }
    }

    /// Dense overlapping runs — every element shared — exercise the
    /// equal-advance path of the block merge on both arms.
    #[test]
    fn identical_lists_roundtrip() {
        for n in [0usize, 1, 2, 3, 16, 33] {
            let a: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
            for arm in [KernelArm::Scalar, KernelArm::Simd] {
                assert_eq!(intersect_sorted(&[&a, &a], arm), a, "n={n} {arm:?}");
            }
        }
    }
}
