//! Low-level navigation iterators over a [`TreeView`].
//!
//! These encapsulate the skipping discipline: candidates move forward by
//! `pre + size + 1` jumps over whole subtrees, unused runs are crossed in
//! O(1) using their run length, and level comparisons bound the region —
//! the exact mechanics §2.2 describes for finding "all children of a node
//! prex … checking the first child prey = prex+1 and skipping to its
//! siblings prey = prey + size[prey] + 1".

use mbxq_storage::TreeView;

/// Iterates the direct children of the used node at `pre`, in document
/// order.
pub fn children<'a, V: TreeView + ?Sized>(view: &'a V, pre: u64) -> impl Iterator<Item = u64> + 'a {
    let lvl = view.level(pre);
    let mut p = pre + 1;
    let mut done = lvl.is_none();
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let parent_lvl = lvl.expect("checked above");
        loop {
            let q = match view.next_used_at_or_after(p) {
                Some(q) => q,
                None => {
                    done = true;
                    return None;
                }
            };
            match view.level(q) {
                Some(ql) if ql == parent_lvl + 1 => {
                    // Next sibling candidate: jump the child's region.
                    // (`region_end` handles interior holes.)
                    p = view.region_end(q);
                    return Some(q);
                }
                Some(ql) if ql > parent_lvl + 1 => {
                    // Deeper node — can happen when a size jump landed
                    // short inside a fragmented subtree; jump again.
                    p = q + view.size(q) + 1;
                }
                _ => {
                    // Left the parent's region.
                    done = true;
                    return None;
                }
            }
        }
    })
}

/// Iterates all used descendants of the used node at `pre`, in document
/// order (one sequential scan with O(1) hole skips).
pub fn descendants<'a, V: TreeView + ?Sized>(
    view: &'a V,
    pre: u64,
) -> impl Iterator<Item = u64> + 'a {
    let lvl = view.level(pre);
    let mut p = pre + 1;
    let mut done = lvl.is_none();
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let parent_lvl = lvl.expect("checked above");
        let q = match view.next_used_at_or_after(p) {
            Some(q) => q,
            None => {
                done = true;
                return None;
            }
        };
        match view.level(q) {
            Some(ql) if ql > parent_lvl => {
                p = q + 1;
                Some(q)
            }
            _ => {
                done = true;
                None
            }
        }
    })
}

/// Iterates the following siblings of the used node at `pre`, in document
/// order, by jumping region to region.
pub fn following_siblings<'a, V: TreeView + ?Sized>(
    view: &'a V,
    pre: u64,
) -> impl Iterator<Item = u64> + 'a {
    let lvl = view.level(pre);
    let mut p = if lvl.is_some() {
        view.region_end(pre)
    } else {
        0
    };
    let mut done = lvl.is_none();
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let my_lvl = lvl.expect("checked above");
        loop {
            let q = match view.next_used_at_or_after(p) {
                Some(q) => q,
                None => {
                    done = true;
                    return None;
                }
            };
            match view.level(q) {
                Some(ql) if ql == my_lvl => {
                    p = view.region_end(q);
                    return Some(q);
                }
                Some(ql) if ql > my_lvl => {
                    // Short landing inside a fragmented preceding
                    // subtree; keep jumping.
                    p = q + view.size(q) + 1;
                }
                _ => {
                    done = true;
                    return None;
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::{PageConfig, PagedDoc, ReadOnlyDoc};

    const PAPER_DOC: &str =
        "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";

    #[test]
    fn children_skip_subtrees() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        assert_eq!(children(&d, 0).collect::<Vec<_>>(), vec![1, 5]); // b, f
        assert_eq!(children(&d, 2).collect::<Vec<_>>(), vec![3, 4]); // d, e
        assert_eq!(children(&d, 3).count(), 0);
    }

    #[test]
    fn children_cross_page_holes() {
        let d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        // f at pre 5, children g (6) and h (8, across the hole at 7).
        assert_eq!(children(&d, 5).collect::<Vec<_>>(), vec![6, 8]);
    }

    #[test]
    fn descendants_stop_at_region_boundary() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        assert_eq!(descendants(&d, 1).collect::<Vec<_>>(), vec![2, 3, 4]); // b -> c, d, e
        assert_eq!(descendants(&d, 5).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(descendants(&d, 9).count(), 0);
    }

    #[test]
    fn following_siblings_jump_regions() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        assert_eq!(following_siblings(&d, 1).collect::<Vec<_>>(), vec![5]); // b -> f
        assert_eq!(following_siblings(&d, 5).count(), 0);
        assert_eq!(following_siblings(&d, 6).collect::<Vec<_>>(), vec![7]); // g -> h
    }

    #[test]
    fn iterators_on_fragmented_pages() {
        let mut d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        // Delete c (interior hole inside b's region on page 0).
        let c = d.pre_to_node(2).unwrap();
        d.delete(c).unwrap();
        let a_children: Vec<_> = children(&d, 0).collect();
        assert_eq!(a_children.len(), 2); // b, f
        assert_eq!(descendants(&d, a_children[0]).count(), 0); // b is empty now
                                                               // f's children still found across holes.
        let f = a_children[1];
        assert_eq!(children(&d, f).count(), 2);
    }
}
