//! Range semijoin and existence probes — the index-side physical
//! operators of the algebraic query layer.
//!
//! The staircase join answers an axis step by scanning the context
//! regions; when an **element-name index** is available
//! ([`TreeView::elements_named`]), the planner can instead probe the
//! index (all elements with the step's name, in document order) and
//! semijoin that list back to the context: per context region, a pair
//! of binary searches cuts the probe list down to the candidates whose
//! pre rank falls inside the region. The cost is O(|context| · log k +
//! output) instead of O(region) — the winning trade for selective
//! names over large regions.

use crate::loop_lifted::ContextSeq;
use crate::{children, descendants, step, Axis, NodeTest};
use mbxq_storage::TreeView;

/// Semijoins a document-ordered candidate list (an element-name-index
/// probe) back to a loop-lifted context: per `(iter, context-node)`,
/// emits the candidates standing in `axis` relation to the context
/// node. Supported axes: `Child`, `Descendant`, `DescendantOrSelf`
/// (the ones whose results lie inside the context node's region).
/// Results keep their iteration tags, sorted by `(iter, pre)`.
pub fn range_semijoin<V: TreeView + ?Sized>(
    view: &V,
    ctx: &ContextSeq,
    cands: &[u64],
    axis: Axis,
) -> ContextSeq {
    debug_assert!(cands.windows(2).all(|w| w[0] < w[1]), "cands sorted");
    let mut out = ContextSeq::new();
    let mut start = 0usize;
    while start < ctx.len() {
        let iter = ctx.iters[start];
        let mut end = start;
        while end < ctx.len() && ctx.iters[end] == iter {
            end += 1;
        }
        semijoin_group(view, &ctx.pres[start..end], cands, axis, |pre| {
            out.push(iter, pre)
        });
        start = end;
    }
    out
}

/// One iteration group of [`range_semijoin`]; `emit` receives the
/// qualifying candidates in ascending pre order without duplicates.
fn semijoin_group<V: TreeView + ?Sized>(
    view: &V,
    group: &[u64],
    cands: &[u64],
    axis: Axis,
    mut emit: impl FnMut(u64),
) {
    match axis {
        Axis::Descendant | Axis::DescendantOrSelf => {
            // Staircase pruning: a context node covered by a previous
            // one contributes nothing new, and surviving regions are
            // disjoint and ascending — the output needs no sort, and
            // each binary search only probes the candidate *suffix*
            // past the previous region (`base`), so a group of g
            // context nodes costs O(Σ log tailᵢ), not O(g · log k).
            let mut horizon = 0u64;
            let mut base = 0usize;
            for &c in group {
                if c < horizon {
                    continue;
                }
                let end = view.region_end(c);
                let lo = base
                    + if axis == Axis::DescendantOrSelf {
                        cands[base..].partition_point(|&p| p < c)
                    } else {
                        cands[base..].partition_point(|&p| p <= c)
                    };
                let hi = lo + cands[lo..].partition_point(|&p| p < end);
                for &p in &cands[lo..hi] {
                    emit(p);
                }
                base = hi;
                horizon = end;
            }
        }
        Axis::Child => {
            // A candidate inside (c, region_end(c)) at level(c)+1 is a
            // child of c. Nested context nodes make child sets
            // interleave, so collect and sort per group (sets are
            // disjoint — a node has one parent — no dedup needed).
            // Regions may nest, so only the search *floor* is monotone
            // (c ascends ⇒ lo ascends); `base` narrows the lower probe.
            let mut hits: Vec<u64> = Vec::new();
            let mut base = 0usize;
            for &c in group {
                let Some(lvl) = view.level(c) else { continue };
                let end = view.region_end(c);
                let lo = base + cands[base..].partition_point(|&p| p <= c);
                let hi = lo + cands[lo..].partition_point(|&p| p < end);
                hits.extend(
                    cands[lo..hi]
                        .iter()
                        .copied()
                        .filter(|&p| view.level(p) == Some(lvl + 1)),
                );
                base = lo;
            }
            hits.sort_unstable();
            for p in hits {
                emit(p);
            }
        }
        other => unreachable!("range_semijoin does not serve axis {other:?}"),
    }
}

/// Early-exit existence probe: `out[i]` is whether node `nodes[i]` has
/// at least one `axis::test` partner. The scan behind each node stops
/// at its **first** hit — the physical operator behind the rewriter's
/// `count(e) > 0` → `exists(e)` rule.
pub fn exists_step<V: TreeView + ?Sized>(
    view: &V,
    nodes: &[u64],
    axis: Axis,
    test: &NodeTest,
) -> Vec<bool> {
    nodes
        .iter()
        .map(|&c| match axis {
            Axis::Child => children(view, c).any(|p| test.matches(view, p)),
            Axis::Descendant => descendants(view, c).any(|p| test.matches(view, p)),
            Axis::DescendantOrSelf => {
                test.matches(view, c) || descendants(view, c).any(|p| test.matches(view, p))
            }
            Axis::SelfAxis => test.matches(view, c),
            Axis::Parent => view.parent_of(c).is_some_and(|p| test.matches(view, p)),
            // The remaining axes have no cheaper early-exit form than
            // the staircase step itself.
            other => !step(view, &[c], other, test).is_empty(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::{PageConfig, PagedDoc, QnId, ReadOnlyDoc};
    use mbxq_xml::QName;

    const DOC: &str = "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>";

    fn probe<V: TreeView>(view: &V, name: &str) -> Vec<u64> {
        let qn = view.pool().lookup_qname(&QName::local(name)).unwrap();
        view.elements_named(qn).unwrap()
    }

    fn all_elements<V: TreeView>(view: &V) -> Vec<u64> {
        let mut out = Vec::new();
        for qn in 0..view.pool().qname_count() as u32 {
            out.extend(view.elements_named(QnId(qn)).unwrap());
        }
        out.sort_unstable();
        out
    }

    /// The semijoin must agree with the staircase step for every
    /// supported axis and context shape.
    #[test]
    fn semijoin_matches_staircase() {
        let ro = ReadOnlyDoc::parse_str(DOC).unwrap();
        let up = PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap();
        fn check<V: TreeView>(view: &V) {
            let cands = all_elements(view);
            for axis in [Axis::Child, Axis::Descendant, Axis::DescendantOrSelf] {
                for ctx_pres in [vec![0], vec![1, 5], vec![1, 2], vec![0, 2, 7]] {
                    let ctx_pres: Vec<u64> =
                        ctx_pres.into_iter().filter(|&p| view.is_used(p)).collect();
                    let lifted = ContextSeq::lift(&ctx_pres);
                    let want = crate::step_lifted(view, &lifted, axis, &NodeTest::AnyElement);
                    let got = range_semijoin(view, &lifted, &cands, axis);
                    assert_eq!(got, want, "axis {axis:?}, ctx {ctx_pres:?}");
                }
            }
        }
        check(&ro);
        check(&up);
    }

    #[test]
    fn semijoin_uses_name_probe_lists() {
        let ro = ReadOnlyDoc::parse_str(DOC).unwrap();
        let ctx = ContextSeq::single_iter(vec![0]);
        let got = range_semijoin(&ro, &ctx, &probe(&ro, "h"), Axis::Descendant);
        assert_eq!(got.pres, probe(&ro, "h"));
        let none = range_semijoin(&ro, &ctx, &[], Axis::Descendant);
        assert!(none.is_empty());
    }

    #[test]
    fn exists_matches_step_nonemptiness() {
        let ro = ReadOnlyDoc::parse_str(DOC).unwrap();
        let nodes: Vec<u64> = (0..ro.pre_end()).collect();
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Parent,
            Axis::SelfAxis,
            Axis::Following,
            Axis::Preceding,
        ] {
            let test = NodeTest::Name(QName::local("h"));
            let got = exists_step(&ro, &nodes, axis, &test);
            let want: Vec<bool> = nodes
                .iter()
                .map(|&c| !step(&ro, &[c], axis, &test).is_empty())
                .collect();
            assert_eq!(got, want, "axis {axis:?}");
        }
    }
}
