//! `mbxq-axes` — staircase join: XPath axis evaluation on the pre plane.
//!
//! The staircase join \[GvKT03\] evaluates an XPath axis step for a whole
//! *context set* of nodes in one sequential pass over the pre/size/level
//! table, exploiting three tree-aware techniques:
//!
//! * **pruning** — context nodes whose regions are covered by another
//!   context node are dropped before the scan (a context node that is a
//!   descendant of another contributes nothing new to a `descendant`
//!   step);
//! * **partitioning** — each result node is produced exactly once, by the
//!   context node whose region it falls in, so results come out in
//!   document order with no duplicate elimination;
//! * **skipping** — regions that cannot contain results are jumped over
//!   using the `size` column (`pre + size + 1`), and — new with the
//!   updateable schema — *unused tuples* are jumped over using their run
//!   length (§3 of the paper: "this allows the staircase-join to skip
//!   over unused tuples quickly").
//!
//! Everything here is generic over [`TreeView`], so the identical code
//! runs against the read-only schema and against the paged view, exactly
//! as the paper runs staircase join "unmodified" on the memory-mapped
//! view (§4).

use mbxq_storage::{Kind, TreeView};
use mbxq_xml::QName;

pub mod batch;
pub mod intersect;
mod iterators;
pub mod loop_lifted;
pub mod semijoin;

pub use batch::{
    descendant_scan_ranges, in_range_mask, scan_range, scan_range_arm, scan_ranges,
    scan_ranges_arm, simd_compiled, simd_width, KernelArm,
};
pub use intersect::{intersect_pair, intersect_sorted};
pub use iterators::{children, descendants, following_siblings};
pub use loop_lifted::{step_lifted, step_lifted_with, ContextSeq};
pub use semijoin::{exists_step, range_semijoin};

/// The XPath axes supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Direct children.
    Child,
    /// All nodes in the subtree below the context node.
    Descendant,
    /// Context node plus its descendants.
    DescendantOrSelf,
    /// The parent node.
    Parent,
    /// All nodes on the path to the root.
    Ancestor,
    /// Context node plus its ancestors.
    AncestorOrSelf,
    /// Siblings after the context node.
    FollowingSibling,
    /// Siblings before the context node.
    PrecedingSibling,
    /// Everything after the context node's region (pre/post quadrant).
    Following,
    /// Everything before the context node except its ancestors.
    Preceding,
    /// The context node itself.
    SelfAxis,
}

/// A node test applied to axis-step candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// `node()` — any node kind.
    AnyNode,
    /// `*` — any element.
    AnyElement,
    /// `name` — elements with this qualified name.
    Name(QName),
    /// `text()` — text nodes.
    Text,
    /// `comment()` — comment nodes.
    Comment,
    /// `processing-instruction()` — any PI.
    AnyPi,
    /// `processing-instruction('target')`.
    PiTarget(String),
}

impl NodeTest {
    /// Whether the used node at `pre` passes the test.
    pub fn matches<V: TreeView + ?Sized>(&self, view: &V, pre: u64) -> bool {
        match self {
            NodeTest::AnyNode => true,
            NodeTest::AnyElement => view.kind(pre) == Some(Kind::Element),
            NodeTest::Name(name) => match (view.kind(pre), view.name_id(pre)) {
                (Some(Kind::Element), Some(qid)) => {
                    view.pool().qname(qid).is_some_and(|q| q == name)
                }
                _ => false,
            },
            NodeTest::Text => view.kind(pre) == Some(Kind::Text),
            NodeTest::Comment => view.kind(pre) == Some(Kind::Comment),
            NodeTest::AnyPi => view.kind(pre) == Some(Kind::ProcessingInstruction),
            NodeTest::PiTarget(t) => {
                view.kind(pre) == Some(Kind::ProcessingInstruction)
                    && view
                        .value_ref(pre)
                        .and_then(|v| view.pool().instruction(v.0))
                        .is_some_and(|(target, _)| target == t)
            }
        }
    }
}

/// Evaluates one axis step for a context set.
///
/// `context` must be sorted in document order (ascending pre) and free of
/// duplicates — which is exactly what this function returns, so steps
/// compose. This is the staircase-join entry point.
pub fn step<V: TreeView + ?Sized>(
    view: &V,
    context: &[u64],
    axis: Axis,
    test: &NodeTest,
) -> Vec<u64> {
    step_with(view, context, axis, test, KernelArm::auto())
}

/// [`step`] on an explicit chunk-kernel arm (see [`batch::KernelArm`]).
/// Only the scan-shaped axes (`descendant`, `descendant-or-self`,
/// `following`) run chunk kernels; the arm is ignored elsewhere.
pub fn step_with<V: TreeView + ?Sized>(
    view: &V,
    context: &[u64],
    axis: Axis,
    test: &NodeTest,
    arm: KernelArm,
) -> Vec<u64> {
    debug_assert!(context.windows(2).all(|w| w[0] < w[1]), "context sorted");
    match axis {
        Axis::SelfAxis => context
            .iter()
            .copied()
            .filter(|&p| test.matches(view, p))
            .collect(),
        Axis::Child => {
            let mut out = Vec::new();
            for &c in context {
                out.extend(children(view, c).filter(|&p| test.matches(view, p)));
            }
            // Children of distinct (sorted) context nodes can interleave
            // only when one context node is an ancestor of another.
            out.sort_unstable();
            out.dedup();
            out
        }
        Axis::Descendant => staircase_descendant(view, context, test, false, arm),
        Axis::DescendantOrSelf => staircase_descendant(view, context, test, true, arm),
        Axis::Parent => {
            let mut out: Vec<u64> = context
                .iter()
                .filter_map(|&c| view.parent_of(c))
                .filter(|&p| test.matches(view, p))
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        }
        Axis::Ancestor => staircase_ancestor(view, context, test, false),
        Axis::AncestorOrSelf => staircase_ancestor(view, context, test, true),
        Axis::FollowingSibling => {
            let mut out = Vec::new();
            for &c in context {
                out.extend(following_siblings(view, c).filter(|&p| test.matches(view, p)));
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        Axis::PrecedingSibling => {
            let mut out = Vec::new();
            for &c in context {
                if let Some(parent) = view.parent_of(c) {
                    out.extend(
                        children(view, parent)
                            .take_while(|&p| p < c)
                            .filter(|&p| test.matches(view, p)),
                    );
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        Axis::Following => staircase_following(view, context, test, arm),
        Axis::Preceding => staircase_preceding(view, context, test),
    }
}

/// Descendant staircase join: prune covered context nodes, then scan each
/// surviving region once. Results come out in document order with no
/// duplicates by construction. The region scans run as columnar batch
/// loops (see [`batch`]) — pruning here, filtering there.
fn staircase_descendant<V: TreeView + ?Sized>(
    view: &V,
    context: &[u64],
    test: &NodeTest,
    or_self: bool,
    arm: KernelArm,
) -> Vec<u64> {
    let ranges = batch::descendant_scan_ranges(view, context, or_self);
    let mut out = Vec::new();
    batch::scan_ranges_arm(view, &ranges, test, arm, &mut out);
    out
}

/// Ancestor staircase join: walk each context node's parent chain, but
/// stop as soon as a chain reaches a node already known to be an ancestor
/// (everything above it was collected by an earlier chain) — the
/// staircase pruning for the ancestor axis.
fn staircase_ancestor<V: TreeView + ?Sized>(
    view: &V,
    context: &[u64],
    test: &NodeTest,
    or_self: bool,
) -> Vec<u64> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for &c in context {
        if or_self && seen.insert(c) && test.matches(view, c) {
            out.push(c);
        }
        let mut p = view.parent_of(c);
        while let Some(a) = p {
            if !seen.insert(a) {
                break;
            }
            if test.matches(view, a) {
                out.push(a);
            }
            p = view.parent_of(a);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Following staircase join. XPath: `following(x)` = all nodes after `x`
/// in document order except `x`'s descendants — i.e. everything at or
/// after `region_end(x)`. For a context *set*, the union is achieved by
/// the **first** context node alone (its following-region contains every
/// other's), the maximal pruning of \[GvKT03\]: one sequential scan,
/// which runs as a single chunk-kernel range scan.
fn staircase_following<V: TreeView + ?Sized>(
    view: &V,
    context: &[u64],
    test: &NodeTest,
    arm: KernelArm,
) -> Vec<u64> {
    let Some(&first) = context.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    batch::scan_range_arm(
        view,
        view.region_end(first),
        view.pre_end(),
        test,
        arm,
        &mut out,
    );
    out
}

/// Preceding staircase join. XPath: `preceding(x)` = all nodes whose
/// whole region ends at or before `x` (before `x` in document order,
/// excluding ancestors). The **last** context node alone yields the
/// union. Ancestors of `x` are stepped *into* (their descendants left of
/// `x` do precede `x`) but not emitted.
fn staircase_preceding<V: TreeView + ?Sized>(
    view: &V,
    context: &[u64],
    test: &NodeTest,
) -> Vec<u64> {
    let Some(&last) = context.last() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut p = 0u64;
    while let Some(q) = view.next_used_at_or_after(p) {
        if q >= last {
            break;
        }
        if view.region_end(q) <= last {
            // q's whole region precedes `last`: q qualifies, and so may
            // its descendants — keep scanning inside.
            if test.matches(view, q) {
                out.push(q);
            }
        }
        // Ancestors of `last` (region_end > last) are skipped but
        // descended into by simply continuing the scan.
        p = q + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::{NaiveDoc, PageConfig, PagedDoc, ReadOnlyDoc};

    const PAPER_DOC: &str =
        "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";

    fn ro() -> ReadOnlyDoc {
        ReadOnlyDoc::parse_str(PAPER_DOC).unwrap()
    }

    fn paged() -> PagedDoc {
        PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap()
    }

    fn local_names<V: TreeView + ?Sized>(v: &V, pres: &[u64]) -> Vec<String> {
        pres.iter()
            .map(|&p| v.pool().qname(v.name_id(p).unwrap()).unwrap().local.clone())
            .collect()
    }

    fn pre_of<V: TreeView + ?Sized>(v: &V, local: &str) -> u64 {
        let mut p = 0;
        while let Some(q) = v.next_used_at_or_after(p) {
            if let Some(qid) = v.name_id(q) {
                if v.pool().qname(qid).unwrap().local == local {
                    return q;
                }
            }
            p = q + 1;
        }
        panic!("{local} not found");
    }

    /// Figure 2(iii): the four quadrants around context node g.
    #[test]
    fn figure2_quadrants_around_g() {
        let doc = ro();
        let g = pre_of(&doc, "g");
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[g], Axis::Ancestor, &NodeTest::AnyElement)
            ),
            ["a", "f"]
        );
        assert!(step(&doc, &[g], Axis::Descendant, &NodeTest::AnyElement).is_empty());
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[g], Axis::Following, &NodeTest::AnyElement)
            ),
            ["h", "i", "j"]
        );
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[g], Axis::Preceding, &NodeTest::AnyElement)
            ),
            ["b", "c", "d", "e"]
        );
    }

    /// The same quadrants on the paged view (with its unused holes).
    #[test]
    fn figure2_quadrants_on_paged_view() {
        let doc = paged();
        let g = pre_of(&doc, "g");
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[g], Axis::Ancestor, &NodeTest::AnyElement)
            ),
            ["a", "f"]
        );
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[g], Axis::Following, &NodeTest::AnyElement)
            ),
            ["h", "i", "j"]
        );
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[g], Axis::Preceding, &NodeTest::AnyElement)
            ),
            ["b", "c", "d", "e"]
        );
    }

    #[test]
    fn child_and_sibling_axes() {
        let doc = ro();
        let a = pre_of(&doc, "a");
        let f = pre_of(&doc, "f");
        let g = pre_of(&doc, "g");
        let h = pre_of(&doc, "h");
        assert_eq!(
            local_names(&doc, &step(&doc, &[a], Axis::Child, &NodeTest::AnyElement)),
            ["b", "f"]
        );
        assert_eq!(
            local_names(&doc, &step(&doc, &[f], Axis::Child, &NodeTest::AnyElement)),
            ["g", "h"]
        );
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[g], Axis::FollowingSibling, &NodeTest::AnyElement)
            ),
            ["h"]
        );
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[h], Axis::PrecedingSibling, &NodeTest::AnyElement)
            ),
            ["g"]
        );
        assert!(step(&doc, &[a], Axis::PrecedingSibling, &NodeTest::AnyNode).is_empty());
        assert!(step(&doc, &[a], Axis::Parent, &NodeTest::AnyNode).is_empty());
    }

    #[test]
    fn descendant_pruning_covers_nested_context() {
        let doc = ro();
        let a = pre_of(&doc, "a");
        let c = pre_of(&doc, "c"); // inside a's region — must be pruned
        let got = step(&doc, &[a, c], Axis::Descendant, &NodeTest::AnyElement);
        assert_eq!(
            local_names(&doc, &got),
            ["b", "c", "d", "e", "f", "g", "h", "i", "j"]
        );
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(got, dedup, "no duplicates despite overlapping regions");
    }

    #[test]
    fn descendant_or_self_includes_context() {
        let doc = ro();
        let f = pre_of(&doc, "f");
        assert_eq!(
            local_names(
                &doc,
                &step(&doc, &[f], Axis::DescendantOrSelf, &NodeTest::AnyElement)
            ),
            ["f", "g", "h", "i", "j"]
        );
    }

    #[test]
    fn ancestor_chains_share_prefixes() {
        let doc = ro();
        let d = pre_of(&doc, "d");
        let e = pre_of(&doc, "e");
        let j = pre_of(&doc, "j");
        let got = step(&doc, &[d, e, j], Axis::Ancestor, &NodeTest::AnyElement);
        assert_eq!(local_names(&doc, &got), ["a", "b", "c", "f", "h"]);
    }

    #[test]
    fn name_tests_filter() {
        let doc = ro();
        let a = pre_of(&doc, "a");
        let got = step(
            &doc,
            &[a],
            Axis::Descendant,
            &NodeTest::Name(QName::local("h")),
        );
        assert_eq!(local_names(&doc, &got), ["h"]);
        assert!(step(
            &doc,
            &[a],
            Axis::Descendant,
            &NodeTest::Name(QName::local("zzz"))
        )
        .is_empty());
    }

    #[test]
    fn kind_tests_filter() {
        let doc = ReadOnlyDoc::parse_str("<r>t1<x/><!--c--><?pi d?>t2</r>").unwrap();
        assert_eq!(step(&doc, &[0], Axis::Child, &NodeTest::Text).len(), 2);
        assert_eq!(step(&doc, &[0], Axis::Child, &NodeTest::Comment).len(), 1);
        assert_eq!(step(&doc, &[0], Axis::Child, &NodeTest::AnyPi).len(), 1);
        assert_eq!(
            step(&doc, &[0], Axis::Child, &NodeTest::PiTarget("pi".into())).len(),
            1
        );
        assert_eq!(
            step(&doc, &[0], Axis::Child, &NodeTest::PiTarget("other".into())).len(),
            0
        );
        assert_eq!(step(&doc, &[0], Axis::Child, &NodeTest::AnyNode).len(), 5);
        assert_eq!(
            step(&doc, &[0], Axis::Child, &NodeTest::AnyElement).len(),
            1
        );
    }

    /// Axis results on the paged view must equal the read-only results
    /// (pre ranks differ; compare by names), including after updates
    /// punch holes into pages.
    #[test]
    fn paged_axes_match_readonly_after_updates() {
        let ro_doc = ro();
        let mut up = paged();
        // Delete c's subtree, then re-insert an identical one, leaving
        // interior holes behind.
        let c_node = up.pre_to_node(pre_of(&up, "c")).unwrap();
        up.delete(c_node).unwrap();
        let b_node = up.pre_to_node(pre_of(&up, "b")).unwrap();
        let frag = mbxq_xml::Document::parse_fragment("<c><d/><e/></c>").unwrap();
        up.insert(mbxq_storage::InsertPosition::LastChildOf(b_node), &frag)
            .unwrap();
        mbxq_storage::invariants::check_paged(&up).unwrap();
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Following,
            Axis::Preceding,
            Axis::SelfAxis,
        ] {
            for ctx_name in ["a", "c", "g", "h", "j"] {
                let ro_ctx = pre_of(&ro_doc, ctx_name);
                let up_ctx = pre_of(&up, ctx_name);
                let ro_res = step(&ro_doc, &[ro_ctx], axis, &NodeTest::AnyElement);
                let up_res = step(&up, &[up_ctx], axis, &NodeTest::AnyElement);
                assert_eq!(
                    local_names(&ro_doc, &ro_res),
                    local_names(&up, &up_res),
                    "axis {axis:?} from {ctx_name}"
                );
            }
        }
    }

    /// NaiveDoc is a TreeView too; use it as a third implementation in
    /// the cross-check.
    #[test]
    fn naive_matches_readonly() {
        let ro_doc = ro();
        let nv = NaiveDoc::parse_str(PAPER_DOC).unwrap();
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::Following,
            Axis::Preceding,
        ] {
            let ctx_ro = pre_of(&ro_doc, "h");
            let ctx_nv = pre_of(&nv, "h");
            assert_eq!(
                local_names(
                    &ro_doc,
                    &step(&ro_doc, &[ctx_ro], axis, &NodeTest::AnyElement)
                ),
                local_names(&nv, &step(&nv, &[ctx_nv], axis, &NodeTest::AnyElement)),
            );
        }
    }

    #[test]
    fn empty_context_yields_empty() {
        let doc = ro();
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::Following,
            Axis::Preceding,
        ] {
            assert!(step(&doc, &[], axis, &NodeTest::AnyNode).is_empty());
        }
    }
}
