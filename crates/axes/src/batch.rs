//! Columnar batch kernels — the contiguous-memory arm of the staircase
//! scan.
//!
//! The classic staircase scan visits one slot per loop iteration through
//! the [`TreeView`] accessors: for the paged schema every visit costs a
//! `pre → pos` page swizzle plus a bounds-checked column load, and for a
//! name test an interned-pool lookup on top. This module replaces the
//! per-slot walk with **batch loops over contiguous column slices**
//! ([`TreeView::pre_chunk`]): the node test is resolved *once* per scan
//! into a probe — a name test becomes a single interned-id
//! comparison — and each chunk is then filtered in a tight loop over raw
//! `&[Kind]`/`&[u32]` slices the compiler can unroll. Schemas without
//! contiguous columns (the naive strawman) transparently fall back to
//! the per-slot walk.
//!
//! [`descendant_scan_ranges`] exposes the other half of the staircase:
//! the horizon-pruned, disjoint subtree regions a descendant step scans.
//! Materializing the ranges separately from the scan lets the
//! morsel-parallel executor partition them across worker threads while
//! [`scan_range`] stays oblivious to who calls it.

use crate::NodeTest;
use mbxq_storage::{Kind, PreChunk, TreeView};

/// The per-chunk comparison a scan resolves its [`NodeTest`] into, once
/// per range instead of once per slot.
enum Probe {
    /// Elements whose interned name id equals the payload.
    Elem(u32),
    /// Any element.
    AnyElement,
    /// Any node of this kind.
    OfKind(Kind),
    /// Every used slot.
    AnyNode,
    /// The tested name is not interned in this document: nothing can
    /// match, the scan is skipped entirely.
    Empty,
    /// Tests needing per-node data beyond the base columns (PI targets)
    /// fall back to [`NodeTest::matches`] per live slot.
    Slow,
}

impl Probe {
    fn resolve<V: TreeView + ?Sized>(view: &V, test: &NodeTest) -> Probe {
        match test {
            NodeTest::Name(q) => match view.pool().lookup_qname(q) {
                Some(qn) => Probe::Elem(qn.0),
                None => Probe::Empty,
            },
            NodeTest::AnyElement => Probe::AnyElement,
            NodeTest::Text => Probe::OfKind(Kind::Text),
            NodeTest::Comment => Probe::OfKind(Kind::Comment),
            NodeTest::AnyPi => Probe::OfKind(Kind::ProcessingInstruction),
            NodeTest::AnyNode => Probe::AnyNode,
            NodeTest::PiTarget(_) => Probe::Slow,
        }
    }
}

/// Appends `chunk.pre + i` for every live slot `i` passing `pred`,
/// with the liveness branch hoisted out of the dense (read-only) case.
#[inline]
fn emit_matching(chunk: &PreChunk<'_>, out: &mut Vec<u64>, mut pred: impl FnMut(usize) -> bool) {
    match chunk.used {
        None => {
            for i in 0..chunk.len() {
                if pred(i) {
                    out.push(chunk.pre + i as u64);
                }
            }
        }
        Some(used) => {
            for (i, &live) in used.iter().enumerate().take(chunk.len()) {
                if live && pred(i) {
                    out.push(chunk.pre + i as u64);
                }
            }
        }
    }
}

/// Scans the pre range `[lo, hi)`, appending every used node passing
/// `test` to `out` in ascending pre order — the batch kernel behind the
/// descendant staircase scan.
pub fn scan_range<V: TreeView + ?Sized>(
    view: &V,
    lo: u64,
    hi: u64,
    test: &NodeTest,
    out: &mut Vec<u64>,
) {
    scan_resolved(view, lo, hi, test, &Probe::resolve(view, test), out);
}

/// [`scan_range`] over many ranges with the node test resolved once —
/// the shape both the staircase join and the parallel executor use.
/// Ranges must be disjoint and ascending for the output to be sorted.
pub fn scan_ranges<V: TreeView + ?Sized>(
    view: &V,
    ranges: &[(u64, u64)],
    test: &NodeTest,
    out: &mut Vec<u64>,
) {
    let probe = Probe::resolve(view, test);
    for &(lo, hi) in ranges {
        scan_resolved(view, lo, hi, test, &probe, out);
    }
}

fn scan_resolved<V: TreeView + ?Sized>(
    view: &V,
    lo: u64,
    hi: u64,
    test: &NodeTest,
    probe: &Probe,
    out: &mut Vec<u64>,
) {
    if matches!(probe, Probe::Empty) {
        return;
    }
    let mut p = lo;
    while p < hi {
        let Some(chunk) = view.pre_chunk(p, hi) else {
            // Chunk-less schema: the per-slot staircase walk.
            while let Some(q) = view.next_used_at_or_after(p) {
                if q >= hi {
                    break;
                }
                if test.matches(view, q) {
                    out.push(q);
                }
                p = q + 1;
            }
            return;
        };
        match probe {
            Probe::Elem(want) => emit_matching(&chunk, out, |i| {
                chunk.kinds[i] == Kind::Element && chunk.names[i] == *want
            }),
            Probe::AnyElement => emit_matching(&chunk, out, |i| chunk.kinds[i] == Kind::Element),
            Probe::OfKind(k) => emit_matching(&chunk, out, |i| chunk.kinds[i] == *k),
            Probe::AnyNode => emit_matching(&chunk, out, |_| true),
            Probe::Slow => emit_matching(&chunk, out, |i| test.matches(view, chunk.pre + i as u64)),
            Probe::Empty => unreachable!(),
        }
        p += chunk.len() as u64;
    }
}

/// The horizon-pruned, disjoint subtree regions `(lo, hi)` a
/// descendant(-or-self) staircase over `context` scans, in ascending
/// order. Scanning them with [`scan_ranges`] reproduces the staircase
/// result exactly; partitioning them over threads parallelizes it.
pub fn descendant_scan_ranges<V: TreeView + ?Sized>(
    view: &V,
    context: &[u64],
    or_self: bool,
) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(context.len());
    let mut horizon = 0u64;
    for &c in context {
        if c < horizon {
            continue; // pruned: covered by a previous context node
        }
        horizon = view.region_end(c);
        let lo = if or_self { c } else { c + 1 };
        if lo < horizon {
            out.push((lo, horizon));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{step, Axis};
    use mbxq_storage::{NaiveDoc, PageConfig, PagedDoc, ReadOnlyDoc};
    use mbxq_xml::QName;

    const DOC: &str = "<a>t0<b><c><d/>mid<e/></c></b><f><g/><!--x--><h><i/><j/></h></f></a>";

    fn scan<V: TreeView>(view: &V, lo: u64, hi: u64, test: &NodeTest) -> Vec<u64> {
        let mut out = Vec::new();
        scan_range(view, lo, hi, test, &mut out);
        out
    }

    /// The batch scan must agree with the per-slot walk on every schema
    /// (chunked and fallback paths), every test, every sub-range.
    #[test]
    fn scan_matches_per_slot_walk() {
        let ro = ReadOnlyDoc::parse_str(DOC).unwrap();
        let up = PagedDoc::parse_str(DOC, PageConfig::new(4, 75).unwrap()).unwrap();
        let nv = NaiveDoc::parse_str(DOC).unwrap();
        fn check<V: TreeView>(view: &V) {
            let tests = [
                NodeTest::AnyNode,
                NodeTest::AnyElement,
                NodeTest::Text,
                NodeTest::Comment,
                NodeTest::Name(QName::local("h")),
                NodeTest::Name(QName::local("nope")),
            ];
            let end = view.pre_end();
            for test in &tests {
                for lo in 0..end {
                    for hi in lo..=end {
                        let mut want = Vec::new();
                        let mut p = lo;
                        while let Some(q) = view.next_used_at_or_after(p) {
                            if q >= hi {
                                break;
                            }
                            if test.matches(view, q) {
                                want.push(q);
                            }
                            p = q + 1;
                        }
                        assert_eq!(scan(view, lo, hi, test), want, "[{lo},{hi}) {test:?}");
                    }
                }
            }
        }
        check(&ro);
        check(&up);
        check(&nv);
    }

    /// Scanning the staircase ranges reproduces the descendant step.
    #[test]
    fn ranges_plus_scan_equal_staircase() {
        let up = PagedDoc::parse_str(DOC, PageConfig::new(4, 75).unwrap()).unwrap();
        let contexts: &[&[u64]] = &[&[0], &[2, 8], &[2, 3, 8], &[0, 2, 8]];
        for ctx in contexts {
            let ctx: Vec<u64> = ctx.iter().copied().filter(|&p| up.is_used(p)).collect();
            for or_self in [false, true] {
                let axis = if or_self {
                    Axis::DescendantOrSelf
                } else {
                    Axis::Descendant
                };
                let want = step(&up, &ctx, axis, &NodeTest::AnyElement);
                let ranges = descendant_scan_ranges(&up, &ctx, or_self);
                // Ranges are disjoint and ascending.
                assert!(ranges.windows(2).all(|w| w[0].1 <= w[1].0), "{ranges:?}");
                let mut got = Vec::new();
                scan_ranges(&up, &ranges, &NodeTest::AnyElement, &mut got);
                assert_eq!(got, want, "ctx {ctx:?} or_self {or_self}");
            }
        }
    }
}
