//! Columnar batch kernels — the contiguous-memory arm of the staircase
//! scan, with a vectorized (SIMD) and a scalar kernel arm.
//!
//! The classic staircase scan visits one slot per loop iteration through
//! the [`TreeView`] accessors: for the paged schema every visit costs a
//! `pre → pos` page swizzle plus a bounds-checked column load, and for a
//! name test an interned-pool lookup on top. This module replaces the
//! per-slot walk with **batch loops over contiguous column slices**
//! ([`TreeView::pre_chunk`]): the node test is resolved *once* per scan
//! into a probe — a name test becomes a single interned-id
//! comparison — and each chunk is then filtered in a tight loop over raw
//! `&[Kind]`/`&[u32]` slices. Schemas without contiguous columns (the
//! naive strawman) transparently fall back to the per-slot walk.
//!
//! # Kernel arms
//!
//! Every chunk filter exists in two arms, selected **at runtime** by
//! [`KernelArm`] so one binary serves both paths and the oracle tests
//! can force either:
//!
//! * [`KernelArm::Scalar`] — the plain per-slot loop (autovectorizable,
//!   the PR 6 baseline).
//! * [`KernelArm::Simd`] — explicit data parallelism. Compiled with the
//!   `simd` cargo feature on `x86_64`, this arm runs SSE2 intrinsics:
//!   kind and liveness columns are compared 16 bytes per instruction
//!   ([`Kind`] is `#[repr(u8)]`, see [`PreChunk::kinds_bytes`]), name
//!   columns 4 ids per instruction, and the numeric value comparisons
//!   behind `ValueProbe` scan arms ([`in_range_mask`]) 2 doubles per
//!   instruction. Without the feature (or off x86_64) the *same arm*
//!   dispatches to a hand-unrolled scalar implementation compiled in
//!   this module — bit-identical results, so both arms always build and
//!   `KernelArm::Simd` is always safe to force. [`simd_compiled`]
//!   reports which implementation is live.
//!
//! All loads are unaligned ([`PreChunk`] slices start at arbitrary
//! offsets inside a page); the chunk contract only guarantees that a
//! chunk never spans a page boundary. Horizon checks (`hi` bounds,
//! unused-run skips) are hoisted out of the lanes: the chunk loop in
//! [`scan_range`] clips every chunk to the scan horizon before the
//! kernel runs, so the inner loops are branch-free over the masks.
//!
//! [`descendant_scan_ranges`] exposes the other half of the staircase:
//! the horizon-pruned, disjoint subtree regions a descendant step scans.
//! Materializing the ranges separately from the scan lets the
//! morsel-parallel executor partition them across worker threads while
//! [`scan_range`] stays oblivious to who calls it.

use crate::NodeTest;
use mbxq_storage::{Kind, NumRange, PreChunk, TreeView};

/// Which chunk-kernel implementation a scan dispatches to. See the
/// [module docs](self) for the arm semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelArm {
    /// The plain per-slot scalar loop.
    Scalar,
    /// The vectorized kernels (SSE2 when compiled with the `simd`
    /// feature on x86_64; a hand-unrolled scalar equivalent otherwise).
    Simd,
}

impl KernelArm {
    /// The default arm: [`KernelArm::Simd`] when real vector
    /// instructions are compiled in, [`KernelArm::Scalar`] otherwise.
    #[inline]
    pub fn auto() -> KernelArm {
        if simd_compiled() {
            KernelArm::Simd
        } else {
            KernelArm::Scalar
        }
    }
}

impl Default for KernelArm {
    fn default() -> Self {
        KernelArm::auto()
    }
}

/// Whether the [`KernelArm::Simd`] arm runs actual vector instructions
/// in this build (`simd` feature on x86_64), as opposed to its
/// hand-unrolled scalar fallback.
#[inline]
pub const fn simd_compiled() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

/// Byte lanes per vector in the kind/liveness filters of the compiled
/// [`KernelArm::Simd`] arm: 16 (one SSE2 register) when vector
/// instructions are live, 1 otherwise. Benchmarks gate their speedup
/// assertions on this.
#[inline]
pub const fn simd_width() -> usize {
    if simd_compiled() {
        16
    } else {
        1
    }
}

/// The per-chunk comparison a scan resolves its [`NodeTest`] into, once
/// per range instead of once per slot.
enum Probe {
    /// Elements whose interned name id equals the payload.
    Elem(u32),
    /// Any element.
    AnyElement,
    /// Any node of this kind.
    OfKind(Kind),
    /// Every used slot.
    AnyNode,
    /// The tested name is not interned in this document: nothing can
    /// match, the scan is skipped entirely.
    Empty,
    /// Tests needing per-node data beyond the base columns (PI targets)
    /// fall back to [`NodeTest::matches`] per live slot.
    Slow,
}

impl Probe {
    fn resolve<V: TreeView + ?Sized>(view: &V, test: &NodeTest) -> Probe {
        match test {
            NodeTest::Name(q) => match view.pool().lookup_qname(q) {
                Some(qn) => Probe::Elem(qn.0),
                None => Probe::Empty,
            },
            NodeTest::AnyElement => Probe::AnyElement,
            NodeTest::Text => Probe::OfKind(Kind::Text),
            NodeTest::Comment => Probe::OfKind(Kind::Comment),
            NodeTest::AnyPi => Probe::OfKind(Kind::ProcessingInstruction),
            NodeTest::AnyNode => Probe::AnyNode,
            NodeTest::PiTarget(_) => Probe::Slow,
        }
    }
}

/// Appends `chunk.pre + i` for every live slot `i` passing `pred`,
/// with the liveness branch hoisted out of the dense (read-only) case.
#[inline]
fn emit_matching(chunk: &PreChunk<'_>, out: &mut Vec<u64>, mut pred: impl FnMut(usize) -> bool) {
    match chunk.used {
        None => {
            for i in 0..chunk.len() {
                if pred(i) {
                    out.push(chunk.pre + i as u64);
                }
            }
        }
        Some(used) => {
            for (i, &live) in used.iter().enumerate().take(chunk.len()) {
                if live && pred(i) {
                    out.push(chunk.pre + i as u64);
                }
            }
        }
    }
}

/// The [`KernelArm::Simd`] kernels. Two implementations share this
/// interface: SSE2 intrinsics under `--features simd` on x86_64, and a
/// hand-unrolled scalar equivalent otherwise — compiled in the same
/// module so both arms always build (module docs).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod vector {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// Appends `pre + i` for every slot with `kinds[i] == want_kind`,
    /// optionally `names[i] == want_name`, optionally `used[i] != 0`.
    /// SSE2: kind and liveness bytes 16 lanes per compare, names 4 ids
    /// per compare, hits extracted from a 16-bit movemask.
    pub(super) fn filter(
        kinds: &[u8],
        names: &[u32],
        used: Option<&[u8]>,
        want_kind: u8,
        want_name: Option<u32>,
        pre: u64,
        out: &mut Vec<u64>,
    ) {
        let len = kinds.len();
        let mut i = 0usize;
        // SAFETY: every 16-byte (and 4-id) load below stays inside the
        // slices — the loop bound guarantees `i + 16 <= len`, and the
        // name loads read ids `i..i + 16` of a names slice the chunk
        // contract keeps at least `len` long. Loads are unaligned
        // (`loadu`), matching the chunk's no-alignment guarantee.
        unsafe {
            let kv = _mm_set1_epi8(want_kind as i8);
            let zero = _mm_setzero_si128();
            while i + 16 <= len {
                let kb = _mm_loadu_si128(kinds.as_ptr().add(i) as *const __m128i);
                let mut m = _mm_movemask_epi8(_mm_cmpeq_epi8(kb, kv)) as u32 & 0xffff;
                if let Some(u) = used {
                    let ub = _mm_loadu_si128(u.as_ptr().add(i) as *const __m128i);
                    let dead = _mm_movemask_epi8(_mm_cmpeq_epi8(ub, zero)) as u32;
                    m &= !dead & 0xffff;
                }
                if m != 0 {
                    if let Some(w) = want_name {
                        let nv = _mm_set1_epi32(w as i32);
                        let mut nm = 0u32;
                        for j in 0..4usize {
                            let nb =
                                _mm_loadu_si128(names.as_ptr().add(i + 4 * j) as *const __m128i);
                            let eq = _mm_cmpeq_epi32(nb, nv);
                            nm |= (_mm_movemask_ps(_mm_castsi128_ps(eq)) as u32) << (4 * j);
                        }
                        m &= nm;
                    }
                }
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    out.push(pre + (i + bit) as u64);
                    m &= m - 1;
                }
                i += 16;
            }
        }
        // Partial tail lanes: plain scalar.
        while i < len {
            let live = used.is_none_or(|u| u[i] != 0);
            if live && kinds[i] == want_kind && want_name.is_none_or(|w| names[i] == w) {
                out.push(pre + i as u64);
            }
            i += 1;
        }
    }

    /// Appends `pre + i` for every live slot (`used[i] != 0`) — the
    /// `node()` probe over a sparse chunk.
    pub(super) fn filter_used(used: &[u8], pre: u64, out: &mut Vec<u64>) {
        let len = used.len();
        let mut i = 0usize;
        // SAFETY: as in `filter` — bounded unaligned loads.
        unsafe {
            let zero = _mm_setzero_si128();
            while i + 16 <= len {
                let ub = _mm_loadu_si128(used.as_ptr().add(i) as *const __m128i);
                let dead = _mm_movemask_epi8(_mm_cmpeq_epi8(ub, zero)) as u32;
                let mut m = !dead & 0xffff;
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    out.push(pre + (i + bit) as u64);
                    m &= m - 1;
                }
                i += 16;
            }
        }
        while i < len {
            if used[i] != 0 {
                out.push(pre + i as u64);
            }
            i += 1;
        }
    }

    /// Writes `range.contains(vals[i])` per value, two doubles per
    /// compare. NaN (unparsable strings) fails every comparison in both
    /// arms — `cmplt/cmple` style predicates are false on NaN.
    pub(super) fn range_mask(
        vals: &[f64],
        lo: f64,
        hi: f64,
        lo_incl: bool,
        hi_incl: bool,
        keep: &mut Vec<bool>,
    ) {
        let len = vals.len();
        let mut i = 0usize;
        // SAFETY: bounded unaligned two-lane loads.
        unsafe {
            let lov = _mm_set1_pd(lo);
            let hiv = _mm_set1_pd(hi);
            while i + 2 <= len {
                let v = _mm_loadu_pd(vals.as_ptr().add(i));
                let above = if lo_incl {
                    _mm_cmpge_pd(v, lov)
                } else {
                    _mm_cmpgt_pd(v, lov)
                };
                let below = if hi_incl {
                    _mm_cmple_pd(v, hiv)
                } else {
                    _mm_cmplt_pd(v, hiv)
                };
                let m = _mm_movemask_pd(_mm_and_pd(above, below)) as u32;
                keep.push(m & 1 != 0);
                keep.push(m & 2 != 0);
                i += 2;
            }
        }
        while i < len {
            let v = vals[i];
            let above = if lo_incl { v >= lo } else { v > lo };
            let below = if hi_incl { v <= hi } else { v < hi };
            keep.push(above && below);
            i += 1;
        }
    }
}

/// The hand-unrolled scalar fallback for the [`KernelArm::Simd`] arm —
/// same interface and results as the intrinsics module, compiled when
/// the `simd` feature is off or the target is not x86_64.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod vector {
    /// See the SSE2 twin: kind/name/liveness filter, here as a 4-wide
    /// hand-unrolled scalar loop.
    pub(super) fn filter(
        kinds: &[u8],
        names: &[u32],
        used: Option<&[u8]>,
        want_kind: u8,
        want_name: Option<u32>,
        pre: u64,
        out: &mut Vec<u64>,
    ) {
        let len = kinds.len();
        let slot = |i: usize, out: &mut Vec<u64>| {
            let live = used.is_none_or(|u| u[i] != 0);
            if live && kinds[i] == want_kind && want_name.is_none_or(|w| names[i] == w) {
                out.push(pre + i as u64);
            }
        };
        let mut i = 0usize;
        while i + 4 <= len {
            slot(i, out);
            slot(i + 1, out);
            slot(i + 2, out);
            slot(i + 3, out);
            i += 4;
        }
        while i < len {
            slot(i, out);
            i += 1;
        }
    }

    /// See the SSE2 twin: liveness filter, 4-wide unrolled.
    pub(super) fn filter_used(used: &[u8], pre: u64, out: &mut Vec<u64>) {
        let len = used.len();
        let slot = |i: usize, out: &mut Vec<u64>| {
            if used[i] != 0 {
                out.push(pre + i as u64);
            }
        };
        let mut i = 0usize;
        while i + 4 <= len {
            slot(i, out);
            slot(i + 1, out);
            slot(i + 2, out);
            slot(i + 3, out);
            i += 4;
        }
        while i < len {
            slot(i, out);
            i += 1;
        }
    }

    /// See the SSE2 twin: numeric range mask, 4-wide unrolled.
    pub(super) fn range_mask(
        vals: &[f64],
        lo: f64,
        hi: f64,
        lo_incl: bool,
        hi_incl: bool,
        keep: &mut Vec<bool>,
    ) {
        let test = |v: f64| {
            let above = if lo_incl { v >= lo } else { v > lo };
            let below = if hi_incl { v <= hi } else { v < hi };
            above && below
        };
        let len = vals.len();
        let mut i = 0usize;
        while i + 4 <= len {
            keep.push(test(vals[i]));
            keep.push(test(vals[i + 1]));
            keep.push(test(vals[i + 2]));
            keep.push(test(vals[i + 3]));
            i += 4;
        }
        while i < len {
            keep.push(test(vals[i]));
            i += 1;
        }
    }
}

/// Writes `range.contains(vals[i])` for every value into `keep` — the
/// numeric value-column comparison behind `ValueProbe` scan arms,
/// dispatched by kernel arm (two doubles per SSE2 compare on the
/// vector arm). NaN entries (unparsable strings) never match.
pub fn in_range_mask(vals: &[f64], range: &NumRange, arm: KernelArm, keep: &mut Vec<bool>) {
    match arm {
        KernelArm::Scalar => keep.extend(vals.iter().map(|&v| range.contains(v))),
        KernelArm::Simd => {
            vector::range_mask(vals, range.lo, range.hi, range.lo_incl, range.hi_incl, keep)
        }
    }
}

/// Scans the pre range `[lo, hi)`, appending every used node passing
/// `test` to `out` in ascending pre order — the batch kernel behind the
/// descendant staircase scan, on the default kernel arm.
pub fn scan_range<V: TreeView + ?Sized>(
    view: &V,
    lo: u64,
    hi: u64,
    test: &NodeTest,
    out: &mut Vec<u64>,
) {
    scan_range_arm(view, lo, hi, test, KernelArm::auto(), out);
}

/// [`scan_range`] on an explicit kernel arm.
pub fn scan_range_arm<V: TreeView + ?Sized>(
    view: &V,
    lo: u64,
    hi: u64,
    test: &NodeTest,
    arm: KernelArm,
    out: &mut Vec<u64>,
) {
    scan_resolved(view, lo, hi, test, &Probe::resolve(view, test), arm, out);
}

/// [`scan_range`] over many ranges with the node test resolved once —
/// the shape both the staircase join and the parallel executor use.
/// Ranges must be disjoint and ascending for the output to be sorted.
pub fn scan_ranges<V: TreeView + ?Sized>(
    view: &V,
    ranges: &[(u64, u64)],
    test: &NodeTest,
    out: &mut Vec<u64>,
) {
    scan_ranges_arm(view, ranges, test, KernelArm::auto(), out);
}

/// [`scan_ranges`] on an explicit kernel arm.
pub fn scan_ranges_arm<V: TreeView + ?Sized>(
    view: &V,
    ranges: &[(u64, u64)],
    test: &NodeTest,
    arm: KernelArm,
    out: &mut Vec<u64>,
) {
    let probe = Probe::resolve(view, test);
    for &(lo, hi) in ranges {
        scan_resolved(view, lo, hi, test, &probe, arm, out);
    }
}

fn scan_resolved<V: TreeView + ?Sized>(
    view: &V,
    lo: u64,
    hi: u64,
    test: &NodeTest,
    probe: &Probe,
    arm: KernelArm,
    out: &mut Vec<u64>,
) {
    if matches!(probe, Probe::Empty) {
        return;
    }
    let mut p = lo;
    while p < hi {
        let Some(chunk) = view.pre_chunk(p, hi) else {
            // Chunk-less schema: the per-slot staircase walk.
            while let Some(q) = view.next_used_at_or_after(p) {
                if q >= hi {
                    break;
                }
                if test.matches(view, q) {
                    out.push(q);
                }
                p = q + 1;
            }
            return;
        };
        filter_chunk(view, &chunk, test, probe, arm, out);
        p += chunk.len() as u64;
    }
}

/// One chunk through the probe, dispatched by kernel arm. `Slow`
/// probes always take the per-slot path (they read per-node data the
/// columns don't carry); the dense `AnyNode` probe has no comparison
/// to vectorize and emits directly.
fn filter_chunk<V: TreeView + ?Sized>(
    view: &V,
    chunk: &PreChunk<'_>,
    test: &NodeTest,
    probe: &Probe,
    arm: KernelArm,
    out: &mut Vec<u64>,
) {
    if let Probe::Slow = probe {
        return emit_matching(chunk, out, |i| test.matches(view, chunk.pre + i as u64));
    }
    match arm {
        KernelArm::Scalar => match probe {
            Probe::Elem(want) => emit_matching(chunk, out, |i| {
                chunk.kinds[i] == Kind::Element && chunk.names[i] == *want
            }),
            Probe::AnyElement => emit_matching(chunk, out, |i| chunk.kinds[i] == Kind::Element),
            Probe::OfKind(k) => emit_matching(chunk, out, |i| chunk.kinds[i] == *k),
            Probe::AnyNode => emit_matching(chunk, out, |_| true),
            Probe::Slow | Probe::Empty => unreachable!(),
        },
        KernelArm::Simd => {
            let kinds = chunk.kinds_bytes();
            let used = chunk.used_bytes();
            match probe {
                Probe::Elem(want) => vector::filter(
                    kinds,
                    chunk.names,
                    used,
                    Kind::Element as u8,
                    Some(*want),
                    chunk.pre,
                    out,
                ),
                Probe::AnyElement => vector::filter(
                    kinds,
                    chunk.names,
                    used,
                    Kind::Element as u8,
                    None,
                    chunk.pre,
                    out,
                ),
                Probe::OfKind(k) => {
                    vector::filter(kinds, chunk.names, used, *k as u8, None, chunk.pre, out)
                }
                Probe::AnyNode => match used {
                    Some(u) => vector::filter_used(u, chunk.pre, out),
                    None => out.extend((0..chunk.len() as u64).map(|i| chunk.pre + i)),
                },
                Probe::Slow | Probe::Empty => unreachable!(),
            }
        }
    }
}

/// The horizon-pruned, disjoint subtree regions `(lo, hi)` a
/// descendant(-or-self) staircase over `context` scans, in ascending
/// order. Scanning them with [`scan_ranges`] reproduces the staircase
/// result exactly; partitioning them over threads parallelizes it.
pub fn descendant_scan_ranges<V: TreeView + ?Sized>(
    view: &V,
    context: &[u64],
    or_self: bool,
) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(context.len());
    let mut horizon = 0u64;
    for &c in context {
        if c < horizon {
            continue; // pruned: covered by a previous context node
        }
        horizon = view.region_end(c);
        let lo = if or_self { c } else { c + 1 };
        if lo < horizon {
            out.push((lo, horizon));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{step, Axis};
    use mbxq_storage::{NaiveDoc, PageConfig, PagedDoc, ReadOnlyDoc};
    use mbxq_xml::QName;

    const DOC: &str = "<a>t0<b><c><d/>mid<e/></c></b><f><g/><!--x--><h><i/><j/></h></f></a>";

    fn scan<V: TreeView>(view: &V, lo: u64, hi: u64, test: &NodeTest, arm: KernelArm) -> Vec<u64> {
        let mut out = Vec::new();
        scan_range_arm(view, lo, hi, test, arm, &mut out);
        out
    }

    /// Both kernel arms must agree with the per-slot walk on every
    /// schema (chunked and fallback paths), every test, every
    /// sub-range — misaligned starts and partial tail lanes included.
    #[test]
    fn scan_matches_per_slot_walk() {
        let ro = ReadOnlyDoc::parse_str(DOC).unwrap();
        let up = PagedDoc::parse_str(DOC, PageConfig::new(4, 75).unwrap()).unwrap();
        let nv = NaiveDoc::parse_str(DOC).unwrap();
        fn check<V: TreeView>(view: &V) {
            let tests = [
                NodeTest::AnyNode,
                NodeTest::AnyElement,
                NodeTest::Text,
                NodeTest::Comment,
                NodeTest::Name(QName::local("h")),
                NodeTest::Name(QName::local("nope")),
            ];
            let end = view.pre_end();
            for test in &tests {
                for lo in 0..end {
                    for hi in lo..=end {
                        let mut want = Vec::new();
                        let mut p = lo;
                        while let Some(q) = view.next_used_at_or_after(p) {
                            if q >= hi {
                                break;
                            }
                            if test.matches(view, q) {
                                want.push(q);
                            }
                            p = q + 1;
                        }
                        for arm in [KernelArm::Scalar, KernelArm::Simd] {
                            assert_eq!(
                                scan(view, lo, hi, test, arm),
                                want,
                                "[{lo},{hi}) {test:?} {arm:?}"
                            );
                        }
                    }
                }
            }
        }
        check(&ro);
        check(&up);
        check(&nv);
    }

    /// Scanning the staircase ranges reproduces the descendant step.
    #[test]
    fn ranges_plus_scan_equal_staircase() {
        let up = PagedDoc::parse_str(DOC, PageConfig::new(4, 75).unwrap()).unwrap();
        let contexts: &[&[u64]] = &[&[0], &[2, 8], &[2, 3, 8], &[0, 2, 8]];
        for ctx in contexts {
            let ctx: Vec<u64> = ctx.iter().copied().filter(|&p| up.is_used(p)).collect();
            for or_self in [false, true] {
                let axis = if or_self {
                    Axis::DescendantOrSelf
                } else {
                    Axis::Descendant
                };
                let want = step(&up, &ctx, axis, &NodeTest::AnyElement);
                let ranges = descendant_scan_ranges(&up, &ctx, or_self);
                // Ranges are disjoint and ascending.
                assert!(ranges.windows(2).all(|w| w[0].1 <= w[1].0), "{ranges:?}");
                for arm in [KernelArm::Scalar, KernelArm::Simd] {
                    let mut got = Vec::new();
                    scan_ranges_arm(&up, &ranges, &NodeTest::AnyElement, arm, &mut got);
                    assert_eq!(got, want, "ctx {ctx:?} or_self {or_self} {arm:?}");
                }
            }
        }
    }

    /// The numeric range kernel agrees with `NumRange::contains` on
    /// every arm, including NaN entries and open/closed bounds, at
    /// lengths that exercise partial tail lanes.
    #[test]
    fn range_mask_matches_contains() {
        let vals: Vec<f64> = vec![
            -3.0,
            0.0,
            0.5,
            1.0,
            2.0,
            2.5,
            3.0,
            f64::NAN,
            7.25,
            -0.0,
            1e12,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        let ranges = [
            NumRange::exactly(1.0),
            NumRange {
                lo: 0.0,
                hi: 3.0,
                lo_incl: true,
                hi_incl: false,
            },
            NumRange {
                lo: 0.5,
                hi: 2.5,
                lo_incl: false,
                hi_incl: true,
            },
            NumRange {
                lo: f64::NEG_INFINITY,
                hi: 2.0,
                lo_incl: false,
                hi_incl: true,
            },
        ];
        for r in &ranges {
            for n in 0..=vals.len() {
                let want: Vec<bool> = vals[..n].iter().map(|&v| r.contains(v)).collect();
                for arm in [KernelArm::Scalar, KernelArm::Simd] {
                    let mut got = Vec::new();
                    in_range_mask(&vals[..n], r, arm, &mut got);
                    assert_eq!(got, want, "{r:?} n={n} {arm:?}");
                }
            }
        }
    }
}
