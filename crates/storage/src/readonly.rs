//! The original read-only storage schema (Figure 5).
//!
//! One dense `pre/size/level` table with a void `pre` column, an `attr`
//! table whose rows point back at owner `pre` values, and the interned
//! side tables. Produced by the event-based document shredder; immutable
//! thereafter — exactly "the storage scheme used until now in
//! MonetDB/XQuery, … a read-only solution" (§2.2).

use crate::types::{Kind, NodeId, StorageError, ValueRef};
use crate::values::{ContentIndex, NumRange, PropId, QnId, TextProbe, ValuePool};
use crate::view::TreeView;
use crate::Result;
use mbxq_bat::VoidBat;
use mbxq_xml::{Event, Node, Parser};

/// A shredded document in the dense read-only encoding.
///
/// The `pre` column is *virtual* (void): a tuple's pre rank is its
/// position. `post` is not stored; it is recovered as
/// `post = pre + size - level` (§2.2) — see [`ReadOnlyDoc::post`].
#[derive(Debug, Clone, Default)]
pub struct ReadOnlyDoc {
    /// Subtree sizes (descendant tuple counts), void-keyed by pre.
    size: VoidBat<u64>,
    /// Tree depths, void-keyed by pre.
    level: VoidBat<u16>,
    /// Node kinds, void-keyed by pre.
    kind: VoidBat<Kind>,
    /// `qn` id for elements (`u32::MAX` for non-elements).
    name: VoidBat<u32>,
    /// Value-table reference for non-elements (`u32::MAX` for elements).
    value: VoidBat<u32>,
    /// Attribute table: owner pre (ascending — attrs are emitted in
    /// document order, enabling binary-search range lookup).
    attr_owner: VoidBat<u64>,
    /// Attribute names.
    attr_qn: VoidBat<QnId>,
    /// Attribute values (`prop` references).
    attr_prop: VoidBat<PropId>,
    /// Element-name index: `qn` id → element pre ranks (ascending).
    /// The schema is immutable, so pre ranks are stable and the index
    /// never needs maintenance — it is built once by the shredder.
    name_index: std::collections::HashMap<QnId, Vec<u64>>,
    /// Content index (attribute values + element text; see
    /// `crate::values`), built once at shred time like the name index.
    content_index: ContentIndex,
    /// Interned side tables.
    pool: ValuePool,
}

impl ReadOnlyDoc {
    /// Shreds XML text into the read-only encoding.
    pub fn parse_str(input: &str) -> Result<Self> {
        let mut doc = ReadOnlyDoc::default();
        let mut parser = Parser::new(input);
        // Stack of (pre, tuples_emitted_when_opened).
        let mut stack: Vec<(u64, u64)> = Vec::new();
        let mut emitted: u64 = 0;
        while let Some(ev) = parser
            .next_event()
            .map_err(|e| StorageError::InvalidTarget {
                message: format!("XML parse: {e}"),
            })?
        {
            match ev {
                Event::StartElement { name, attributes } => {
                    let pre = emitted;
                    emitted += 1;
                    let level = stack.len() as u16;
                    let qn = doc.pool.intern_qname(&name);
                    doc.name_index.entry(qn).or_default().push(pre);
                    doc.push_tuple(0, level, Kind::Element, qn.0, u32::MAX);
                    for (aname, avalue) in &attributes {
                        let aqn = doc.pool.intern_qname(aname);
                        let prop = doc.pool.intern_prop(avalue);
                        doc.attr_owner.append(pre);
                        doc.attr_qn.append(aqn);
                        doc.attr_prop.append(prop);
                    }
                    stack.push((pre, emitted));
                }
                Event::EndElement { .. } => {
                    let (pre, opened_at) = stack.pop().expect("parser guarantees balance");
                    *doc.size.find_mut(pre)? = emitted - opened_at;
                }
                Event::Text(t) => {
                    let level = stack.len() as u16;
                    let v = doc.pool.intern_text(&t);
                    doc.push_tuple(0, level, Kind::Text, u32::MAX, v);
                    emitted += 1;
                }
                Event::Comment(c) => {
                    let level = stack.len() as u16;
                    let v = doc.pool.intern_comment(&c);
                    doc.push_tuple(0, level, Kind::Comment, u32::MAX, v);
                    emitted += 1;
                }
                Event::ProcessingInstruction { target, data } => {
                    let level = stack.len() as u16;
                    let v = doc.pool.intern_instruction(&target, &data);
                    doc.push_tuple(0, level, Kind::ProcessingInstruction, u32::MAX, v);
                    emitted += 1;
                }
            }
        }
        doc.content_index = ContentIndex::build_from_view(&doc);
        Ok(doc)
    }

    /// Shreds an owned tree (used when both schemas must be loaded from
    /// the identical document object).
    pub fn from_tree(root: &Node) -> Result<Self> {
        let mut doc = ReadOnlyDoc::default();
        doc.shred_node(root, 0)?;
        doc.content_index = ContentIndex::build_from_view(&doc);
        Ok(doc)
    }

    fn shred_node(&mut self, node: &Node, level: u16) -> Result<u64> {
        match node {
            Node::Element {
                name,
                attributes,
                children,
            } => {
                let pre = self.size.len() as u64;
                let qn = self.pool.intern_qname(name);
                self.name_index.entry(qn).or_default().push(pre);
                self.push_tuple(0, level, Kind::Element, qn.0, u32::MAX);
                for (aname, avalue) in attributes {
                    let aqn = self.pool.intern_qname(aname);
                    let prop = self.pool.intern_prop(avalue);
                    self.attr_owner.append(pre);
                    self.attr_qn.append(aqn);
                    self.attr_prop.append(prop);
                }
                let mut sz = 0;
                for c in children {
                    sz += self.shred_node(c, level + 1)?;
                }
                *self.size.find_mut(pre)? = sz;
                Ok(sz + 1)
            }
            Node::Text(t) => {
                let v = self.pool.intern_text(t);
                self.push_tuple(0, level, Kind::Text, u32::MAX, v);
                Ok(1)
            }
            Node::Comment(c) => {
                let v = self.pool.intern_comment(c);
                self.push_tuple(0, level, Kind::Comment, u32::MAX, v);
                Ok(1)
            }
            Node::ProcessingInstruction { target, data } => {
                let v = self.pool.intern_instruction(target, data);
                self.push_tuple(0, level, Kind::ProcessingInstruction, u32::MAX, v);
                Ok(1)
            }
        }
    }

    fn push_tuple(&mut self, size: u64, level: u16, kind: Kind, name: u32, value: u32) {
        self.size.append(size);
        self.level.append(level);
        self.kind.append(kind);
        self.name.append(name);
        self.value.append(value);
    }

    /// Number of tuples (document nodes).
    pub fn len(&self) -> usize {
        self.size.len()
    }

    /// Whether the document is empty (never true for parsed documents —
    /// they have at least a root).
    pub fn is_empty(&self) -> bool {
        self.size.is_empty()
    }

    /// The post rank of the node at `pre`: `post = pre + size - level`
    /// (§2.2, Figure 2). Only meaningful in this dense encoding.
    pub fn post(&self, pre: u64) -> Result<u64> {
        let size = self.size.get(pre)?;
        let level = self.level.get(pre)? as u64;
        Ok(pre + size - level)
    }

    /// Mutable access to the value pool (the shredder interns; queries
    /// only read).
    pub fn pool_mut(&mut self) -> &mut ValuePool {
        &mut self.pool
    }

    /// Approximate heap footprint of the tree + attribute tables in bytes
    /// (for the storage-overhead experiment; excludes the shared pool).
    pub fn table_bytes(&self) -> usize {
        self.len() * (8 + 2 + 1 + 4 + 4) + self.attr_owner.len() * (8 + 4 + 4)
    }
}

impl TreeView for ReadOnlyDoc {
    fn pre_end(&self) -> u64 {
        self.size.len() as u64
    }

    fn level(&self, pre: u64) -> Option<u16> {
        self.level.get(pre).ok()
    }

    fn size(&self, pre: u64) -> u64 {
        self.size.get(pre).unwrap_or(0)
    }

    fn kind(&self, pre: u64) -> Option<Kind> {
        self.kind.get(pre).ok()
    }

    fn name_id(&self, pre: u64) -> Option<QnId> {
        match self.name.get(pre) {
            Ok(id) if id != u32::MAX => Some(QnId(id)),
            _ => None,
        }
    }

    fn value_ref(&self, pre: u64) -> Option<ValueRef> {
        match self.value.get(pre) {
            Ok(v) if v != u32::MAX => Some(ValueRef(v)),
            _ => None,
        }
    }

    fn node_id(&self, pre: u64) -> Option<NodeId> {
        // "At shredding time, node numbers are identical to pos numbers"
        // (§3.1); the read-only schema never updates, so they stay equal.
        if pre < self.pre_end() {
            Some(NodeId(pre))
        } else {
            None
        }
    }

    fn back_run(&self, _pre: u64) -> u64 {
        0 // no unused slots in the dense encoding
    }

    fn attributes(&self, pre: u64) -> Vec<(QnId, PropId)> {
        let owners = self.attr_owner.tail();
        let lo = owners.partition_point(|&o| o < pre);
        let hi = owners.partition_point(|&o| o <= pre);
        (lo..hi)
            .map(|i| (self.attr_qn.tail()[i], self.attr_prop.tail()[i]))
            .collect()
    }

    fn pool(&self) -> &ValuePool {
        &self.pool
    }

    fn used_count(&self) -> u64 {
        self.len() as u64
    }

    fn elements_named(&self, qn: QnId) -> Option<Vec<u64>> {
        Some(self.name_index.get(&qn).cloned().unwrap_or_default())
    }

    fn elements_named_count(&self, qn: QnId) -> Option<u64> {
        Some(self.name_index.get(&qn).map_or(0, Vec::len) as u64)
    }

    // Content probes: node ids equal pre ranks in this schema, so the
    // translation closure is the identity.
    fn has_content_index(&self) -> bool {
        true
    }

    fn nodes_with_attr_value(&self, attr: QnId, value: &str) -> Option<Vec<u64>> {
        Some(self.content_index.attr_eq(attr, value, Some))
    }

    fn nodes_with_attr_value_range(&self, attr: QnId, range: &NumRange) -> Option<Vec<u64>> {
        Some(self.content_index.attr_range(attr, range, Some))
    }

    fn nodes_with_attr_value_count(&self, attr: QnId, value: &str) -> Option<u64> {
        Some(self.content_index.attr_eq_count(attr, value))
    }

    fn nodes_with_attr_value_range_count(&self, attr: QnId, range: &NumRange) -> Option<u64> {
        Some(self.content_index.attr_range_count(attr, range))
    }

    fn elements_with_text(&self, qn: QnId, value: &str) -> Option<TextProbe> {
        Some(self.content_index.text_eq(qn, value, Some))
    }

    fn elements_with_text_range(&self, qn: QnId, range: &NumRange) -> Option<TextProbe> {
        Some(self.content_index.text_range(qn, range, Some))
    }

    fn elements_with_text_count(&self, qn: QnId, value: &str) -> Option<u64> {
        Some(self.content_index.text_eq_count(qn, value))
    }

    fn elements_with_text_range_count(&self, qn: QnId, range: &NumRange) -> Option<u64> {
        Some(self.content_index.text_range_count(qn, range))
    }

    fn attr_degree_stats(&self, attr: QnId) -> Option<crate::values::DegreeStats> {
        Some(self.content_index.attr_degree_stats(attr))
    }

    fn text_degree_stats(&self, qn: QnId) -> Option<crate::values::DegreeStats> {
        Some(self.content_index.text_degree_stats(qn))
    }

    // Dense encoding: every slot used, so the generic helpers collapse.
    fn next_used_at_or_after(&self, pre: u64) -> Option<u64> {
        if pre < self.pre_end() {
            Some(pre)
        } else {
            None
        }
    }

    fn prev_used_at_or_before(&self, pre: u64) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(pre.min(self.pre_end() - 1))
        }
    }

    fn region_end(&self, pre: u64) -> u64 {
        // Hole-free: the classic O(1) jump.
        pre + self.size(pre) + 1
    }

    fn pre_chunk(&self, pre: u64, end: u64) -> Option<crate::view::PreChunk<'_>> {
        let total = self.pre_end();
        if pre >= total {
            return None;
        }
        // The dense schema is one contiguous allocation: the whole
        // requested range comes back as a single chunk, every slot live.
        let lo = pre as usize;
        let hi = end.min(total) as usize;
        if lo >= hi {
            return None;
        }
        Some(crate::view::PreChunk {
            pre,
            used: None,
            kinds: &self.kind.tail()[lo..hi],
            levels: &self.level.tail()[lo..hi],
            names: &self.name.tail()[lo..hi],
            sizes: &self.size.tail()[lo..hi],
            values: &self.value.tail()[lo..hi],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example, Figure 2.
    const PAPER_DOC: &str =
        "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";

    #[test]
    fn figure2_pre_size_level() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        assert_eq!(d.len(), 10);
        // Figure 2(iv): pre | size | level
        let expect: [(u64, u64, u16); 10] = [
            (0, 9, 0), // a
            (1, 3, 1), // b
            (2, 2, 2), // c
            (3, 0, 3), // d
            (4, 0, 3), // e
            (5, 4, 1), // f
            (6, 0, 2), // g
            (7, 2, 2), // h
            (8, 0, 3), // i
            (9, 0, 3), // j
        ];
        for (pre, size, level) in expect {
            assert_eq!(TreeView::size(&d, pre), size, "size of pre {pre}");
            assert_eq!(TreeView::level(&d, pre), Some(level), "level of pre {pre}");
        }
    }

    #[test]
    fn figure2_post_equals_pre_plus_size_minus_level() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        // Figure 2(ii): post ranks for a..j.
        let post: [u64; 10] = [9, 3, 2, 0, 1, 8, 4, 7, 5, 6];
        for (pre, &want) in post.iter().enumerate() {
            assert_eq!(d.post(pre as u64).unwrap(), want, "post of pre {pre}");
        }
    }

    #[test]
    fn element_names_resolve() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        let names: Vec<_> = (0..10)
            .map(|p| d.pool().qname(d.name_id(p).unwrap()).unwrap().local.clone())
            .collect();
        assert_eq!(names, ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]);
    }

    #[test]
    fn text_nodes_and_string_values() {
        let d = ReadOnlyDoc::parse_str("<a>x<b>y</b>z</a>").unwrap();
        assert_eq!(d.len(), 5);
        assert_eq!(d.kind(1), Some(Kind::Text));
        assert_eq!(d.string_value(0), "xyz");
        assert_eq!(d.string_value(2), "y");
        assert_eq!(d.string_value(1), "x");
    }

    #[test]
    fn attributes_found_by_owner() {
        let d = ReadOnlyDoc::parse_str(r#"<a x="1"><b y="2" z="3"/><c/></a>"#).unwrap();
        let a0 = d.attributes(0);
        assert_eq!(a0.len(), 1);
        assert_eq!(d.pool().prop(a0[0].1), Some("1"));
        let a1 = d.attributes(1);
        assert_eq!(a1.len(), 2);
        assert_eq!(d.attributes(2), vec![]);
        assert_eq!(
            d.attribute_value(1, &mbxq_xml::QName::local("z")),
            Some("3".to_string())
        );
        assert_eq!(d.attribute_value(1, &mbxq_xml::QName::local("q")), None);
    }

    #[test]
    fn parent_of_walks_levels() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        assert_eq!(d.parent_of(0), None); // a is root
        assert_eq!(d.parent_of(3), Some(2)); // d -> c
        assert_eq!(d.parent_of(7), Some(5)); // h -> f
        assert_eq!(d.parent_of(9), Some(7)); // j -> h
    }

    #[test]
    fn region_end_matches_size() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        for pre in 0..10 {
            assert_eq!(d.region_end(pre), pre + TreeView::size(&d, pre) + 1);
        }
    }

    #[test]
    fn from_tree_matches_parse() {
        let tree = mbxq_xml::Document::parse(PAPER_DOC).unwrap();
        let d1 = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        let d2 = ReadOnlyDoc::from_tree(&tree.root).unwrap();
        assert_eq!(d1.len(), d2.len());
        for p in 0..d1.pre_end() {
            assert_eq!(TreeView::size(&d1, p), TreeView::size(&d2, p));
            assert_eq!(TreeView::level(&d1, p), TreeView::level(&d2, p));
            assert_eq!(d1.kind(p), d2.kind(p));
        }
    }

    #[test]
    fn node_ids_equal_pre_at_shred_time() {
        let d = ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        for p in 0..10 {
            assert_eq!(d.node_id(p), Some(NodeId(p)));
        }
        assert_eq!(d.node_id(10), None);
    }
}
