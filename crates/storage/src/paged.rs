//! The updateable storage schema (Figures 4 and 6).
//!
//! The base table is `pos/size/level/node`, divided into **logical pages**
//! of a fixed tuple count. The shredder fills each page only to a
//! configurable fill factor, leaving the remainder as *unused tuples*
//! (`level = NULL`; `size` = remaining run length). New pages are only
//! ever appended physically; a [`PageMap`] (the `pageOffset` table) gives
//! the pages' *logical* order, and the `pre/size/level` **view** the
//! query engine sees — the [`TreeView`] impl here — reads through that
//! indirection. Because `pre` is the (virtual) position in the view, all
//! pre numbers after an insert point shift "at no update cost at all"
//! when a page is spliced in (§3).
//!
//! Each tuple additionally carries an immutable **node id**; the
//! `node→pos` table maps ids back to physical positions, and the
//! attribute table refers to node ids instead of pre values (Figure 6),
//! so attribute rows never need maintenance when positions shift.
//!
//! # Copy-on-write column layout
//!
//! Every column is a [`CowVec`]/[`CowNullable`]: logical pages of values
//! behind shared reference-counted pointers. `PagedDoc::clone` therefore
//! copies only page *pointers* (plus the pool's and attribute index's
//! small deltas), and a write privatizes exactly the page it lands in.
//! This is the in-memory equivalent of MonetDB's copy-on-write memory
//! maps (§3.2): a transaction commit builds its new version by cloning
//! the current one and applying its operations, paying O(pages touched +
//! ancestors delta-adjusted) instead of O(document), and publishes it by
//! swapping one `Arc` under the store's short global lock.

use crate::names::NameIndex;
use crate::types::{Kind, NodeId, PageConfig, StorageError, ValueRef};
use crate::values::{ContentIndex, NumRange, PropId, QnId, TextProbe, ValuePool};
use crate::view::TreeView;
use crate::Result;
use mbxq_bat::{CowNullable, CowVec, PageMap};
use mbxq_xml::{Document, Node};
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel stored in the `name` column of non-element used tuples.
pub(crate) const NO_NAME: u32 = u32::MAX;
/// Sentinel stored in the `node` column of unused tuples.
pub(crate) const NO_NODE: u64 = u64::MAX;

/// Staged tuple data, used while shredding and while preparing inserts.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Tuple {
    pub size: u64,
    pub level: u16,
    pub kind: Kind,
    pub name: u32,
    pub value: u32,
    pub node: u64,
}

/// Page size (in entries) of the COW columns that are *not* divided
/// into logical document pages: the `node→pos` map and the attribute
/// table. Purely a sharing granularity; any power of two works.
pub(crate) const SIDE_PAGE: usize = 1024;

/// A document in the updateable paged encoding.
///
/// Cloning is O(#pages) pointer copies — all tuple data is structurally
/// shared with the clone until one side writes it (see the module docs).
#[derive(Debug, Clone)]
pub struct PagedDoc {
    pub(crate) cfg: PageConfig,
    pub(crate) shift: u32,
    // ---- base table, indexed by physical pos ----
    pub(crate) size: CowVec<u64>,
    pub(crate) level: CowVec<u16>,
    /// Whether the slot holds a node (`level = NULL` ⇔ `!used`).
    pub(crate) used: CowVec<bool>,
    pub(crate) kind: CowVec<Kind>,
    /// `qn` id for elements; 1-based backward run index for unused slots.
    pub(crate) name: CowVec<u32>,
    pub(crate) value: CowVec<u32>,
    pub(crate) node: CowVec<u64>,
    /// The `pageOffset` table: logical order of physical pages.
    pub(crate) pages: PageMap,
    /// node id → physical pos (NULL = deleted node).
    pub(crate) node_pos: CowNullable<u64>,
    // ---- attribute table, keyed by node id (Figure 6) ----
    pub(crate) attr_node: CowVec<u64>,
    pub(crate) attr_qn: CowVec<QnId>,
    pub(crate) attr_prop: CowVec<PropId>,
    /// node id → attribute row indexes (document order).
    pub(crate) attr_index: AttrIndex,
    /// element name → element node ids (document order) — the access
    /// path behind cost-based axis selection (module [`crate::names`]).
    pub(crate) name_index: NameIndex,
    /// `(name, value)` → node ids — the access path behind cost-based
    /// value-predicate lowering (module [`crate::values`]).
    pub(crate) content_index: ContentIndex,
    pub(crate) pool: ValuePool,
    pub(crate) used_count: u64,
}

/// The `node id → attribute rows` index, split like the value pool into
/// an [`Arc`]-shared base plus a small mutable delta so that cloning a
/// document never copies the whole index. A delta entry overrides the
/// base entry for its node; `None` is a tombstone (all rows removed).
#[derive(Debug, Clone, Default)]
pub(crate) struct AttrIndex {
    base: Arc<HashMap<u64, Vec<u32>>>,
    delta: HashMap<u64, Option<Vec<u32>>>,
}

impl AttrIndex {
    /// The attribute rows of `node`, in document order.
    pub(crate) fn get(&self, node: u64) -> Option<&[u32]> {
        match self.delta.get(&node) {
            Some(Some(rows)) => Some(rows.as_slice()),
            Some(None) => None,
            None => self.base.get(&node).map(Vec::as_slice),
        }
    }

    /// Appends a row to `node`'s list (copying the base list into the
    /// delta on first touch). Never compacts — that would clone the
    /// whole shared base inside a commit's critical section; compaction
    /// happens at the explicit maintenance points (shredding, vacuum,
    /// checkpoint).
    pub(crate) fn push_row(&mut self, node: u64, row: u32) {
        self.rows_entry(node).push(row);
    }

    /// Mutable access to `node`'s rows, if it has any.
    pub(crate) fn rows_mut(&mut self, node: u64) -> Option<&mut Vec<u32>> {
        if !self.delta.contains_key(&node) {
            let from_base = self.base.get(&node)?.clone();
            self.delta.insert(node, Some(from_base));
        }
        self.delta.get_mut(&node)?.as_mut()
    }

    /// Removes `node`'s entry, returning the rows it held.
    pub(crate) fn remove(&mut self, node: u64) -> Option<Vec<u32>> {
        let had_base = self.base.contains_key(&node);
        let prior = match self.delta.remove(&node) {
            Some(entry) => entry,
            None => self.base.get(&node).cloned(),
        };
        if had_base {
            // Tombstone so the shared base entry stays shadowed.
            self.delta.insert(node, None);
        }
        prior
    }

    /// Iterates `(node, rows)` over all live entries (order unspecified).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &[u32])> + '_ {
        let from_delta = self
            .delta
            .iter()
            .filter_map(|(&n, e)| e.as_ref().map(|rows| (n, rows.as_slice())));
        let from_base = self
            .base
            .iter()
            .filter(move |(n, _)| !self.delta.contains_key(n))
            .map(|(&n, rows)| (n, rows.as_slice()));
        from_delta.chain(from_base)
    }

    /// An index with the given base and an empty delta.
    pub(crate) fn from_base(base: HashMap<u64, Vec<u32>>) -> AttrIndex {
        AttrIndex {
            base: Arc::new(base),
            delta: HashMap::new(),
        }
    }

    /// Folds the delta into a fresh shared base.
    pub(crate) fn compact(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let mut base = (*self.base).clone();
        for (node, entry) in self.delta.drain() {
            match entry {
                Some(rows) => {
                    base.insert(node, rows);
                }
                None => {
                    base.remove(&node);
                }
            }
        }
        self.base = Arc::new(base);
    }

    /// A clone sharing no storage (the clone-the-world baseline).
    pub(crate) fn deep_clone(&self) -> AttrIndex {
        AttrIndex {
            base: Arc::new((*self.base).clone()),
            delta: self.delta.clone(),
        }
    }

    fn rows_entry(&mut self, node: u64) -> &mut Vec<u32> {
        let base = &self.base;
        self.delta
            .entry(node)
            .or_insert_with(|| Some(base.get(&node).cloned().unwrap_or_default()))
            .get_or_insert_with(Vec::new)
    }
}

/// Builds an element-name-index base from a document-ordered tuple
/// stream (shredding, checkpoint load, vacuum).
pub(crate) fn name_index_base(staged: &[Tuple]) -> HashMap<QnId, Vec<u64>> {
    let mut base: HashMap<QnId, Vec<u64>> = HashMap::new();
    for t in staged {
        if t.kind == Kind::Element {
            base.entry(QnId(t.name)).or_default().push(t.node);
        }
    }
    base
}

/// Size/occupancy statistics (for the §4.1 storage-overhead experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedStats {
    /// Number of logical pages.
    pub pages: usize,
    /// Total slots (used + unused).
    pub capacity: u64,
    /// Slots holding document nodes.
    pub used: u64,
    /// Unused slots.
    pub unused: u64,
    /// Approximate bytes of the tree + node/pos + attr tables.
    pub table_bytes: usize,
}

impl PagedDoc {
    /// Shreds XML text into the paged encoding.
    pub fn parse_str(input: &str, cfg: PageConfig) -> Result<Self> {
        let doc = Document::parse(input).map_err(|e| StorageError::InvalidTarget {
            message: format!("XML parse: {e}"),
        })?;
        Self::from_tree(&doc.root, cfg)
    }

    /// Shreds an owned tree into the paged encoding, leaving
    /// `100 - fill_percent` percent of every page unused (§3: "the
    /// document shredder already leaves a certain (configurable)
    /// percentage of tuples unused in each logical page").
    pub fn from_tree(root: &Node, cfg: PageConfig) -> Result<Self> {
        let mut doc = Self::empty(cfg)?;
        // Stage the whole tuple stream first (sizes require postorder),
        // then lay out page by page.
        let mut staged = Vec::with_capacity(root.tuple_count() as usize);
        let mut attrs = Vec::new();
        doc.stage_subtree(root, 0, &mut staged, &mut attrs);
        let fill = cfg.fill_target();
        for chunk in staged.chunks(fill) {
            let page = doc.append_physical_page();
            let base = page * cfg.page_size;
            for (i, t) in chunk.iter().enumerate() {
                doc.write_tuple(base + i, *t);
                doc.node_pos.append(Some((base + i) as u64));
            }
            doc.rebuild_runs_in_page(page);
        }
        if staged.is_empty() {
            // An element-only root always stages at least one tuple, so
            // this cannot happen for parsed documents.
            return Err(StorageError::InvalidTarget {
                message: "cannot shred an empty tree".into(),
            });
        }
        doc.used_count = staged.len() as u64;
        for (node, qn, prop) in attrs {
            doc.push_attr(node, qn, prop);
        }
        doc.name_index = NameIndex::from_base(name_index_base(&staged));
        doc.content_index = ContentIndex::build_from_view(&doc);
        // Fold the shredder's interning burst into the shared bases, so
        // subsequent clones (reader snapshots, commit versions) carry
        // empty deltas.
        doc.pool.compact();
        doc.attr_index.compact();
        Ok(doc)
    }

    /// An empty document skeleton with validated configuration.
    pub(crate) fn empty(cfg: PageConfig) -> Result<Self> {
        PageConfig::new(cfg.page_size, cfg.fill_percent)?;
        Ok(PagedDoc {
            cfg,
            shift: cfg.page_size.trailing_zeros(),
            size: CowVec::new(cfg.page_size),
            level: CowVec::new(cfg.page_size),
            used: CowVec::new(cfg.page_size),
            kind: CowVec::new(cfg.page_size),
            name: CowVec::new(cfg.page_size),
            value: CowVec::new(cfg.page_size),
            node: CowVec::new(cfg.page_size),
            pages: PageMap::new(cfg.page_size),
            node_pos: CowNullable::new(SIDE_PAGE),
            attr_node: CowVec::new(SIDE_PAGE),
            attr_qn: CowVec::new(SIDE_PAGE),
            attr_prop: CowVec::new(SIDE_PAGE),
            attr_index: AttrIndex::default(),
            name_index: NameIndex::default(),
            content_index: ContentIndex::default(),
            pool: ValuePool::new(),
            used_count: 0,
        })
    }

    /// One past the highest allocated node id.
    pub fn node_alloc_end(&self) -> u64 {
        self.node_pos.hseqend()
    }

    /// Recursively stages `node` and its subtree with ids continuing the
    /// current allocation; returns the number of staged tuples. Node ids
    /// are allocated in document order, so at shredding time node ==
    /// pos-rank (§3.1).
    pub(crate) fn stage_subtree(
        &mut self,
        node: &Node,
        level: u16,
        out: &mut Vec<Tuple>,
        attrs: &mut Vec<(u64, QnId, PropId)>,
    ) -> u64 {
        let base = self.node_pos.hseqend();
        self.stage_subtree_with_base(node, level, base, out, attrs)
    }

    /// Recursively stages `node` and its subtree with ids starting at
    /// `base + out.len()`.
    pub(crate) fn stage_subtree_with_base(
        &mut self,
        node: &Node,
        level: u16,
        base: u64,
        out: &mut Vec<Tuple>,
        attrs: &mut Vec<(u64, QnId, PropId)>,
    ) -> u64 {
        let node_id = base + out.len() as u64;
        match node {
            Node::Element {
                name,
                attributes,
                children,
            } => {
                let qn = self.pool.intern_qname(name);
                let idx = out.len();
                out.push(Tuple {
                    size: 0,
                    level,
                    kind: Kind::Element,
                    name: qn.0,
                    value: NO_NAME,
                    node: node_id,
                });
                for (aname, avalue) in attributes {
                    let aqn = self.pool.intern_qname(aname);
                    let prop = self.pool.intern_prop(avalue);
                    attrs.push((node_id, aqn, prop));
                }
                let mut sz = 0;
                for c in children {
                    sz += self.stage_subtree_with_base(c, level + 1, base, out, attrs);
                }
                out[idx].size = sz;
                sz + 1
            }
            Node::Text(t) => {
                let v = self.pool.intern_text(t);
                out.push(Tuple {
                    size: 0,
                    level,
                    kind: Kind::Text,
                    name: NO_NAME,
                    value: v,
                    node: node_id,
                });
                1
            }
            Node::Comment(c) => {
                let v = self.pool.intern_comment(c);
                out.push(Tuple {
                    size: 0,
                    level,
                    kind: Kind::Comment,
                    name: NO_NAME,
                    value: v,
                    node: node_id,
                });
                1
            }
            Node::ProcessingInstruction { target, data } => {
                let v = self.pool.intern_instruction(target, data);
                out.push(Tuple {
                    size: 0,
                    level,
                    kind: Kind::ProcessingInstruction,
                    name: NO_NAME,
                    value: v,
                    node: node_id,
                });
                1
            }
        }
    }

    /// Appends a fresh physical page (all slots unused) at the end of the
    /// logical order, growing every base column. Returns its physical id.
    pub(crate) fn append_physical_page(&mut self) -> usize {
        let page = self.pages.append_page();
        self.grow_columns();
        page
    }

    /// Appends a fresh physical page spliced into the logical order at
    /// logical index `at` (case 2b of Figure 7). Returns its physical id.
    pub(crate) fn splice_physical_page(&mut self, at: usize) -> Result<usize> {
        let page = self.pages.insert_page_at(at)?;
        self.grow_columns();
        Ok(page)
    }

    fn grow_columns(&mut self) {
        // Column lengths are always a page multiple, so growth appends
        // fresh private pages and never touches shared ones.
        let new_len = self.size.len() + self.cfg.page_size;
        self.size.resize(new_len, 0);
        self.level.resize(new_len, 0);
        self.used.resize(new_len, false);
        self.kind.resize(new_len, Kind::Element);
        self.name.resize(new_len, 0);
        self.value.resize(new_len, NO_NAME);
        self.node.resize(new_len, NO_NODE);
    }

    /// Writes a staged tuple at physical position `pos`.
    pub(crate) fn write_tuple(&mut self, pos: usize, t: Tuple) {
        self.size[pos] = t.size;
        self.level[pos] = t.level;
        self.used[pos] = true;
        self.kind[pos] = t.kind;
        self.name[pos] = t.name;
        self.value[pos] = t.value;
        self.node[pos] = t.node;
    }

    /// Reads the staged form of the used tuple at physical `pos`.
    pub(crate) fn read_tuple(&self, pos: usize) -> Tuple {
        debug_assert!(self.used[pos]);
        Tuple {
            size: self.size[pos],
            level: self.level[pos],
            kind: self.kind[pos],
            name: self.name[pos],
            value: self.value[pos],
            node: self.node[pos],
        }
    }

    /// Marks physical `pos` unused. Run encodings must be rebuilt for the
    /// page afterwards.
    pub(crate) fn clear_slot(&mut self, pos: usize) {
        self.used[pos] = false;
        self.node[pos] = NO_NODE;
        self.size[pos] = 0;
        self.name[pos] = 0;
        self.value[pos] = NO_NAME;
        self.level[pos] = 0;
    }

    /// Recomputes the unused-run encodings of one physical page: for each
    /// unused slot, `size` = remaining consecutive unused slots in the
    /// page including itself, `name` = 1-based index within the run
    /// (backward skip support). Runs never cross page boundaries — page
    /// maintenance stays local to the touched page.
    pub(crate) fn rebuild_runs_in_page(&mut self, page: usize) {
        let base = page * self.cfg.page_size;
        let end = base + self.cfg.page_size;
        let mut i = base;
        while i < end {
            if self.used[i] {
                i += 1;
                continue;
            }
            let run_start = i;
            while i < end && !self.used[i] {
                i += 1;
            }
            let run_end = i;
            for (k, pos) in (run_start..run_end).enumerate() {
                self.size[pos] = (run_end - pos) as u64;
                self.name[pos] = (k + 1) as u32;
                self.node[pos] = NO_NODE;
            }
        }
    }

    /// Number of unused slots on physical page `page`.
    pub fn free_in_page(&self, page: usize) -> usize {
        let base = page * self.cfg.page_size;
        (base..base + self.cfg.page_size)
            .filter(|&p| !self.used[p])
            .count()
    }

    /// Adds an attribute row for `node`.
    pub(crate) fn push_attr(&mut self, node: u64, qn: QnId, prop: PropId) {
        let row = u32::try_from(self.attr_node.len()).expect("attr table overflow");
        self.attr_node.push(node);
        self.attr_qn.push(qn);
        self.attr_prop.push(prop);
        self.attr_index.push_row(node, row);
    }

    // ------------------------------------------------------------------
    // Public accessors
    // ------------------------------------------------------------------

    /// The page configuration.
    pub fn config(&self) -> PageConfig {
        self.cfg
    }

    /// Translates a node id to its current pre rank, via the `node→pos`
    /// table and the `pageOffset` swizzle (§3.1).
    pub fn node_to_pre(&self, node: NodeId) -> Result<u64> {
        let pos = self
            .node_pos
            .get(node.0)
            .map_err(|_| StorageError::BadNode { node })?
            .ok_or(StorageError::BadNode { node })?;
        Ok(self.pages.pos_to_pre(pos)?)
    }

    /// Translates a pre rank to the node id stored there.
    pub fn pre_to_node(&self, pre: u64) -> Result<NodeId> {
        let pos = self.pages.pre_to_pos(pre)? as usize;
        if !self.used[pos] {
            return Err(StorageError::BadPre {
                pre,
                context: "resolving a node id",
            });
        }
        Ok(NodeId(self.node[pos]))
    }

    /// Physical position of a view position.
    #[inline]
    pub(crate) fn pos_of_pre(&self, pre: u64) -> Option<usize> {
        self.pages.pre_to_pos(pre).ok().map(|p| p as usize)
    }

    /// Mutable access to the value pool.
    pub fn pool_mut(&mut self) -> &mut ValuePool {
        &mut self.pool
    }

    /// Folds the attribute index's delta into a fresh shared base — the
    /// maintenance hook checkpointing uses (mutation paths never compact
    /// implicitly; that would clone the whole shared base inside a
    /// commit's critical section).
    pub fn compact_attr_index(&mut self) {
        self.attr_index.compact();
    }

    /// Folds the element-name index's delta into a fresh shared base
    /// (same maintenance discipline as [`PagedDoc::compact_attr_index`]).
    pub fn compact_name_index(&mut self) {
        let mut idx = std::mem::take(&mut self.name_index);
        idx.compact(|node| self.node_pre_opt(node));
        self.name_index = idx;
    }

    /// Folds the content index's deltas into fresh shared bases (same
    /// maintenance discipline as [`PagedDoc::compact_name_index`]).
    pub fn compact_content_index(&mut self) {
        let mut idx = std::mem::take(&mut self.content_index);
        idx.compact(|node| self.node_pre_opt(node));
        self.content_index = idx;
    }

    /// Name-index entries added/tombstoned since the last compaction
    /// (diagnostic, mirrors [`ValuePool::delta_len`]).
    pub fn name_index_delta_len(&self) -> usize {
        self.name_index.delta_len()
    }

    /// Content-index entries added/tombstoned since the last compaction
    /// (diagnostic, mirrors [`PagedDoc::name_index_delta_len`]).
    pub fn content_index_delta_len(&self) -> usize {
        self.content_index.delta_len()
    }

    /// `node id → current pre`, `None` for dead ids.
    fn node_pre_opt(&self, node: u64) -> Option<u64> {
        let pos = self.node_pos.get(node).ok().flatten()?;
        self.pages.pos_to_pre(pos).ok()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> PagedStats {
        let capacity = self.size.len() as u64;
        PagedStats {
            pages: self.pages.num_pages(),
            capacity,
            used: self.used_count,
            unused: capacity - self.used_count,
            table_bytes: self.size.len() * (8 + 2 + 1 + 1 + 4 + 4 + 8)
                + self.node_pos.len() * 9
                + self.attr_node.len() * (8 + 4 + 4)
                + self.pages.num_pages() * 8,
        }
    }

    /// Allocates a fresh immutable node id (appending a NULL `node→pos`
    /// entry that the caller must fill).
    pub(crate) fn alloc_node_id(&mut self) -> u64 {
        self.node_pos.append(None)
    }

    /// Updates the `node→pos` entry of `node` after its tuple moved.
    pub(crate) fn set_node_pos(&mut self, node: u64, pos: Option<u64>) {
        self.node_pos
            .set(node, pos)
            .expect("node id allocated before use");
    }

    /// Rebuilds the attribute columns from the live index entries,
    /// dropping rows orphaned by deletes and renumbering the survivors
    /// (per-node document order is preserved). Used by vacuum.
    pub(crate) fn rebuild_attr_table(&mut self) {
        let mut entries: Vec<(u64, Vec<u32>)> = self
            .attr_index
            .iter()
            .map(|(n, rows)| (n, rows.to_vec()))
            .collect();
        entries.sort_unstable_by_key(|(n, _)| *n);
        let mut attr_node = CowVec::new(SIDE_PAGE);
        let mut attr_qn = CowVec::new(SIDE_PAGE);
        let mut attr_prop = CowVec::new(SIDE_PAGE);
        let mut index = HashMap::with_capacity(entries.len());
        for (node, rows) in entries {
            let mut new_rows = Vec::with_capacity(rows.len());
            for r in rows {
                let nr = u32::try_from(attr_node.len()).expect("attr table overflow");
                attr_node.push(node);
                attr_qn.push(self.attr_qn[r as usize]);
                attr_prop.push(self.attr_prop[r as usize]);
                new_rows.push(nr);
            }
            index.insert(node, new_rows);
        }
        self.attr_node = attr_node;
        self.attr_qn = attr_qn;
        self.attr_prop = attr_prop;
        self.attr_index = AttrIndex::from_base(index);
    }

    /// `(shared, total)` page counts across the seven base-table columns
    /// against another version of the same document. After a
    /// copy-on-write commit, `total - shared` is exactly the number of
    /// column pages the commit privatized.
    pub fn shared_pages_with(&self, other: &PagedDoc) -> (usize, usize) {
        let shared = self.size.shared_pages_with(&other.size)
            + self.level.shared_pages_with(&other.level)
            + self.used.shared_pages_with(&other.used)
            + self.kind.shared_pages_with(&other.kind)
            + self.name.shared_pages_with(&other.name)
            + self.value.shared_pages_with(&other.value)
            + self.node.shared_pages_with(&other.node);
        let total = self.size.num_pages()
            + self.level.num_pages()
            + self.used.num_pages()
            + self.kind.num_pages()
            + self.name.num_pages()
            + self.value.num_pages()
            + self.node.num_pages();
        (shared, total)
    }

    /// A copy sharing **no** storage with `self` — what `clone` used to
    /// mean before the copy-on-write layout. The commit-cost benchmark
    /// uses it as the clone-the-world baseline; it is never on a
    /// production path.
    pub fn deep_clone(&self) -> PagedDoc {
        PagedDoc {
            cfg: self.cfg,
            shift: self.shift,
            size: self.size.deep_clone(),
            level: self.level.deep_clone(),
            used: self.used.deep_clone(),
            kind: self.kind.deep_clone(),
            name: self.name.deep_clone(),
            value: self.value.deep_clone(),
            node: self.node.deep_clone(),
            pages: self.pages.clone(),
            node_pos: self.node_pos.deep_clone(),
            attr_node: self.attr_node.deep_clone(),
            attr_qn: self.attr_qn.deep_clone(),
            attr_prop: self.attr_prop.deep_clone(),
            attr_index: self.attr_index.deep_clone(),
            name_index: self.name_index.deep_clone(),
            content_index: self.content_index.deep_clone(),
            pool: self.pool.deep_clone(),
            used_count: self.used_count,
        }
    }
}

impl TreeView for PagedDoc {
    fn pre_end(&self) -> u64 {
        self.size.len() as u64
    }

    fn level(&self, pre: u64) -> Option<u16> {
        let pos = self.pos_of_pre(pre)?;
        if self.used[pos] {
            Some(self.level[pos])
        } else {
            None
        }
    }

    fn size(&self, pre: u64) -> u64 {
        match self.pos_of_pre(pre) {
            Some(pos) => self.size[pos],
            None => 0,
        }
    }

    fn kind(&self, pre: u64) -> Option<Kind> {
        let pos = self.pos_of_pre(pre)?;
        if self.used[pos] {
            Some(self.kind[pos])
        } else {
            None
        }
    }

    fn name_id(&self, pre: u64) -> Option<QnId> {
        let pos = self.pos_of_pre(pre)?;
        if self.used[pos] && self.kind[pos] == Kind::Element {
            Some(QnId(self.name[pos]))
        } else {
            None
        }
    }

    fn value_ref(&self, pre: u64) -> Option<ValueRef> {
        let pos = self.pos_of_pre(pre)?;
        if self.used[pos] && self.kind[pos] != Kind::Element {
            Some(ValueRef(self.value[pos]))
        } else {
            None
        }
    }

    fn node_id(&self, pre: u64) -> Option<NodeId> {
        let pos = self.pos_of_pre(pre)?;
        if self.used[pos] {
            Some(NodeId(self.node[pos]))
        } else {
            None
        }
    }

    fn back_run(&self, pre: u64) -> u64 {
        match self.pos_of_pre(pre) {
            Some(pos) if !self.used[pos] => self.name[pos] as u64,
            _ => 0,
        }
    }

    fn attributes(&self, pre: u64) -> Vec<(QnId, PropId)> {
        let Some(pos) = self.pos_of_pre(pre) else {
            return Vec::new();
        };
        if !self.used[pos] {
            return Vec::new();
        }
        match self.attr_index.get(self.node[pos]) {
            Some(rows) => rows
                .iter()
                .map(|&r| (self.attr_qn[r as usize], self.attr_prop[r as usize]))
                .collect(),
            None => Vec::new(),
        }
    }

    fn pool(&self) -> &ValuePool {
        &self.pool
    }

    fn used_count(&self) -> u64 {
        self.used_count
    }

    fn elements_named(&self, qn: QnId) -> Option<Vec<u64>> {
        Some(
            self.name_index
                .nodes_by_pre(qn, |node| self.node_pre_opt(node))
                .into_iter()
                .map(|(pre, _)| pre)
                .collect(),
        )
    }

    fn elements_named_count(&self, qn: QnId) -> Option<u64> {
        Some(self.name_index.count(qn))
    }

    fn has_content_index(&self) -> bool {
        true
    }

    fn nodes_with_attr_value(&self, attr: QnId, value: &str) -> Option<Vec<u64>> {
        Some(
            self.content_index
                .attr_eq(attr, value, |node| self.node_pre_opt(node)),
        )
    }

    fn nodes_with_attr_value_range(&self, attr: QnId, range: &NumRange) -> Option<Vec<u64>> {
        Some(
            self.content_index
                .attr_range(attr, range, |node| self.node_pre_opt(node)),
        )
    }

    fn nodes_with_attr_value_count(&self, attr: QnId, value: &str) -> Option<u64> {
        Some(self.content_index.attr_eq_count(attr, value))
    }

    fn nodes_with_attr_value_range_count(&self, attr: QnId, range: &NumRange) -> Option<u64> {
        Some(self.content_index.attr_range_count(attr, range))
    }

    fn elements_with_text(&self, qn: QnId, value: &str) -> Option<TextProbe> {
        Some(
            self.content_index
                .text_eq(qn, value, |node| self.node_pre_opt(node)),
        )
    }

    fn elements_with_text_range(&self, qn: QnId, range: &NumRange) -> Option<TextProbe> {
        Some(
            self.content_index
                .text_range(qn, range, |node| self.node_pre_opt(node)),
        )
    }

    fn elements_with_text_count(&self, qn: QnId, value: &str) -> Option<u64> {
        Some(self.content_index.text_eq_count(qn, value))
    }

    fn elements_with_text_range_count(&self, qn: QnId, range: &NumRange) -> Option<u64> {
        Some(self.content_index.text_range_count(qn, range))
    }

    fn attr_degree_stats(&self, attr: QnId) -> Option<crate::values::DegreeStats> {
        Some(self.content_index.attr_degree_stats(attr))
    }

    fn text_degree_stats(&self, qn: QnId) -> Option<crate::values::DegreeStats> {
        Some(self.content_index.text_degree_stats(qn))
    }

    fn pre_chunk(&self, pre: u64, end: u64) -> Option<crate::view::PreChunk<'_>> {
        let total = self.pre_end();
        if pre >= total {
            return None;
        }
        // Physical positions are contiguous only within one logical
        // page (every page occupies exactly `page_size` column slots;
        // the PageMap permutes whole pages), so the chunk stops at the
        // page boundary and the caller loops.
        let page_end = ((pre >> self.shift) + 1) << self.shift;
        let chunk_end = end.min(total).min(page_end);
        if pre >= chunk_end {
            return None;
        }
        let pos = self.pos_of_pre(pre)?;
        let len = (chunk_end - pre) as usize;
        Some(crate::view::PreChunk {
            pre,
            used: Some(self.used.run_at(pos, pos + len)),
            kinds: self.kind.run_at(pos, pos + len),
            levels: self.level.run_at(pos, pos + len),
            names: self.name.run_at(pos, pos + len),
            sizes: self.size.run_at(pos, pos + len),
            values: self.value.run_at(pos, pos + len),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_DOC: &str =
        "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";

    /// Figure 4's layout: page size 8, shredder leaves pages partly
    /// unused. With fill 7/8 the ten nodes land as a..g on page 0 and
    /// h,i,j on page 1, exactly like the paper's figure.
    fn figure4_doc() -> PagedDoc {
        let cfg = PageConfig::new(8, 88).unwrap(); // fill_target = 7
        assert_eq!(cfg.fill_target(), 7);
        PagedDoc::parse_str(PAPER_DOC, cfg).unwrap()
    }

    #[test]
    fn figure4_initial_layout() {
        let d = figure4_doc();
        assert_eq!(d.stats().pages, 2);
        assert_eq!(d.stats().used, 10);
        assert_eq!(d.stats().unused, 6);
        // Page 0: a b c d e f g + 1 unused; page 1: h i j + 5 unused.
        let names: Vec<Option<String>> = (0..16)
            .map(|p| {
                d.name_id(p)
                    .map(|q| d.pool().qname(q).unwrap().local.clone())
            })
            .collect();
        let expect: Vec<Option<&str>> = vec![
            Some("a"),
            Some("b"),
            Some("c"),
            Some("d"),
            Some("e"),
            Some("f"),
            Some("g"),
            None,
            Some("h"),
            Some("i"),
            Some("j"),
            None,
            None,
            None,
            None,
            None,
        ];
        assert_eq!(
            names,
            expect
                .into_iter()
                .map(|o| o.map(str::to_string))
                .collect::<Vec<_>>()
        );
        // Sizes unchanged from the read-only encoding (Figure 4).
        assert_eq!(TreeView::size(&d, 0), 9); // a
        assert_eq!(TreeView::size(&d, 5), 4); // f
        assert_eq!(TreeView::size(&d, 8), 2); // h
                                              // Unused run lengths: slot 7 run of 1; slots 11..16 run of 5.
        assert_eq!(TreeView::size(&d, 7), 1);
        assert_eq!(TreeView::size(&d, 11), 5);
        assert_eq!(TreeView::size(&d, 12), 4);
        assert_eq!(TreeView::size(&d, 15), 1);
        assert_eq!(d.back_run(11), 1);
        assert_eq!(d.back_run(15), 5);
    }

    #[test]
    fn levels_and_unused_null() {
        let d = figure4_doc();
        assert_eq!(TreeView::level(&d, 0), Some(0));
        assert_eq!(TreeView::level(&d, 6), Some(2)); // g
        assert_eq!(TreeView::level(&d, 7), None); // unused
        assert_eq!(TreeView::level(&d, 8), Some(2)); // h
        assert_eq!(TreeView::level(&d, 99), None); // out of range
    }

    #[test]
    fn navigation_skips_holes() {
        let d = figure4_doc();
        // f's region spans the hole at pre 7: descendants g,h,i,j.
        assert_eq!(d.region_end(5), 11);
        // next/prev used skip runs in O(1).
        assert_eq!(d.next_used_at_or_after(7), Some(8));
        assert_eq!(d.prev_used_at_or_before(15), Some(10));
        // parent of h (pre 8) is f (pre 5), across the hole.
        assert_eq!(d.parent_of(8), Some(5));
        assert_eq!(d.parent_of(0), None);
    }

    #[test]
    fn node_pre_round_trip() {
        let d = figure4_doc();
        for pre in [0u64, 5, 6, 8, 10] {
            let node = d.pre_to_node(pre).unwrap();
            assert_eq!(d.node_to_pre(node).unwrap(), pre);
        }
        assert!(d.pre_to_node(7).is_err()); // unused slot
        assert!(d.node_to_pre(NodeId(999)).is_err());
    }

    #[test]
    fn view_equals_readonly_on_used_tuples() {
        let ro = crate::ReadOnlyDoc::parse_str(PAPER_DOC).unwrap();
        let up = figure4_doc();
        let mut pre_up = 0u64;
        for pre_ro in 0..ro.pre_end() {
            let q = up.next_used_at_or_after(pre_up).expect("same node count");
            assert_eq!(TreeView::size(&ro, pre_ro), TreeView::size(&up, q));
            assert_eq!(TreeView::level(&ro, pre_ro), TreeView::level(&up, q));
            assert_eq!(ro.kind(pre_ro), up.kind(q));
            pre_up = q + 1;
        }
    }

    #[test]
    fn attributes_via_node_ids() {
        let cfg = PageConfig::new(8, 75).unwrap();
        let d = PagedDoc::parse_str(r#"<a x="1"><b y="2" z="3"/></a>"#, cfg).unwrap();
        assert_eq!(d.attributes(0).len(), 1);
        assert_eq!(d.attributes(1).len(), 2);
        assert_eq!(
            d.attribute_value(1, &mbxq_xml::QName::local("y")),
            Some("2".to_string())
        );
    }

    #[test]
    fn string_value_spans_pages() {
        let cfg = PageConfig::new(4, 50).unwrap(); // fill 2 per page
        let d = PagedDoc::parse_str("<a>x<b>y</b>z</a>", cfg).unwrap();
        assert_eq!(d.string_value(0), "xyz");
    }

    #[test]
    fn single_page_small_doc() {
        let cfg = PageConfig::default();
        let d = PagedDoc::parse_str("<r><x/></r>", cfg).unwrap();
        assert_eq!(d.stats().pages, 1);
        assert_eq!(d.stats().used, 2);
        assert_eq!(d.root_pre(), Some(0));
    }
}
