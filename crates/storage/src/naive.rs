//! The naive updateable encoding — the strawman of §2.2.
//!
//! This keeps the dense `pre/size/level` layout of the read-only schema
//! and implements structural updates the obvious way: physically
//! splicing tuples in and out, which **shifts every following tuple**
//! and rewrites every `node→pre` entry behind the update point. The
//! paper dismisses this as "an update cost of O(N), with N the document
//! size, because on average half of the document are following nodes";
//! in MonetDB it is outright impossible because void columns may never
//! be modified. We keep it for two purposes:
//!
//! * the **baseline** of the Figure 3 ablation benchmark (naive shifting
//!   vs. logical pages, measuring touched tuples and wall time), and
//! * an **oracle** for randomized update testing: after any update
//!   sequence, the paged store must serialize to the same document.

use crate::types::{Kind, NodeId, StorageError, ValueRef};
use crate::update::InsertPosition;
use crate::values::{PropId, QnId, ValuePool};
use crate::view::TreeView;
use crate::Result;
use mbxq_xml::Node;
use std::collections::HashMap;

/// Physical-cost report of a naive structural update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveReport {
    /// Tuples inserted or deleted (the update volume).
    pub changed: u64,
    /// Pre-existing tuples physically shifted (the O(N) term).
    pub shifted: u64,
    /// Ancestors whose size changed.
    pub ancestors_updated: usize,
}

#[derive(Debug, Clone, Copy)]
struct Row {
    size: u64,
    level: u16,
    kind: Kind,
    name: u32,
    value: u32,
    node: u64,
}

/// A document in the dense encoding with shift-based updates.
#[derive(Debug, Clone, Default)]
pub struct NaiveDoc {
    rows: Vec<Row>,
    /// node id → pre (None = deleted). Every shift rewrites a suffix.
    node_pre: Vec<Option<u64>>,
    attr_node: Vec<u64>,
    attr_qn: Vec<QnId>,
    attr_prop: Vec<PropId>,
    attr_index: HashMap<u64, Vec<u32>>,
    pool: ValuePool,
}

const NO_NAME: u32 = u32::MAX;

impl NaiveDoc {
    /// Shreds XML text.
    pub fn parse_str(input: &str) -> Result<Self> {
        let doc = mbxq_xml::Document::parse(input).map_err(|e| StorageError::InvalidTarget {
            message: format!("XML parse: {e}"),
        })?;
        Self::from_tree(&doc.root)
    }

    /// Shreds an owned tree.
    pub fn from_tree(root: &Node) -> Result<Self> {
        let mut d = NaiveDoc::default();
        let mut rows = Vec::with_capacity(root.tuple_count() as usize);
        let mut attrs = Vec::new();
        d.stage(root, 0, &mut rows, &mut attrs);
        d.node_pre = (0..rows.len() as u64).map(Some).collect();
        d.rows = rows;
        for (node, qn, prop) in attrs {
            d.push_attr(node, qn, prop);
        }
        Ok(d)
    }

    fn stage(
        &mut self,
        node: &Node,
        level: u16,
        out: &mut Vec<Row>,
        attrs: &mut Vec<(u64, QnId, PropId)>,
    ) -> u64 {
        let node_id = (self.node_pre.len() + out.len()) as u64;
        match node {
            Node::Element {
                name,
                attributes,
                children,
            } => {
                let qn = self.pool.intern_qname(name);
                let idx = out.len();
                out.push(Row {
                    size: 0,
                    level,
                    kind: Kind::Element,
                    name: qn.0,
                    value: NO_NAME,
                    node: node_id,
                });
                for (an, av) in attributes {
                    let aqn = self.pool.intern_qname(an);
                    let prop = self.pool.intern_prop(av);
                    attrs.push((node_id, aqn, prop));
                }
                let mut sz = 0;
                for c in children {
                    sz += self.stage(c, level + 1, out, attrs);
                }
                out[idx].size = sz;
                sz + 1
            }
            Node::Text(t) => {
                let v = self.pool.intern_text(t);
                out.push(Row {
                    size: 0,
                    level,
                    kind: Kind::Text,
                    name: NO_NAME,
                    value: v,
                    node: node_id,
                });
                1
            }
            Node::Comment(c) => {
                let v = self.pool.intern_comment(c);
                out.push(Row {
                    size: 0,
                    level,
                    kind: Kind::Comment,
                    name: NO_NAME,
                    value: v,
                    node: node_id,
                });
                1
            }
            Node::ProcessingInstruction { target, data } => {
                let v = self.pool.intern_instruction(target, data);
                out.push(Row {
                    size: 0,
                    level,
                    kind: Kind::ProcessingInstruction,
                    name: NO_NAME,
                    value: v,
                    node: node_id,
                });
                1
            }
        }
    }

    fn push_attr(&mut self, node: u64, qn: QnId, prop: PropId) {
        let row = u32::try_from(self.attr_node.len()).expect("attr overflow");
        self.attr_node.push(node);
        self.attr_qn.push(qn);
        self.attr_prop.push(prop);
        self.attr_index.entry(node).or_default().push(row);
    }

    /// Current pre of a node id.
    pub fn node_to_pre(&self, node: NodeId) -> Result<u64> {
        self.node_pre
            .get(node.0 as usize)
            .copied()
            .flatten()
            .ok_or(StorageError::BadNode { node })
    }

    /// Node id at a pre rank.
    pub fn pre_to_node(&self, pre: u64) -> Result<NodeId> {
        self.rows
            .get(pre as usize)
            .map(|r| NodeId(r.node))
            .ok_or(StorageError::BadPre {
                pre,
                context: "resolving a node id",
            })
    }

    /// Inserts `subtree` at `position`, shifting all following tuples —
    /// the O(N) behaviour the paper's scheme avoids.
    pub fn insert(&mut self, position: InsertPosition, subtree: &Node) -> Result<NaiveReport> {
        let (at, parent, base_level) = match position {
            InsertPosition::Before(t) => {
                let pre = self.node_to_pre(t)?;
                let lvl = self.rows[pre as usize].level;
                if lvl == 0 {
                    return Err(StorageError::InvalidTarget {
                        message: "cannot insert a sibling before the document root".into(),
                    });
                }
                (pre, self.parent_of(pre), lvl)
            }
            InsertPosition::After(t) => {
                let pre = self.node_to_pre(t)?;
                let lvl = self.rows[pre as usize].level;
                if lvl == 0 {
                    return Err(StorageError::InvalidTarget {
                        message: "cannot insert a sibling after the document root".into(),
                    });
                }
                (
                    pre + self.rows[pre as usize].size + 1,
                    self.parent_of(pre),
                    lvl,
                )
            }
            InsertPosition::LastChildOf(t) => {
                let pre = self.node_to_pre(t)?;
                let row = self.rows[pre as usize];
                if row.kind != Kind::Element {
                    return Err(StorageError::InvalidTarget {
                        message: "only elements can take children".into(),
                    });
                }
                (pre + row.size + 1, Some(pre), row.level + 1)
            }
            InsertPosition::ChildAt(t, k) => {
                let pre = self.node_to_pre(t)?;
                let row = self.rows[pre as usize];
                if row.kind != Kind::Element {
                    return Err(StorageError::InvalidTarget {
                        message: "only elements can take children".into(),
                    });
                }
                let end = pre + row.size + 1;
                let mut seen = 0;
                let mut p = pre + 1;
                let mut at = end;
                while p < end {
                    if self.rows[p as usize].level == row.level + 1 {
                        if seen == k {
                            at = p;
                            break;
                        }
                        seen += 1;
                    }
                    p += self.rows[p as usize].size + 1;
                }
                (at, Some(pre), row.level + 1)
            }
        };

        let mut staged = Vec::with_capacity(subtree.tuple_count() as usize);
        let mut attrs = Vec::new();
        self.stage(subtree, base_level, &mut staged, &mut attrs);
        let n = staged.len() as u64;
        self.node_pre
            .extend(std::iter::repeat_n(None, staged.len()));
        for (node, qn, prop) in attrs {
            self.push_attr(node, qn, prop);
        }

        // The O(N) part: splice and renumber everything after `at`.
        let parent_node = parent.map(|p| self.rows[p as usize].node);
        self.rows
            .splice(at as usize..at as usize, staged.iter().copied());
        let shifted = self.rows.len() as u64 - at - n;
        for (i, row) in self.rows.iter().enumerate().skip(at as usize) {
            self.node_pre[row.node as usize] = Some(i as u64);
        }

        // Ancestor sizes.
        let mut ancestors = 0;
        if let Some(pnode) = parent_node {
            let mut p = self.node_pre[pnode as usize];
            while let Some(pre) = p {
                self.rows[pre as usize].size += n;
                ancestors += 1;
                p = self.parent_of(pre);
            }
        }
        Ok(NaiveReport {
            changed: n,
            shifted,
            ancestors_updated: ancestors,
        })
    }

    /// Deletes the subtree rooted at `target`, shifting all following
    /// tuples back.
    pub fn delete(&mut self, target: NodeId) -> Result<NaiveReport> {
        let pre = self.node_to_pre(target)?;
        let row = self.rows[pre as usize];
        if row.level == 0 {
            return Err(StorageError::InvalidTarget {
                message: "cannot remove the document root".into(),
            });
        }
        let parent_node = self
            .parent_of(pre)
            .map(|p| self.rows[p as usize].node)
            .expect("non-root has a parent");
        let m = row.size + 1;
        for r in &self.rows[pre as usize..(pre + m) as usize] {
            self.node_pre[r.node as usize] = None;
            self.attr_index.remove(&r.node);
        }
        self.rows.drain(pre as usize..(pre + m) as usize);
        let shifted = self.rows.len() as u64 - pre;
        for (i, r) in self.rows.iter().enumerate().skip(pre as usize) {
            self.node_pre[r.node as usize] = Some(i as u64);
        }
        let mut ancestors = 0;
        let mut p = self.node_pre[parent_node as usize];
        while let Some(a) = p {
            self.rows[a as usize].size -= m;
            ancestors += 1;
            p = self.parent_of(a);
        }
        Ok(NaiveReport {
            changed: m,
            shifted,
            ancestors_updated: ancestors,
        })
    }

    /// Replaces the content of a text/comment/instruction node (mirror of
    /// [`crate::PagedDoc::update_value`], for oracle parity).
    pub fn update_value(&mut self, target: NodeId, new_value: &str) -> Result<()> {
        let pre = self.node_to_pre(target)? as usize;
        let v = match self.rows[pre].kind {
            Kind::Text => self.pool.intern_text(new_value),
            Kind::Comment => self.pool.intern_comment(new_value),
            Kind::ProcessingInstruction => {
                let (t, _) = self
                    .pool
                    .instruction(self.rows[pre].value)
                    .map(|(t, d)| (t.to_string(), d.to_string()))
                    .unwrap_or_default();
                self.pool.intern_instruction(&t, new_value)
            }
            Kind::Element => {
                return Err(StorageError::InvalidTarget {
                    message: "update_value targets a non-element node".into(),
                })
            }
        };
        self.rows[pre].value = v;
        Ok(())
    }

    /// Renames an element (oracle mirror).
    pub fn rename(&mut self, target: NodeId, name: &mbxq_xml::QName) -> Result<()> {
        let pre = self.node_to_pre(target)? as usize;
        if self.rows[pre].kind != Kind::Element {
            return Err(StorageError::InvalidTarget {
                message: "rename targets an element".into(),
            });
        }
        let qn = self.pool.intern_qname(name);
        self.rows[pre].name = qn.0;
        Ok(())
    }

    /// Sets (adds or replaces) an attribute (oracle mirror).
    pub fn set_attribute(
        &mut self,
        target: NodeId,
        name: &mbxq_xml::QName,
        value: &str,
    ) -> Result<()> {
        let pre = self.node_to_pre(target)? as usize;
        if self.rows[pre].kind != Kind::Element {
            return Err(StorageError::InvalidTarget {
                message: "attributes can only be set on elements".into(),
            });
        }
        let qn = self.pool.intern_qname(name);
        let prop = self.pool.intern_prop(value);
        let node = self.rows[pre].node;
        if let Some(rows) = self.attr_index.get(&node) {
            for &r in rows {
                if self.attr_qn[r as usize] == qn {
                    self.attr_prop[r as usize] = prop;
                    return Ok(());
                }
            }
        }
        self.push_attr(node, qn, prop);
        Ok(())
    }

    /// Removes an attribute (oracle mirror). Returns whether one existed.
    pub fn remove_attribute(&mut self, target: NodeId, name: &mbxq_xml::QName) -> Result<bool> {
        let pre = self.node_to_pre(target)? as usize;
        let node = self.rows[pre].node;
        let Some(qn) = self.pool.lookup_qname(name) else {
            return Ok(false);
        };
        if let Some(rows) = self.attr_index.get_mut(&node) {
            if let Some(i) = rows.iter().position(|&r| self.attr_qn[r as usize] == qn) {
                rows.remove(i);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl TreeView for NaiveDoc {
    fn pre_end(&self) -> u64 {
        self.rows.len() as u64
    }

    fn level(&self, pre: u64) -> Option<u16> {
        self.rows.get(pre as usize).map(|r| r.level)
    }

    fn size(&self, pre: u64) -> u64 {
        self.rows.get(pre as usize).map_or(0, |r| r.size)
    }

    fn kind(&self, pre: u64) -> Option<Kind> {
        self.rows.get(pre as usize).map(|r| r.kind)
    }

    fn name_id(&self, pre: u64) -> Option<QnId> {
        let r = self.rows.get(pre as usize)?;
        if r.kind == Kind::Element {
            Some(QnId(r.name))
        } else {
            None
        }
    }

    fn value_ref(&self, pre: u64) -> Option<ValueRef> {
        let r = self.rows.get(pre as usize)?;
        if r.kind != Kind::Element {
            Some(ValueRef(r.value))
        } else {
            None
        }
    }

    fn node_id(&self, pre: u64) -> Option<NodeId> {
        self.rows.get(pre as usize).map(|r| NodeId(r.node))
    }

    fn back_run(&self, _pre: u64) -> u64 {
        0
    }

    fn attributes(&self, pre: u64) -> Vec<(QnId, PropId)> {
        let Some(r) = self.rows.get(pre as usize) else {
            return Vec::new();
        };
        match self.attr_index.get(&r.node) {
            Some(rows) => rows
                .iter()
                .map(|&i| (self.attr_qn[i as usize], self.attr_prop[i as usize]))
                .collect(),
            None => Vec::new(),
        }
    }

    fn pool(&self) -> &ValuePool {
        &self.pool
    }

    fn used_count(&self) -> u64 {
        self.rows.len() as u64
    }

    fn next_used_at_or_after(&self, pre: u64) -> Option<u64> {
        if pre < self.pre_end() {
            Some(pre)
        } else {
            None
        }
    }

    fn prev_used_at_or_before(&self, pre: u64) -> Option<u64> {
        if self.rows.is_empty() {
            None
        } else {
            Some(pre.min(self.pre_end() - 1))
        }
    }

    fn region_end(&self, pre: u64) -> u64 {
        pre + self.size(pre) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_xml::Document;

    const PAPER_DOC: &str =
        "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";

    fn names(d: &NaiveDoc) -> Vec<String> {
        (0..d.pre_end())
            .filter_map(|p| d.name_id(p))
            .map(|q| d.pool().qname(q).unwrap().local.clone())
            .collect()
    }

    #[test]
    fn insert_shifts_following_tuples() {
        let mut d = NaiveDoc::parse_str(PAPER_DOC).unwrap();
        let g = d.pre_to_node(6).unwrap();
        let sub = Document::parse_fragment("<k><l/><m/></k>").unwrap();
        let report = d.insert(InsertPosition::LastChildOf(g), &sub).unwrap();
        assert_eq!(report.changed, 3);
        assert_eq!(report.shifted, 3); // h, i, j shift — O(following)
        assert_eq!(report.ancestors_updated, 3);
        assert_eq!(
            names(&d),
            ["a", "b", "c", "d", "e", "f", "g", "k", "l", "m", "h", "i", "j"]
        );
        // Figure 3's right side: a=12, f=7, k at pre 7 with size 2.
        assert_eq!(TreeView::size(&d, 0), 12);
        assert_eq!(TreeView::size(&d, 5), 7);
        assert_eq!(TreeView::size(&d, 7), 2);
        assert_eq!(TreeView::level(&d, 7), Some(3));
    }

    #[test]
    fn delete_shifts_back() {
        let mut d = NaiveDoc::parse_str(PAPER_DOC).unwrap();
        let c = d.pre_to_node(2).unwrap();
        let report = d.delete(c).unwrap();
        assert_eq!(report.changed, 3); // c, d, e
        assert_eq!(report.shifted, 5); // f, g, h, i, j
        assert_eq!(names(&d), ["a", "b", "f", "g", "h", "i", "j"]);
        assert_eq!(TreeView::size(&d, 0), 6);
        assert_eq!(TreeView::size(&d, 1), 0); // b lost its subtree
    }

    #[test]
    fn node_ids_stay_valid_across_shifts() {
        let mut d = NaiveDoc::parse_str(PAPER_DOC).unwrap();
        let j = d.pre_to_node(9).unwrap();
        let b = d.pre_to_node(1).unwrap();
        let sub = Document::parse_fragment("<x/>").unwrap();
        d.insert(InsertPosition::After(b), &sub).unwrap();
        // j shifted from 9 to 10 but its node id still resolves.
        assert_eq!(d.node_to_pre(j).unwrap(), 10);
    }

    #[test]
    fn deleted_nodes_resolve_to_errors() {
        let mut d = NaiveDoc::parse_str(PAPER_DOC).unwrap();
        let h = d.pre_to_node(7).unwrap();
        let i = d.pre_to_node(8).unwrap();
        d.delete(h).unwrap();
        assert!(d.node_to_pre(h).is_err());
        assert!(d.node_to_pre(i).is_err());
    }
}
