//! Deep consistency checking for the paged store.
//!
//! The commit pipeline of Figure 8 runs "XML document validation" before
//! taking the global write lock; this module is the structural half of
//! that validation (schema/type checks per \[GK04\] are out of the paper's
//! scope). It verifies every representation invariant the update
//! algorithms must preserve; property tests run it after every random
//! update sequence.

use crate::paged::{PagedDoc, NO_NODE};
use crate::types::StorageError;
use crate::view::TreeView;
use crate::Result;

/// Checks all representation invariants of a [`PagedDoc`].
///
/// * the `pageOffset` permutation is consistent in both directions;
/// * unused runs are encoded exactly (forward lengths and backward
///   indexes), never crossing page boundaries;
/// * `used_count` matches the bitmap;
/// * `node→pos` and the `node` column are inverse on live nodes, and no
///   two slots share a node id;
/// * the used tuples in view order form a well-shaped tree: the first has
///   level 0, levels step by at most +1, and every `size` equals the
///   number of used tuples in the node's region;
/// * every attribute-index entry points at rows owned by a live node.
pub fn check_paged(doc: &PagedDoc) -> Result<()> {
    fn corrupt(message: String) -> StorageError {
        StorageError::Corrupt { message }
    }

    if !doc.pages.check_consistency() {
        return Err(corrupt("pageOffset permutation inconsistent".into()));
    }
    let page_size = doc.cfg.page_size;
    let slots = doc.size.len();
    if slots != doc.pages.num_pages() * page_size {
        return Err(corrupt(format!(
            "column length {slots} does not cover {} pages of {page_size}",
            doc.pages.num_pages()
        )));
    }

    // Run encodings, page by page (physical order is fine here).
    let mut used_count = 0u64;
    for page in 0..doc.pages.num_pages() {
        let base = page * page_size;
        let mut i = base;
        while i < base + page_size {
            if doc.used[i] {
                used_count += 1;
                i += 1;
                continue;
            }
            let run_start = i;
            while i < base + page_size && !doc.used[i] {
                i += 1;
            }
            for (k, pos) in (run_start..i).enumerate() {
                if doc.size[pos] != (i - pos) as u64 {
                    return Err(corrupt(format!(
                        "unused slot {pos}: forward run {} (expected {})",
                        doc.size[pos],
                        i - pos
                    )));
                }
                if doc.name[pos] != (k + 1) as u32 {
                    return Err(corrupt(format!(
                        "unused slot {pos}: backward index {} (expected {})",
                        doc.name[pos],
                        k + 1
                    )));
                }
                if doc.node[pos] != NO_NODE {
                    return Err(corrupt(format!(
                        "unused slot {pos} still carries a node id"
                    )));
                }
            }
        }
    }
    if used_count != doc.used_count {
        return Err(corrupt(format!(
            "used_count {} but bitmap has {used_count}",
            doc.used_count
        )));
    }

    // node→pos bijectivity on live nodes.
    let mut seen = std::collections::HashMap::new();
    for pos in 0..slots {
        if doc.used[pos] {
            let node = doc.node[pos];
            if let Some(prev) = seen.insert(node, pos) {
                return Err(corrupt(format!(
                    "node id {node} appears at positions {prev} and {pos}"
                )));
            }
            match doc.node_pos.get(node) {
                Ok(Some(p)) if p == pos as u64 => {}
                other => {
                    return Err(corrupt(format!(
                        "node→pos for node {node} is {other:?}, tuple sits at {pos}"
                    )))
                }
            }
        }
    }
    for (node, entry) in doc.node_pos.iter() {
        if let Some(pos) = entry {
            let pos = pos as usize;
            if pos >= slots || !doc.used[pos] || doc.node[pos] != node {
                return Err(corrupt(format!(
                    "node→pos entry for node {node} points at bad slot {pos}"
                )));
            }
        }
    }

    // Tree shape over the view, via an explicit ancestor stack.
    // stack entries: (level, remaining_size).
    let mut stack: Vec<(u16, u64)> = Vec::new();
    let mut p = 0u64;
    let mut first = true;
    while let Some(q) = doc.next_used_at_or_after(p) {
        let lvl = doc.level(q).expect("used tuple");
        let sz = TreeView::size(doc, q);
        if first {
            if lvl != 0 {
                return Err(corrupt(format!("first used tuple has level {lvl}, not 0")));
            }
            first = false;
        } else {
            // Pop completed subtrees.
            while let Some(&(top_lvl, rem)) = stack.last() {
                if lvl > top_lvl {
                    break;
                }
                if rem != 0 {
                    return Err(corrupt(format!(
                        "node at level {top_lvl} closed with {rem} descendants missing \
                         before pre {q}"
                    )));
                }
                stack.pop();
            }
            match stack.last() {
                Some(&(top_lvl, _)) if lvl == top_lvl + 1 => {}
                Some(&(top_lvl, _)) => {
                    return Err(corrupt(format!(
                        "level jump from {top_lvl} to {lvl} at pre {q}"
                    )))
                }
                None => return Err(corrupt(format!("second root at pre {q} (level {lvl})"))),
            }
            // This tuple consumes one descendant slot in every open
            // ancestor.
            for (_, rem) in stack.iter_mut() {
                if *rem == 0 {
                    return Err(corrupt(format!("ancestor size exhausted before pre {q}")));
                }
                *rem -= 1;
            }
        }
        stack.push((lvl, sz));
        p = q + 1;
    }
    while let Some((lvl, rem)) = stack.pop() {
        if rem != 0 {
            return Err(corrupt(format!(
                "node at level {lvl} ends the document with {rem} descendants missing"
            )));
        }
    }

    // Element-name index ≡ a scan: for every interned element name the
    // probe must return exactly the named used elements, in document
    // order.
    {
        let mut scan: std::collections::HashMap<crate::values::QnId, Vec<u64>> =
            std::collections::HashMap::new();
        let mut p = 0u64;
        while let Some(q) = doc.next_used_at_or_after(p) {
            if let Some(qn) = doc.name_id(q) {
                scan.entry(qn).or_default().push(q);
            }
            p = q + 1;
        }
        for qn in (0..doc.pool().qname_count() as u32).map(crate::values::QnId) {
            let want = scan.remove(&qn).unwrap_or_default();
            let got = doc
                .elements_named(qn)
                .expect("paged docs maintain an index");
            if got != want {
                return Err(corrupt(format!(
                    "name index for qn {} diverged: {} indexed vs {} scanned",
                    qn.0,
                    got.len(),
                    want.len()
                )));
            }
            if doc.elements_named_count(qn) != Some(want.len() as u64) {
                return Err(corrupt(format!(
                    "name index count for qn {} diverged",
                    qn.0
                )));
            }
        }
    }

    // Content index ≡ a scan: recompute every element's content state
    // and attribute rows from the tree, then require that each probe
    // (attribute exact, text exact, full numeric range) returns exactly
    // the scanned nodes, in document order, and that the count
    // estimators never under-estimate.
    {
        use crate::values::{xpath_number, NumRange, QnId};
        use std::collections::HashMap;
        let mut attr_scan: HashMap<(QnId, String), Vec<u64>> = HashMap::new();
        let mut text_scan: HashMap<(QnId, String), Vec<u64>> = HashMap::new();
        let mut complex_scan: HashMap<QnId, Vec<u64>> = HashMap::new();
        let mut names: Vec<QnId> = Vec::new();
        let mut p = 0u64;
        while let Some(q) = doc.next_used_at_or_after(p) {
            if doc.kind(q) == Some(crate::types::Kind::Element) {
                let qn = doc.name_id(q).expect("element has a name");
                names.push(qn);
                match doc.content_state(q) {
                    Some((_, Some(key))) => text_scan.entry((qn, key)).or_default().push(q),
                    Some((_, None)) => complex_scan.entry(qn).or_default().push(q),
                    None => unreachable!("element slots have content states"),
                }
                for (aqn, prop) in doc.attributes(q) {
                    let value = doc.pool().prop(prop).unwrap_or_default().to_string();
                    attr_scan.entry((aqn, value)).or_default().push(q);
                }
            }
            p = q + 1;
        }
        names.sort_unstable();
        names.dedup();
        for ((aqn, value), want) in &attr_scan {
            let got = doc
                .nodes_with_attr_value(*aqn, value)
                .expect("paged docs maintain a content index");
            if &got != want {
                return Err(corrupt(format!(
                    "content index @{}={value:?}: {} indexed vs {} scanned",
                    aqn.0,
                    got.len(),
                    want.len()
                )));
            }
            if doc.nodes_with_attr_value_count(*aqn, value) < Some(want.len() as u64) {
                return Err(corrupt(format!(
                    "content index count for @{}={value:?} under-estimates",
                    aqn.0
                )));
            }
        }
        let all = NumRange {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            lo_incl: true,
            hi_incl: true,
        };
        // Attribute numeric arm: the full range must return exactly the
        // elements whose attribute value parses as an XPath number.
        {
            let mut attr_names: Vec<QnId> = attr_scan.keys().map(|&(qn, _)| qn).collect();
            attr_names.sort_unstable();
            attr_names.dedup();
            for aqn in attr_names {
                let want_numeric: Vec<u64> = {
                    let mut v: Vec<u64> = attr_scan
                        .iter()
                        .filter(|((qn, value), _)| *qn == aqn && !xpath_number(value).is_nan())
                        .flat_map(|(_, pres)| pres.iter().copied())
                        .collect();
                    v.sort_unstable();
                    v
                };
                let got = doc
                    .nodes_with_attr_value_range(aqn, &all)
                    .expect("paged docs maintain a content index");
                if got != want_numeric {
                    return Err(corrupt(format!(
                        "content index attr numeric arm for qn {} diverged: {} vs {} scanned",
                        aqn.0,
                        got.len(),
                        want_numeric.len()
                    )));
                }
                if doc.nodes_with_attr_value_range_count(aqn, &all)
                    < Some(want_numeric.len() as u64)
                {
                    return Err(corrupt(format!(
                        "content index attr range count for qn {} under-estimates",
                        aqn.0
                    )));
                }
            }
        }
        for ((qn, key), want) in &text_scan {
            let probe = doc
                .elements_with_text(*qn, key)
                .expect("paged docs maintain a content index");
            if &probe.exact != want {
                return Err(corrupt(format!(
                    "content index text {}={key:?}: {} indexed vs {} scanned",
                    qn.0,
                    probe.exact.len(),
                    want.len()
                )));
            }
            if doc.elements_with_text_count(*qn, key) < Some(want.len() as u64) {
                return Err(corrupt(format!(
                    "content index text count for {}={key:?} under-estimates",
                    qn.0
                )));
            }
        }
        for qn in names {
            let complex = complex_scan.remove(&qn).unwrap_or_default();
            let probe = doc
                .elements_with_text(qn, "\u{1}never-a-value")
                .expect("paged docs maintain a content index");
            if !probe.exact.is_empty() {
                return Err(corrupt(format!(
                    "content index text probe for qn {} matched a value no element has",
                    qn.0
                )));
            }
            if probe.unindexed != complex {
                return Err(corrupt(format!(
                    "content index complex list for qn {} diverged: {} vs {} scanned",
                    qn.0,
                    probe.unindexed.len(),
                    complex.len()
                )));
            }
            // The full numeric range must return exactly the simple
            // elements whose keys parse as XPath numbers.
            let want_numeric: Vec<u64> = {
                let mut v: Vec<u64> = text_scan
                    .iter()
                    .filter(|((k, key), _)| *k == qn && !xpath_number(key).is_nan())
                    .flat_map(|(_, pres)| pres.iter().copied())
                    .collect();
                v.sort_unstable();
                v
            };
            let got = doc
                .elements_with_text_range(qn, &all)
                .expect("paged docs maintain a content index");
            if got.exact != want_numeric {
                return Err(corrupt(format!(
                    "content index numeric arm for qn {} diverged: {} vs {} scanned",
                    qn.0,
                    got.exact.len(),
                    want_numeric.len()
                )));
            }
        }
        // Degree statistics never under-estimate a full scan: for every
        // key space the maintained (distinct, total, max) figures must
        // bound the exact values recomputed from the tree — the
        // contract the pessimistic cardinality estimator relies on
        // staying true under COW index deltas.
        {
            let scan_degrees = |scan: &HashMap<(QnId, String), Vec<u64>>| {
                let mut per_qn: HashMap<QnId, (u64, u64, u64)> = HashMap::new();
                for ((qn, _), pres) in scan {
                    let e = per_qn.entry(*qn).or_default();
                    e.0 += 1;
                    e.1 += pres.len() as u64;
                    e.2 = e.2.max(pres.len() as u64);
                }
                per_qn
            };
            for (aqn, (distinct, total, max)) in scan_degrees(&attr_scan) {
                let got = doc
                    .attr_degree_stats(aqn)
                    .expect("paged docs maintain a content index");
                if got.distinct_keys < distinct
                    || got.total_postings < total
                    || got.max_postings < max
                {
                    return Err(corrupt(format!(
                        "attr degree stats for qn {} under-estimate: \
                         {got:?} vs scanned ({distinct}, {total}, {max})",
                        aqn.0
                    )));
                }
            }
            for (tqn, (distinct, total, max)) in scan_degrees(&text_scan) {
                let got = doc
                    .text_degree_stats(tqn)
                    .expect("paged docs maintain a content index");
                if got.distinct_keys < distinct
                    || got.total_postings < total
                    || got.max_postings < max
                {
                    return Err(corrupt(format!(
                        "text degree stats for qn {} under-estimate: \
                         {got:?} vs scanned ({distinct}, {total}, {max})",
                        tqn.0
                    )));
                }
            }
        }
    }

    // Attribute index points at live nodes and matching rows.
    for (node, rows) in doc.attr_index.iter() {
        match doc.node_pos.get(node) {
            Ok(Some(_)) => {}
            _ => {
                return Err(corrupt(format!(
                    "attribute index entry for dead node {node}"
                )))
            }
        }
        for &r in rows {
            if r as usize >= doc.attr_node.len() || doc.attr_node[r as usize] != node {
                return Err(corrupt(format!(
                    "attribute row {r} does not belong to node {node}"
                )));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageConfig;
    use crate::update::InsertPosition;
    use crate::PagedDoc;
    use mbxq_xml::Document;

    const PAPER_DOC: &str =
        "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";

    #[test]
    fn fresh_doc_passes() {
        let d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        check_paged(&d).unwrap();
    }

    #[test]
    fn passes_after_update_sequence() {
        let mut d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        let g = d.pre_to_node(6).unwrap();
        let sub = Document::parse_fragment("<k><l/><m/></k>").unwrap();
        d.insert(InsertPosition::LastChildOf(g), &sub).unwrap();
        check_paged(&d).unwrap();
        let b = d.pre_to_node(1).unwrap();
        d.delete(b).unwrap();
        check_paged(&d).unwrap();
    }

    #[test]
    fn detects_corrupted_size() {
        let mut d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        d.size[0] = 3; // root claims 3 descendants instead of 9
        assert!(check_paged(&d).is_err());
    }

    #[test]
    fn detects_corrupted_node_map() {
        let mut d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        d.set_node_pos(0, Some(5));
        assert!(check_paged(&d).is_err());
    }

    #[test]
    fn detects_corrupted_run() {
        let mut d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        d.size[7] = 99; // slot 7 is the unused tail of page 0
        assert!(check_paged(&d).is_err());
    }
}
