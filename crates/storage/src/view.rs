//! The uniform pre-plane interface both storage schemas expose.
//!
//! The paper's central engineering trick is that the query processor
//! (staircase join) runs **unmodified** on the updateable schema because
//! the memory-mapped view re-creates a `pre/size/level` table (§4). We
//! capture that contract in a trait: `mbxq-axes` is written once against
//! [`TreeView`], and both [`crate::ReadOnlyDoc`] and [`crate::PagedDoc`]
//! (whose view interposes the `pageOffset` indirection) implement it.
//!
//! # Semantics
//!
//! The pre plane is a sequence of *slots* `0..pre_end()`. A slot is either
//! **used** (holds a document node) or **unused** (free space inside a
//! logical page; only the paged schema has these). For unused slots,
//! `level` is `None` and `size` holds the number of remaining consecutive
//! unused slots *including the slot itself*, so `pre + size(pre)` lands on
//! the first slot after the run — an O(1) skip, as required for staircase
//! join "to skip over unused tuples quickly" (§3).

use crate::types::{Kind, NodeId, ValueRef};
use crate::values::{DegreeStats, NumRange, PropId, QnId, TextProbe, ValuePool};

/// A contiguous run of pre slots exposed as raw column slices — the
/// batch-kernel view of the pre plane.
///
/// Schemas that store their columns in contiguous (page) memory hand
/// these out through [`TreeView::pre_chunk`], so hot kernels (staircase
/// range scans, value comparisons, string-value assembly) run tight
/// slice loops instead of one virtual call + page swizzle per slot.
/// All slices have the same length; index `i` describes pre rank
/// `pre + i`. A slot is *live* iff [`PreChunk::live`] — the `names` and
/// `values` columns hold unrelated bookkeeping for dead slots (the
/// paged schema stores backward run lengths in `names`), so kernels
/// must gate on liveness (and on `kinds`) before trusting them.
#[derive(Debug, Clone, Copy)]
pub struct PreChunk<'a> {
    /// Pre rank of the first slot in the chunk.
    pub pre: u64,
    /// Per-slot liveness; `None` means every slot is used (dense schema).
    pub used: Option<&'a [bool]>,
    /// Node kinds (unspecified for unused slots).
    pub kinds: &'a [Kind],
    /// Tree depths (unspecified for unused slots).
    pub levels: &'a [u16],
    /// `qn` ids for elements; `u32::MAX` for non-element used slots.
    /// Unused slots hold the backward run index — check liveness first.
    pub names: &'a [u32],
    /// Subtree sizes (used) or remaining run lengths (unused).
    pub sizes: &'a [u64],
    /// Value-table references for non-elements; `u32::MAX` for elements.
    pub values: &'a [u32],
}

impl PreChunk<'_> {
    /// Number of slots in the chunk (never zero).
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the chunk holds no slots (never true for chunks returned
    /// by [`TreeView::pre_chunk`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether slot `i` holds a document node.
    #[inline]
    pub fn live(&self, i: usize) -> bool {
        match self.used {
            Some(u) => u[i],
            None => true,
        }
    }

    /// The `kinds` column as raw bytes — the layout guarantee the SIMD
    /// chunk kernels build on. [`Kind`] is `#[repr(u8)]`, so the column
    /// can be compared 16 lanes at a time with byte-wide vector
    /// instructions. No *alignment* is guaranteed beyond the element
    /// size (chunks start at arbitrary slice offsets inside a page), so
    /// kernels must use unaligned loads; what **is** guaranteed is that
    /// a chunk never spans a page boundary — every column slice is
    /// contiguous memory of one page.
    #[inline]
    pub fn kinds_bytes(&self) -> &[u8] {
        const _: () = assert!(std::mem::size_of::<Kind>() == 1);
        // SAFETY: Kind is #[repr(u8)] with size and alignment 1, so a
        // &[Kind] reinterprets losslessly as &[u8] of the same length.
        unsafe { std::slice::from_raw_parts(self.kinds.as_ptr() as *const u8, self.kinds.len()) }
    }

    /// The liveness column as raw bytes (`1` = live, `0` = unused), or
    /// `None` for dense schemas. `bool` is guaranteed to be one byte
    /// holding exactly `0x00`/`0x01`, so the mask combines directly
    /// with byte-compare results in the vector kernels.
    #[inline]
    pub fn used_bytes(&self) -> Option<&[u8]> {
        self.used.map(|u| {
            // SAFETY: bool is one byte with the values 0 and 1.
            unsafe { std::slice::from_raw_parts(u.as_ptr() as *const u8, u.len()) }
        })
    }
}

/// Read access to a document in pre/size/level form.
///
/// `Sync` is a supertrait: views are immutable snapshots by
/// construction (updates go through transactions that publish fresh
/// versions), and the morsel-parallel executor shares one view across
/// its worker threads.
pub trait TreeView: Sync {
    /// One past the last pre slot (total slots, used + unused).
    fn pre_end(&self) -> u64;

    /// Tree depth of the node at `pre`; `None` when the slot is unused or
    /// out of range (`level = NULL` marks unused tuples, §3).
    fn level(&self, pre: u64) -> Option<u16>;

    /// For used slots: the number of **used** descendant tuples.
    /// For unused slots: the remaining run length including this slot.
    /// Out of range: 0.
    fn size(&self, pre: u64) -> u64;

    /// Node kind at `pre` (`None` for unused slots).
    fn kind(&self, pre: u64) -> Option<Kind>;

    /// `qn` id of the element at `pre` (`None` for non-elements/unused).
    fn name_id(&self, pre: u64) -> Option<QnId>;

    /// Value-table reference of the node at `pre` (`None` for elements
    /// and unused slots).
    fn value_ref(&self, pre: u64) -> Option<ValueRef>;

    /// Immutable node id of the node at `pre` (`None` for unused slots;
    /// the read-only schema reports `NodeId(pre)` since at shredding time
    /// node numbers equal pre/pos numbers, §3.1).
    fn node_id(&self, pre: u64) -> Option<NodeId>;

    /// For an unused slot: its 1-based index inside its run (1 = first
    /// slot of the run), enabling O(1) *backward* skipping. 0 for used
    /// slots. (Implementation refinement over the paper — see crate docs.)
    fn back_run(&self, pre: u64) -> u64;

    /// Attributes `(name, value)` of the element at `pre`, in document
    /// order. Empty for non-elements.
    fn attributes(&self, pre: u64) -> Vec<(QnId, PropId)>;

    /// The shared interned side tables.
    fn pool(&self) -> &ValuePool;

    /// All element nodes named `qn`, as ascending pre ranks — the
    /// element-name-index probe behind cost-based axis selection.
    /// `None` when the schema maintains no such index (callers fall
    /// back to a staircase scan); the default is index-less.
    fn elements_named(&self, qn: QnId) -> Option<Vec<u64>> {
        let _ = qn;
        None
    }

    /// Number of elements named `qn` (the index statistic the cost
    /// model keys on); `None` without an index.
    fn elements_named_count(&self, qn: QnId) -> Option<u64> {
        let _ = qn;
        None
    }

    // ------------------------------------------------------------------
    // Content-index probes (see `crate::values`, "The content index").
    // `None` = the schema maintains no content index (callers fall back
    // to a scalar scan); the defaults are index-less.
    // ------------------------------------------------------------------

    /// Whether this view maintains a content index at all (gates the
    /// probes below without needing an interned name to ask with).
    fn has_content_index(&self) -> bool {
        false
    }

    /// Elements carrying `@attr = value`, as ascending pre ranks.
    fn nodes_with_attr_value(&self, attr: QnId, value: &str) -> Option<Vec<u64>> {
        let _ = (attr, value);
        None
    }

    /// Elements whose `@attr` parses into `range`, as ascending pre
    /// ranks.
    fn nodes_with_attr_value_range(&self, attr: QnId, range: &NumRange) -> Option<Vec<u64>> {
        let _ = (attr, range);
        None
    }

    /// Upper-bound cardinality of [`TreeView::nodes_with_attr_value`]
    /// (the cost-model statistic).
    fn nodes_with_attr_value_count(&self, attr: QnId, value: &str) -> Option<u64> {
        let _ = (attr, value);
        None
    }

    /// Upper-bound cardinality of
    /// [`TreeView::nodes_with_attr_value_range`].
    fn nodes_with_attr_value_range_count(&self, attr: QnId, range: &NumRange) -> Option<u64> {
        let _ = (attr, range);
        None
    }

    /// Elements named `qn` whose string value equals `value`: an exact
    /// arm plus the unverified complex-content remainder.
    fn elements_with_text(&self, qn: QnId, value: &str) -> Option<TextProbe> {
        let _ = (qn, value);
        None
    }

    /// Elements named `qn` whose string value parses into `range`.
    fn elements_with_text_range(&self, qn: QnId, range: &NumRange) -> Option<TextProbe> {
        let _ = (qn, range);
        None
    }

    /// Upper-bound cardinality of [`TreeView::elements_with_text`]
    /// (complex candidates included — each costs a verification).
    fn elements_with_text_count(&self, qn: QnId, value: &str) -> Option<u64> {
        let _ = (qn, value);
        None
    }

    /// Upper-bound cardinality of
    /// [`TreeView::elements_with_text_range`].
    fn elements_with_text_range_count(&self, qn: QnId, range: &NumRange) -> Option<u64> {
        let _ = (qn, range);
        None
    }

    /// Degree statistics of the attribute-value key space for `@attr`
    /// (distinct values, total and max postings — all upper bounds
    /// under index deltas); `None` without a content index.
    fn attr_degree_stats(&self, attr: QnId) -> Option<DegreeStats> {
        let _ = attr;
        None
    }

    /// Degree statistics of the element-text key space for name `qn`
    /// (complex-content candidates included); `None` without a content
    /// index.
    fn text_degree_stats(&self, qn: QnId) -> Option<DegreeStats> {
        let _ = qn;
        None
    }

    /// The longest contiguous column run starting at pre rank `pre` and
    /// ending at or before `end`, as raw slices ([`PreChunk`]) — the
    /// accessor behind the batch kernels. `None` when the slot is out of
    /// range or the schema cannot expose contiguous columns (callers
    /// fall back to per-slot accessors); the default is chunk-less.
    ///
    /// Implementations may return *any* non-empty prefix of the
    /// requested range (the paged schema stops at logical page
    /// boundaries, where physical contiguity ends); callers loop,
    /// advancing by [`PreChunk::len`].
    fn pre_chunk(&self, pre: u64, end: u64) -> Option<PreChunk<'_>> {
        let _ = (pre, end);
        None
    }

    // ------------------------------------------------------------------
    // Derived navigation helpers (identical for both schemas).
    // ------------------------------------------------------------------

    /// Whether the slot holds a document node.
    #[inline]
    fn is_used(&self, pre: u64) -> bool {
        self.level(pre).is_some()
    }

    /// Number of used tuples (document nodes).
    fn used_count(&self) -> u64;

    /// First used slot at or after `pre`, skipping unused runs in O(1)
    /// per run.
    fn next_used_at_or_after(&self, pre: u64) -> Option<u64> {
        let end = self.pre_end();
        let mut p = pre;
        while p < end {
            if self.is_used(p) {
                return Some(p);
            }
            let run = self.size(p).max(1);
            p += run;
        }
        None
    }

    /// Last used slot at or before `pre`, skipping unused runs in O(1)
    /// per run (via [`TreeView::back_run`]).
    fn prev_used_at_or_before(&self, pre: u64) -> Option<u64> {
        let mut p = pre.min(self.pre_end().checked_sub(1)?);
        loop {
            if self.is_used(p) {
                return Some(p);
            }
            let back = self.back_run(p).max(1);
            p = p.checked_sub(back)?;
        }
    }

    /// Pre rank of the document root (first used slot).
    fn root_pre(&self) -> Option<u64> {
        self.next_used_at_or_after(0)
    }

    /// First slot after the last used descendant of the used node at
    /// `pre` (the end of its subtree *region* in the view).
    ///
    /// Uses the classic staircase-join skip `q + size(q) + 1` from each
    /// visited descendant. With interior holes that jump can land *short*
    /// (still inside the subtree — `size` counts used tuples only, holes
    /// stretch the span), never *past* a non-descendant, so a level check
    /// on the next used slot keeps the walk correct: on hole-free regions
    /// this is O(right-spine), and each hole run costs one extra O(1)
    /// skip.
    fn region_end(&self, pre: u64) -> u64 {
        let Some(lvl) = self.level(pre) else {
            return pre + 1;
        };
        let mut end = pre + 1;
        let mut p = pre + 1;
        loop {
            let Some(q) = self.next_used_at_or_after(p) else {
                return end;
            };
            match self.level(q) {
                Some(ql) if ql > lvl => {
                    end = q + self.size(q) + 1;
                    p = end;
                }
                _ => return end,
            }
        }
    }

    /// The parent of the used node at `pre`: the nearest preceding used
    /// slot with a smaller level.
    fn parent_of(&self, pre: u64) -> Option<u64> {
        let lvl = self.level(pre)?;
        if lvl == 0 {
            return None;
        }
        let mut p = pre.checked_sub(1)?;
        loop {
            p = self.prev_used_at_or_before(p)?;
            if self.level(p)? < lvl {
                return Some(p);
            }
            p = p.checked_sub(1)?;
        }
    }

    /// The concatenated text of all descendant text nodes (XPath string
    /// value) of the node at `pre`.
    fn string_value(&self, pre: u64) -> String {
        let mut out = String::new();
        if !self.is_used(pre) {
            return out;
        }
        match self.kind(pre) {
            Some(Kind::Element) => {
                // Batch arm: walk the region as column chunks, testing
                // kind/liveness in a tight slice loop (one pool lookup
                // per text hit, no per-slot view indirection).
                let end = self.region_end(pre);
                let mut p = pre + 1;
                while p < end {
                    let Some(chunk) = self.pre_chunk(p, end) else {
                        // Chunk-less schema: the original per-slot walk.
                        let Some(q) = self.next_used_at_or_after(p) else {
                            break;
                        };
                        if q >= end {
                            break;
                        }
                        if self.kind(q) == Some(Kind::Text) {
                            if let Some(ValueRef(v)) = self.value_ref(q) {
                                if let Some(t) = self.pool().text(v) {
                                    out.push_str(t);
                                }
                            }
                        }
                        p = q + 1;
                        continue;
                    };
                    for i in 0..chunk.len() {
                        if chunk.live(i) && chunk.kinds[i] == Kind::Text {
                            if let Some(t) = self.pool().text(chunk.values[i]) {
                                out.push_str(t);
                            }
                        }
                    }
                    p += chunk.len() as u64;
                }
            }
            Some(Kind::Text) => {
                if let Some(ValueRef(v)) = self.value_ref(pre) {
                    if let Some(t) = self.pool().text(v) {
                        out.push_str(t);
                    }
                }
            }
            Some(Kind::Comment) => {
                if let Some(ValueRef(v)) = self.value_ref(pre) {
                    if let Some(t) = self.pool().comment(v) {
                        out.push_str(t);
                    }
                }
            }
            Some(Kind::ProcessingInstruction) => {
                if let Some(ValueRef(v)) = self.value_ref(pre) {
                    if let Some((_, d)) = self.pool().instruction(v) {
                        out.push_str(d);
                    }
                }
            }
            None => {}
        }
        out
    }

    /// Attribute value of `name` on the element at `pre`, if present.
    fn attribute_value(&self, pre: u64, name: &mbxq_xml::QName) -> Option<String> {
        let qn = self.pool().lookup_qname(name)?;
        self.attributes(pre)
            .into_iter()
            .find(|(n, _)| *n == qn)
            .and_then(|(_, p)| self.pool().prop(p).map(str::to_string))
    }
}
