//! Reconstructing XML from any pre-plane view.
//!
//! Both schemas serialize through the same generic walk over
//! [`TreeView`], which is also how tests assert that an update sequence
//! on the paged store and on an oracle produce the *same document*.

use crate::types::{Kind, StorageError, ValueRef};
use crate::view::TreeView;
use crate::Result;
use mbxq_xml::{Node, QName};

/// Rebuilds the owned tree of the node at `pre`.
pub fn subtree_to_node<V: TreeView + ?Sized>(view: &V, pre: u64) -> Result<Node> {
    let kind = view.kind(pre).ok_or(StorageError::BadPre {
        pre,
        context: "serializing",
    })?;
    match kind {
        Kind::Element => {
            let qn = view.name_id(pre).ok_or(StorageError::Corrupt {
                message: format!("element at pre {pre} has no name"),
            })?;
            let name = view
                .pool()
                .qname(qn)
                .cloned()
                .unwrap_or_else(|| QName::local("?"));
            let attributes = view
                .attributes(pre)
                .into_iter()
                .map(|(n, p)| {
                    let aname = view
                        .pool()
                        .qname(n)
                        .cloned()
                        .unwrap_or_else(|| QName::local("?"));
                    let avalue = view.pool().prop(p).unwrap_or("").to_string();
                    (aname, avalue)
                })
                .collect();
            let lvl = view.level(pre).expect("used tuple has a level");
            let end = view.region_end(pre);
            let mut children = Vec::new();
            let mut p = pre + 1;
            while let Some(q) = view.next_used_at_or_after(p) {
                if q >= end {
                    break;
                }
                match view.level(q) {
                    Some(ql) if ql == lvl + 1 => {
                        children.push(subtree_to_node(view, q)?);
                        p = view.region_end(q);
                    }
                    Some(ql) if ql <= lvl => break,
                    _ => {
                        return Err(StorageError::Corrupt {
                            message: format!(
                                "level discontinuity at pre {q} inside region of {pre}"
                            ),
                        })
                    }
                }
            }
            Ok(Node::Element {
                name,
                attributes,
                children,
            })
        }
        Kind::Text => {
            let ValueRef(v) = view.value_ref(pre).ok_or(StorageError::Corrupt {
                message: format!("text node at pre {pre} has no value"),
            })?;
            Ok(Node::Text(view.pool().text(v).unwrap_or("").to_string()))
        }
        Kind::Comment => {
            let ValueRef(v) = view.value_ref(pre).ok_or(StorageError::Corrupt {
                message: format!("comment at pre {pre} has no value"),
            })?;
            Ok(Node::Comment(
                view.pool().comment(v).unwrap_or("").to_string(),
            ))
        }
        Kind::ProcessingInstruction => {
            let ValueRef(v) = view.value_ref(pre).ok_or(StorageError::Corrupt {
                message: format!("instruction at pre {pre} has no value"),
            })?;
            let (target, data) = view.pool().instruction(v).unwrap_or(("?", ""));
            Ok(Node::ProcessingInstruction {
                target: target.to_string(),
                data: data.to_string(),
            })
        }
    }
}

/// Rebuilds the whole document tree (from the root).
pub fn to_tree<V: TreeView + ?Sized>(view: &V) -> Result<Node> {
    let root = view.root_pre().ok_or(StorageError::Corrupt {
        message: "document has no root".into(),
    })?;
    subtree_to_node(view, root)
}

/// Serializes the whole document to XML text.
pub fn to_xml<V: TreeView + ?Sized>(view: &V) -> Result<String> {
    let tree = to_tree(view)?;
    let mut out = String::new();
    mbxq_xml::serialize_node(&tree, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageConfig;
    use crate::update::InsertPosition;
    use crate::{NaiveDoc, PagedDoc, ReadOnlyDoc};
    use mbxq_xml::Document;

    const DOC: &str = r#"<site><people><person id="p0"><name>Ann</name></person></people><regions><africa><item id="i0"><!--note--><desc>old &amp; rare</desc></item></africa></regions></site>"#;

    #[test]
    fn readonly_round_trips() {
        let d = ReadOnlyDoc::parse_str(DOC).unwrap();
        let xml = to_xml(&d).unwrap();
        assert_eq!(
            Document::parse(&xml).unwrap(),
            Document::parse(DOC).unwrap()
        );
    }

    #[test]
    fn paged_round_trips_across_page_sizes() {
        for (ps, fill) in [(4, 50), (8, 75), (16, 100), (1024, 80)] {
            let cfg = PageConfig::new(ps, fill).unwrap();
            let d = PagedDoc::parse_str(DOC, cfg).unwrap();
            let xml = to_xml(&d).unwrap();
            assert_eq!(
                Document::parse(&xml).unwrap(),
                Document::parse(DOC).unwrap(),
                "page_size={ps} fill={fill}"
            );
        }
    }

    #[test]
    fn paged_equals_naive_after_same_updates() {
        let cfg = PageConfig::new(8, 75).unwrap();
        let mut paged = PagedDoc::parse_str(DOC, cfg).unwrap();
        let mut naive = NaiveDoc::parse_str(DOC).unwrap();
        // Node ids are allocated in document order by both stores, so the
        // same id addresses the same logical node.
        let person = paged.pre_to_node(2).unwrap();
        assert_eq!(naive.pre_to_node(2).unwrap(), person);
        let sub = Document::parse_fragment("<age>37</age>").unwrap();
        paged
            .insert(InsertPosition::LastChildOf(person), &sub)
            .unwrap();
        naive
            .insert(InsertPosition::LastChildOf(person), &sub)
            .unwrap();
        assert_eq!(to_xml(&paged).unwrap(), to_xml(&naive).unwrap());

        let name = paged.pre_to_node(3).unwrap();
        paged.delete(name).unwrap();
        naive.delete(name).unwrap();
        assert_eq!(to_xml(&paged).unwrap(), to_xml(&naive).unwrap());
    }
}
