//! Human-readable dumps of the storage tables, in the style of the
//! paper's Figure 4 — one row per slot with `pos | size | level | node |
//! content`, unused tuples shown with `level = NULL` and their run
//! lengths, and the view (logical page order) printed alongside the
//! physical layout when they differ.

use crate::paged::PagedDoc;
use crate::types::Kind;
use crate::view::TreeView;
use std::fmt::Write;

impl PagedDoc {
    /// Renders the base table in *physical* order, page by page — the
    /// `pos/size/level` table of Figure 4.
    pub fn dump_physical(&self) -> String {
        let mut out = String::new();
        let ps = self.cfg.page_size;
        let _ = writeln!(
            out,
            "pos/size/level table ({} pages of {ps} slots)",
            self.pages.num_pages()
        );
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>6} {:>6}  content",
            "pos", "size", "level", "node"
        );
        for page in 0..self.pages.num_pages() {
            let logical = self.pages.physical_to_logical(page).expect("page exists");
            let _ = writeln!(out, "-- physical page {page} (logical {logical}) --");
            for slot in 0..ps {
                let pos = page * ps + slot;
                if self.used[pos] {
                    let _ = writeln!(
                        out,
                        "{:>6} {:>6} {:>6} {:>6}  {}",
                        pos,
                        self.size[pos],
                        self.level[pos],
                        self.node[pos],
                        self.describe_pos(pos),
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{:>6} {:>6}   NULL      -  (unused, run {} fwd / {} back)",
                        pos, self.size[pos], self.size[pos], self.name[pos],
                    );
                }
            }
        }
        out
    }

    /// Renders the `pre/size/level` *view* (logical order) — what the
    /// query processor sees through the pageOffset mapping.
    pub fn dump_view(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "pre/size/level view ({} slots)", self.pre_end());
        let _ = writeln!(out, "{:>6} {:>6} {:>6}  content", "pre", "size", "level");
        for pre in 0..self.pre_end() {
            match self.level(pre) {
                Some(lvl) => {
                    let _ = writeln!(
                        out,
                        "{:>6} {:>6} {:>6}  {}{}",
                        pre,
                        TreeView::size(self, pre),
                        lvl,
                        "  ".repeat(lvl as usize),
                        self.describe_pos(self.pos_of_pre(pre).expect("in range")),
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:>6} {:>6}   NULL  (unused)",
                        pre,
                        TreeView::size(self, pre),
                    );
                }
            }
        }
        out
    }

    /// One-line description of the tuple at physical `pos`.
    fn describe_pos(&self, pos: usize) -> String {
        match self.kind[pos] {
            Kind::Element => {
                let name = self
                    .pool
                    .qname(crate::values::QnId(self.name[pos]))
                    .map(|q| q.to_string())
                    .unwrap_or_else(|| "?".into());
                format!("<{name}>")
            }
            Kind::Text => {
                let t = self.pool.text(self.value[pos]).unwrap_or("?");
                format!("text {:?}", truncate(t, 24))
            }
            Kind::Comment => {
                let t = self.pool.comment(self.value[pos]).unwrap_or("?");
                format!("<!--{}-->", truncate(t, 20))
            }
            Kind::ProcessingInstruction => {
                let (t, _) = self.pool.instruction(self.value[pos]).unwrap_or(("?", ""));
                format!("<?{t}?>")
            }
        }
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageConfig;
    use crate::update::InsertPosition;
    use mbxq_xml::Document;

    const PAPER_DOC: &str = "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>";

    #[test]
    fn physical_dump_shows_pages_and_runs() {
        let d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        let dump = d.dump_physical();
        assert!(dump.contains("physical page 0 (logical 0)"));
        assert!(dump.contains("physical page 1 (logical 1)"));
        assert!(dump.contains("<a>"));
        assert!(dump.contains("NULL"));
        assert!(dump.contains("run 5 fwd"));
    }

    #[test]
    fn view_dump_reflects_logical_order_after_splice() {
        let mut d = PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap();
        let g = d.pre_to_node(6).unwrap();
        let sub = Document::parse_fragment("<k><l/><m/></k>").unwrap();
        d.insert(InsertPosition::LastChildOf(g), &sub).unwrap();
        let phys = d.dump_physical();
        // The spliced page is physically last but logically in between.
        assert!(phys.contains("physical page 2 (logical 1)"));
        let view = d.dump_view();
        // In the view, <k> appears before <h> (Figure 4's final layout).
        let k_at = view.find("<k>").expect("k visible");
        let h_at = view.find("<h>").expect("h visible");
        assert!(k_at < h_at);
    }

    #[test]
    fn dump_handles_all_node_kinds() {
        let d = PagedDoc::parse_str(
            "<r>text<!--note--><?pi data?></r>",
            PageConfig::new(8, 100).unwrap(),
        )
        .unwrap();
        let dump = d.dump_view();
        assert!(dump.contains("text \"text\""));
        assert!(dump.contains("<!--note-->"));
        assert!(dump.contains("<?pi?>"));
    }
}
