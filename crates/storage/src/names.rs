//! The element-name index: `QnId` → element nodes, in document order.
//!
//! The staircase join answers `descendant::item` by *scanning* the
//! context regions and name-filtering every visited tuple — O(region).
//! For selective names, a relational engine wants the inverse access
//! path: jump straight to the `item` tuples and semijoin them back to
//! the context (`mbxq_axes::range_semijoin`). This module provides that
//! access path for the updateable schema.
//!
//! # Design
//!
//! Like the attribute table (Figure 6), the index is keyed by
//! **immutable node ids**, never by `pre`/`pos`: structural inserts
//! shift pre ranks of every later node "at no update cost at all" (§3),
//! and an index holding pre values would need O(document) maintenance
//! per insert. Node ids are translated to pre ranks at probe time
//! (`node→pos` + `pageOffset`, O(1) each), and because structural
//! updates never reorder *surviving* nodes, a list built in document
//! order **stays** in document order — the probe result is sorted
//! without sorting the base.
//!
//! Sharing follows the [`crate::paged::PagedDoc`] commit discipline:
//! an immutable, [`Arc`]-shared **base** (built by the shredder, a
//! checkpoint load, or vacuum) plus a small per-name **delta**
//! (`added` ids of elements inserted since, a `removed` tombstone set
//! for deleted/renamed ones). Cloning the index for a commit's new
//! version copies the base pointer and the small deltas — never the
//! big per-name lists — so a commit inserting one `<item>` stays
//! O(touched), not O(#items). Deltas fold into a fresh base only at
//! the explicit maintenance points (shredding, vacuum, checkpoint).

use crate::values::QnId;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Per-name overlay on top of the shared base list.
#[derive(Debug, Clone, Default)]
struct NameDelta {
    /// Node ids of elements that gained this name since the last
    /// compaction (insertion order; sorted by pre at probe time — the
    /// list is bounded by the commits since the last maintenance
    /// point, so the sort is cheap).
    added: Vec<u64>,
    /// Node ids shadowed out of the base list (deleted or renamed).
    removed: HashSet<u64>,
}

/// The `QnId → element node ids (document order)` index (module docs).
#[derive(Debug, Clone, Default)]
pub(crate) struct NameIndex {
    base: Arc<HashMap<QnId, Vec<u64>>>,
    delta: HashMap<QnId, NameDelta>,
}

impl NameIndex {
    /// An index with the given base and an empty delta. The per-name
    /// lists must be in document order.
    pub(crate) fn from_base(base: HashMap<QnId, Vec<u64>>) -> NameIndex {
        NameIndex {
            base: Arc::new(base),
            delta: HashMap::new(),
        }
    }

    /// Records that element `node` now carries name `qn`.
    pub(crate) fn add(&mut self, qn: QnId, node: u64) {
        let d = self.delta.entry(qn).or_default();
        // Re-adding a previously removed id (delete + re-insert cannot
        // happen — ids are never reused — but rename a→b→a can).
        if !d.removed.remove(&node) {
            d.added.push(node);
        }
    }

    /// Records that element `node` no longer carries name `qn`.
    pub(crate) fn remove(&mut self, qn: QnId, node: u64) {
        let d = self.delta.entry(qn).or_default();
        if let Some(i) = d.added.iter().position(|&n| n == node) {
            d.added.remove(i);
        } else {
            // A live element not in `added` must be in the base list.
            d.removed.insert(node);
        }
    }

    /// Exact number of elements currently named `qn` — the statistic
    /// the cost-based axis selection keys on. Only valid when every
    /// tombstone shadows a real base entry (true for the element-name
    /// index, whose removals always name live members).
    pub(crate) fn count(&self, qn: QnId) -> u64 {
        let base = self.base.get(&qn).map_or(0, Vec::len) as u64;
        match self.delta.get(&qn) {
            Some(d) => base + d.added.len() as u64 - d.removed.len() as u64,
            None => base,
        }
    }

    /// Upper-bound count that ignores tombstones — safe when removals
    /// may be spurious (the content index's complex lists tombstone
    /// blindly on delete).
    pub(crate) fn count_upper(&self, qn: QnId) -> u64 {
        let base = self.base.get(&qn).map_or(0, Vec::len) as u64;
        base + self.delta.get(&qn).map_or(0, |d| d.added.len()) as u64
    }

    /// The node ids of elements named `qn`, merged with the delta and
    /// ordered by `pre_of` (ascending). `pre_of` returns the node's
    /// current pre rank (`None` entries are skipped defensively).
    pub(crate) fn nodes_by_pre(
        &self,
        qn: QnId,
        mut pre_of: impl FnMut(u64) -> Option<u64>,
    ) -> Vec<(u64, u64)> {
        let empty_base: &[u64] = &[];
        let base = self.base.get(&qn).map_or(empty_base, Vec::as_slice);
        let delta = self.delta.get(&qn);
        // Base stays document-ordered (updates never reorder surviving
        // nodes); only the small `added` list needs a sort.
        let mut added: Vec<(u64, u64)> = delta
            .map(|d| {
                d.added
                    .iter()
                    .filter_map(|&n| pre_of(n).map(|p| (p, n)))
                    .collect()
            })
            .unwrap_or_default();
        added.sort_unstable();
        let mut base_pres: Vec<(u64, u64)> = Vec::with_capacity(base.len());
        for &n in base {
            if delta.is_some_and(|d| d.removed.contains(&n)) {
                continue;
            }
            if let Some(p) = pre_of(n) {
                base_pres.push((p, n));
            }
        }
        // Merge two pre-ascending runs.
        let mut out = Vec::with_capacity(base_pres.len() + added.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < base_pres.len() && j < added.len() {
            if base_pres[i].0 <= added[j].0 {
                out.push(base_pres[i]);
                i += 1;
            } else {
                out.push(added[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&base_pres[i..]);
        out.extend_from_slice(&added[j..]);
        out
    }

    /// Folds the deltas into a fresh shared base (per-name lists stay
    /// document-ordered via `pre_of`). Runs only at maintenance points.
    pub(crate) fn compact(&mut self, mut pre_of: impl FnMut(u64) -> Option<u64>) {
        if self.delta.is_empty() {
            return;
        }
        let names: Vec<QnId> = self.delta.keys().copied().collect();
        let mut base = (*self.base).clone();
        for qn in names {
            let merged: Vec<u64> = self
                .nodes_by_pre(qn, &mut pre_of)
                .into_iter()
                .map(|(_, n)| n)
                .collect();
            if merged.is_empty() {
                base.remove(&qn);
            } else {
                base.insert(qn, merged);
            }
        }
        self.delta.clear();
        self.base = Arc::new(base);
    }

    /// Entries added/tombstoned since the last compaction (diagnostic).
    pub(crate) fn delta_len(&self) -> usize {
        self.delta
            .values()
            .map(|d| d.added.len() + d.removed.len())
            .sum()
    }

    /// A clone sharing no storage (the clone-the-world baseline).
    pub(crate) fn deep_clone(&self) -> NameIndex {
        NameIndex {
            base: Arc::new((*self.base).clone()),
            delta: self.delta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(n: u64) -> Option<u64> {
        Some(n)
    }

    #[test]
    fn base_plus_delta_merge_in_pre_order() {
        let mut base = HashMap::new();
        base.insert(QnId(1), vec![2, 7, 9]);
        let mut idx = NameIndex::from_base(base);
        idx.add(QnId(1), 20); // pretend pre 5 via the mapping below
        let pre_of = |n: u64| Some(if n == 20 { 5 } else { n });
        let got: Vec<u64> = idx
            .nodes_by_pre(QnId(1), pre_of)
            .iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(got, vec![2, 5, 7, 9]);
        assert_eq!(idx.count(QnId(1)), 4);
    }

    #[test]
    fn removal_tombstones_base_and_cancels_added() {
        let mut base = HashMap::new();
        base.insert(QnId(0), vec![1, 3]);
        let mut idx = NameIndex::from_base(base);
        idx.add(QnId(0), 10);
        idx.remove(QnId(0), 10); // cancels the add
        idx.remove(QnId(0), 1); // tombstones the base entry
        let got: Vec<u64> = idx
            .nodes_by_pre(QnId(0), ident)
            .iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(got, vec![3]);
        assert_eq!(idx.count(QnId(0)), 1);
    }

    #[test]
    fn compaction_preserves_contents_and_clears_delta() {
        let mut idx = NameIndex::from_base(HashMap::new());
        idx.add(QnId(2), 4);
        idx.add(QnId(2), 1);
        idx.add(QnId(3), 8);
        idx.remove(QnId(3), 8);
        assert!(idx.delta_len() > 0);
        idx.compact(ident);
        assert_eq!(idx.delta_len(), 0);
        let got: Vec<u64> = idx
            .nodes_by_pre(QnId(2), ident)
            .iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(got, vec![1, 4]);
        assert_eq!(idx.count(QnId(3)), 0);
    }

    #[test]
    fn clones_share_the_base() {
        let mut base = HashMap::new();
        base.insert(QnId(5), (0..100).collect());
        let idx = NameIndex::from_base(base);
        let snap = idx.clone();
        assert!(Arc::ptr_eq(&idx.base, &snap.base), "clone must share");
        let deep = idx.deep_clone();
        assert!(!Arc::ptr_eq(&idx.base, &deep.base));
    }
}
