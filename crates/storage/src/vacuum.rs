//! Vacuum: rebuilding the logical-page layout at the configured fill
//! factor.
//!
//! The paper's free-space discipline degrades over time: deletes leave
//! arbitrarily fragmented pages (hurting scan locality), bulk inserts
//! fill their target page to 100 % (so the *next* nearby insert
//! overflows immediately), and spliced overflow pages make the physical
//! order diverge from the logical order (defeating sequential prefetch
//! in the real mmap-backed system). Production deployments of such a
//! scheme need an offline/maintenance **vacuum** that re-shreds the live
//! tuples into a fresh, sequential page sequence at the configured fill
//! factor — this module provides it, preserving node ids and attributes
//! (only positions change; `node→pos` is rebuilt, exactly the mutable
//! state the paper designed the indirection for).

use crate::names::NameIndex;
use crate::paged::{name_index_base, PagedDoc, Tuple, SIDE_PAGE};
use crate::types::PageConfig;
use crate::view::TreeView;
use crate::Result;
use mbxq_bat::{CowNullable, CowVec, PageMap};

/// Outcome statistics of a vacuum run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VacuumReport {
    /// Logical pages before.
    pub pages_before: usize,
    /// Logical pages after.
    pub pages_after: usize,
    /// Live tuples relocated (all of them — vacuum is a full rewrite).
    pub tuples_moved: u64,
    /// Unused slots reclaimed (capacity shrink).
    pub slots_reclaimed: u64,
    /// Dead attribute rows dropped from the attribute table.
    pub attr_rows_reclaimed: u64,
}

impl PagedDoc {
    /// Rewrites the document into a fresh page sequence at `cfg`'s fill
    /// factor: used tuples in document order, pages in physical ==
    /// logical order, every page with the configured headroom. Node ids,
    /// attributes and the value pool are preserved; only positions (and
    /// therefore pre ranks' *physical* backing) change.
    pub fn vacuum_into(&mut self, cfg: PageConfig) -> Result<VacuumReport> {
        PageConfig::new(cfg.page_size, cfg.fill_percent)?;
        let pages_before = self.pages.num_pages();
        let capacity_before = self.size.len() as u64;

        // Collect live tuples in view (document) order.
        let mut live: Vec<Tuple> = Vec::with_capacity(self.used_count as usize);
        let mut p = 0u64;
        while let Some(q) = self.next_used_at_or_after(p) {
            let pos = self.pos_of_pre(q).expect("used slot resolves");
            live.push(self.read_tuple(pos));
            p = q + 1;
        }

        // Fresh layout.
        let fill = cfg.fill_target();
        let n_pages = live.len().div_ceil(fill).max(1);
        let mut pages = PageMap::new(cfg.page_size);
        let slots = n_pages * cfg.page_size;
        self.cfg = cfg;
        self.shift = cfg.page_size.trailing_zeros();
        self.size = CowVec::filled(cfg.page_size, slots, 0);
        self.level = CowVec::filled(cfg.page_size, slots, 0);
        self.used = CowVec::filled(cfg.page_size, slots, false);
        self.kind = CowVec::filled(cfg.page_size, slots, crate::types::Kind::Element);
        self.name = CowVec::filled(cfg.page_size, slots, 0);
        self.value = CowVec::filled(cfg.page_size, slots, u32::MAX);
        self.node = CowVec::filled(cfg.page_size, slots, u64::MAX);

        // Preserve the node-id space (ids above the rebuilt set stay
        // NULL, e.g. ids of deleted nodes).
        let alloc_end = self.node_pos.hseqend();
        let mut node_pos = CowNullable::new(SIDE_PAGE);
        for _ in 0..alloc_end {
            node_pos.append(None);
        }

        for (i, chunk) in live.chunks(fill).enumerate() {
            let page = pages.append_page();
            debug_assert_eq!(page, i);
            let base = page * cfg.page_size;
            for (j, t) in chunk.iter().enumerate() {
                self.write_tuple(base + j, *t);
                node_pos.set(t.node, Some((base + j) as u64))?;
            }
        }
        self.pages = pages;
        self.node_pos = node_pos;
        for page in 0..n_pages {
            self.rebuild_runs_in_page(page);
        }

        // Drop attribute rows orphaned by deletes (they were left in the
        // columns as dead space), renumbering the survivors, and fold
        // the side-structure deltas into fresh shared bases.
        let rows_before = self.attr_node.len() as u64;
        self.rebuild_attr_table();
        // The live tuples are already in document order — rebuild the
        // element-name index from them with an empty delta, and re-scan
        // the fresh layout for the content index.
        self.name_index = NameIndex::from_base(name_index_base(&live));
        let content = crate::values::ContentIndex::build_from_view(&*self);
        self.content_index = content;
        self.pool.compact();
        let attr_rows_reclaimed = rows_before - self.attr_node.len() as u64;

        Ok(VacuumReport {
            pages_before,
            pages_after: n_pages,
            tuples_moved: live.len() as u64,
            slots_reclaimed: capacity_before.saturating_sub(slots as u64),
            attr_rows_reclaimed,
        })
    }

    /// Vacuums with the document's current page configuration.
    pub fn vacuum(&mut self) -> Result<VacuumReport> {
        self.vacuum_into(self.cfg)
    }

    /// Fraction of allocated slots holding live tuples (0.0–1.0); a
    /// trigger metric for vacuum scheduling.
    pub fn occupancy(&self) -> f64 {
        if self.size.is_empty() {
            return 1.0;
        }
        self.used_count as f64 / self.size.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_xml;
    use crate::update::InsertPosition;
    use mbxq_xml::Document;

    const DOC: &str = "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>";

    fn fragmented_doc() -> PagedDoc {
        let cfg = PageConfig::new(8, 88).unwrap();
        let mut d = PagedDoc::parse_str(DOC, cfg).unwrap();
        // Fragment it: bulk insert (splices overflow pages), then delete
        // (punches holes).
        let g = d.pre_to_node(6).unwrap();
        let mut xml = String::from("<k>");
        for i in 0..20 {
            xml.push_str(&format!("<x{i}/>"));
        }
        xml.push_str("</k>");
        let sub = Document::parse_fragment(&xml).unwrap();
        d.insert(InsertPosition::LastChildOf(g), &sub).unwrap();
        let b = d.pre_to_node(1).unwrap();
        d.delete(b).unwrap();
        d
    }

    #[test]
    fn vacuum_preserves_the_document() {
        let mut d = fragmented_doc();
        let before = to_xml(&d).unwrap();
        let used_before = d.used_count();
        let report = d.vacuum().unwrap();
        crate::invariants::check_paged(&d).unwrap();
        assert_eq!(to_xml(&d).unwrap(), before);
        assert_eq!(d.used_count(), used_before);
        assert_eq!(report.tuples_moved, used_before);
    }

    #[test]
    fn vacuum_restores_fill_factor() {
        let mut d = fragmented_doc();
        d.vacuum().unwrap();
        // Every page except possibly the last holds exactly fill_target
        // tuples.
        let fill = d.config().fill_target();
        let pages = d.stats().pages;
        for page in 0..pages.saturating_sub(1) {
            assert_eq!(
                d.config().page_size - d.free_in_page(page),
                fill,
                "page {page}"
            );
        }
    }

    #[test]
    fn vacuum_preserves_node_ids_and_attributes() {
        let cfg = PageConfig::new(8, 75).unwrap();
        let mut d =
            PagedDoc::parse_str(r#"<r><a id="one"/><b id="two"><c/></b></r>"#, cfg).unwrap();
        let a = d.pre_to_node(1).unwrap();
        let b = d.pre_to_node(2).unwrap();
        d.delete(a).unwrap();
        d.vacuum().unwrap();
        // b's node id still resolves and keeps its attribute.
        let b_pre = d.node_to_pre(b).unwrap();
        assert_eq!(
            d.attribute_value(b_pre, &mbxq_xml::QName::local("id")),
            Some("two".to_string())
        );
        // a's id stays dead.
        assert!(d.node_to_pre(a).is_err());
    }

    #[test]
    fn vacuum_reclaims_space_and_can_change_page_size() {
        let mut d = fragmented_doc();
        let cap_before = d.stats().capacity;
        // Same page size: fragmentation (the deleted subtree's holes)
        // is reclaimed.
        let report = d.vacuum().unwrap();
        assert!(d.stats().capacity < cap_before, "capacity should shrink");
        assert!(report.slots_reclaimed > 0);
        // Re-shape to a different page size.
        d.vacuum_into(PageConfig::new(64, 80).unwrap()).unwrap();
        assert_eq!(d.config().page_size, 64);
        crate::invariants::check_paged(&d).unwrap();
        // Still updatable afterwards.
        let root = d.pre_to_node(d.root_pre().unwrap()).unwrap();
        let sub = Document::parse_fragment("<post/>").unwrap();
        d.insert(InsertPosition::LastChildOf(root), &sub).unwrap();
        crate::invariants::check_paged(&d).unwrap();
    }

    #[test]
    fn occupancy_reflects_fragmentation() {
        let mut d = fragmented_doc();
        let occ_frag = d.occupancy();
        d.vacuum().unwrap();
        assert!(d.occupancy() >= occ_frag);
        assert!(d.occupancy() <= 1.0);
    }
}
