//! Shared identifier and configuration types for the storage layer.

/// Node kind — the paper's `kind` column, which "determines to which table
/// `ref` refers" (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Kind {
    /// Element node; `name` refers into the `qn` table.
    Element = 0,
    /// Text node; `value` refers into the text table.
    Text = 1,
    /// Comment node; `value` refers into the comment table.
    Comment = 2,
    /// Processing instruction; `value` refers into the `ins` table.
    ProcessingInstruction = 3,
}

/// Immutable per-node identifier.
///
/// "We decided to give each node a unique node number that never changes
/// through its lifetime" (§3.1) — this decouples the attribute table and
/// any long-lived external reference from `pos` values, which shift inside
/// pages under updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Reference from a tree tuple into one of the value tables; which table
/// is determined by the tuple's [`Kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueRef(pub u32);

/// Configuration of the logical-page layout used by the updateable schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    /// Tuples per logical page; must be a power of two. The paper uses
    /// 65536 (the virtual-memory mapping granularity); scaled experiments
    /// use smaller powers of two so documents still span many pages.
    pub page_size: usize,
    /// Percentage (0–100) of each page the shredder fills with real
    /// tuples; the rest is left unused. "The document shredder already
    /// leaves a certain (configurable) percentage of tuples unused in each
    /// logical page" (§3). The evaluation keeps about 20 % unused, i.e. a
    /// fill of 80.
    pub fill_percent: u8,
}

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig {
            page_size: 1024,
            fill_percent: 80,
        }
    }
}

impl PageConfig {
    /// Creates a configuration, validating the parameters.
    pub fn new(page_size: usize, fill_percent: u8) -> Result<Self, StorageError> {
        if !page_size.is_power_of_two() || page_size < 4 {
            return Err(StorageError::BadConfig {
                message: format!("page_size must be a power of two >= 4, got {page_size}"),
            });
        }
        if fill_percent == 0 || fill_percent > 100 {
            return Err(StorageError::BadConfig {
                message: format!("fill_percent must be in 1..=100, got {fill_percent}"),
            });
        }
        Ok(PageConfig {
            page_size,
            fill_percent,
        })
    }

    /// Number of tuples the shredder places on a page before starting the
    /// next one (at least 1).
    pub fn fill_target(&self) -> usize {
        ((self.page_size * self.fill_percent as usize) / 100).max(1)
    }
}

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Invalid configuration parameters.
    BadConfig {
        /// Description of the problem.
        message: String,
    },
    /// A pre rank was outside the view, or referred to an unused tuple.
    BadPre {
        /// The offending pre rank.
        pre: u64,
        /// What the caller was doing.
        context: &'static str,
    },
    /// A node id is unknown or refers to a deleted node.
    BadNode {
        /// The offending node id.
        node: NodeId,
    },
    /// An update targeted a node that cannot accept it (e.g. inserting a
    /// sibling of the root, or children under a text node).
    InvalidTarget {
        /// Description of the violation.
        message: String,
    },
    /// Underlying column-kernel failure (internal inconsistency).
    Kernel(String),
    /// Invariant checker found corruption.
    Corrupt {
        /// Description of the violated invariant.
        message: String,
    },
}

impl core::fmt::Display for StorageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StorageError::BadConfig { message } => write!(f, "bad configuration: {message}"),
            StorageError::BadPre { pre, context } => {
                write!(f, "invalid pre rank {pre} while {context}")
            }
            StorageError::BadNode { node } => write!(f, "unknown or deleted node {node}"),
            StorageError::InvalidTarget { message } => write!(f, "invalid target: {message}"),
            StorageError::Kernel(m) => write!(f, "column kernel: {m}"),
            StorageError::Corrupt { message } => write!(f, "storage corrupt: {message}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<mbxq_bat::BatError> for StorageError {
    fn from(e: mbxq_bat::BatError) -> Self {
        StorageError::Kernel(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_config_validation() {
        assert!(PageConfig::new(1024, 80).is_ok());
        assert!(PageConfig::new(1000, 80).is_err());
        assert!(PageConfig::new(2, 80).is_err());
        assert!(PageConfig::new(64, 0).is_err());
        assert!(PageConfig::new(64, 101).is_err());
    }

    #[test]
    fn fill_target_rounds_down_but_stays_positive() {
        assert_eq!(PageConfig::new(1024, 80).unwrap().fill_target(), 819);
        assert_eq!(PageConfig::new(8, 100).unwrap().fill_target(), 8);
        assert_eq!(PageConfig::new(8, 1).unwrap().fill_target(), 1);
    }
}
