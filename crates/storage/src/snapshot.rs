//! Lock-free snapshot publication — the reader fast path of §3.2.
//!
//! The paper's readers "just acquire a global read-lock while they run";
//! the in-memory realization wants even less: taking a snapshot of the
//! committed document must never contend with writers at all, or reader
//! throughput becomes a function of writer load. [`ArcCell`] is a
//! hand-rolled `ArcSwap`-style cell (the build environment is offline,
//! so no crates.io `arc-swap`): readers [`ArcCell::load`] the current
//! `Arc` with a handful of atomic operations and **no lock, ever** — no
//! mutex, no rwlock, no unbounded spin on the read side; publishers
//! [`ArcCell::store`] swap the pointer and then wait out only the
//! (instruction-scale) windows of readers that might still be cloning
//! the **old** value.
//!
//! # How the race is closed
//!
//! The classic hazard of an atomic-pointer snapshot cell: a reader loads
//! the pointer, the writer swaps and drops the last reference, the
//! reader clones a freed `Arc`. The cell closes it with *per-epoch
//! reader presence counters*:
//!
//! * the cell keeps an `epoch` counter and two reader slots; epoch `e`
//!   uses slot `e & 1`;
//! * a reader registers in the current epoch's slot **before** loading
//!   the pointer (re-registering if a publisher bumped the epoch in
//!   between, so its registration is never invisible to the publisher
//!   that will retire the value it is about to read), and deregisters
//!   after cloning the `Arc`;
//! * a publisher swaps the pointer, bumps the epoch, and then waits for
//!   the **previous** epoch's slot to drain before releasing the old
//!   value. Readers arriving meanwhile register in the *new* slot and
//!   never delay it — the wait covers exactly the readers that could
//!   have seen the old pointer, so it is bounded by their few-
//!   instruction windows even under a sustained snapshot storm.
//!
//! Publishers are serialized against each other by an internal mutex
//! (they are rare and already serialized by the commit lock in the
//! transaction layer); readers never touch it.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A cell holding an `Arc<T>` that readers can clone without taking any
/// lock and writers can atomically replace. See the module docs for the
/// protocol.
#[derive(Debug)]
pub struct ArcCell<T> {
    /// Raw pointer obtained from `Arc::into_raw`; the cell owns one
    /// strong reference to whatever this points at.
    ptr: AtomicPtr<T>,
    /// Publication epoch; epoch `e` registers readers in slot `e & 1`.
    epoch: AtomicUsize,
    /// Readers currently between "registered" and "cloned", per slot.
    readers: [AtomicUsize; 2],
    /// Serializes publishers (readers never touch it): the wait-for-
    /// previous-slot protocol is only sound for one retirement at a
    /// time.
    publish: Mutex<()>,
}

impl<T> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> ArcCell<T> {
        ArcCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            epoch: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            publish: Mutex::new(()),
        }
    }

    /// Clones the current value. Lock-free: registration, one pointer
    /// load and one refcount increment — never a mutex, and a bounded
    /// re-registration only in the rare race with a concurrent
    /// [`ArcCell::store`].
    pub fn load(&self) -> Arc<T> {
        // Register in the current epoch's slot, re-checking the epoch
        // afterwards: if a publisher bumped it between our read and our
        // increment, our registration might be in a slot that publisher
        // no longer waits on — retry in the fresh slot. Once the
        // re-check passes, the registration happened before any future
        // epoch bump, so the publisher retiring the value we are about
        // to read is guaranteed to see it and wait.
        let slot = loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let slot = &self.readers[e & 1];
            slot.fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                break slot;
            }
            slot.fetch_sub(1, Ordering::SeqCst);
        };
        let p = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `p` came from `Arc::into_raw` (in `new` or `store`).
        // The cell's strong reference to `p` cannot be released while we
        // are registered: a publisher retires a value only after (swap,
        // epoch bump, drain of the pre-bump slot) — and our verified
        // registration precedes any bump that could retire the value
        // `p` we just loaded (see module docs), so that drain waits for
        // our deregistration below, which happens only after the clone.
        let arc = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        // If the pointer was swapped after our registration we may have
        // loaded the *new* value while registered in the *old* slot;
        // that only makes the old value's publisher wait for us too —
        // harmless.
        slot.fetch_sub(1, Ordering::SeqCst);
        arc
    }

    /// Atomically replaces the value, releasing the cell's reference to
    /// the previous one once no in-flight `load` can still touch it.
    /// Only readers that raced this exact publication are waited on;
    /// later loads register against the new epoch and never delay it.
    pub fn store(&self, value: Arc<T>) {
        let _serialized = self.publish.lock().unwrap();
        let new = Arc::into_raw(value).cast_mut();
        let old = self.ptr.swap(new, Ordering::SeqCst);
        let prev_epoch = self.epoch.fetch_add(1, Ordering::SeqCst);
        let drained = &self.readers[prev_epoch & 1];
        // Drain the retired slot: every reader that could have loaded
        // `old` registered there before our bump, and each holds it for
        // only a few instructions. New readers go to the other slot.
        let mut spins = 0u32;
        while drained.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: `old` came from `Arc::into_raw`; we reclaim the strong
        // reference the cell owned. Every load that could still clone
        // `old` has deregistered from the drained slot (and a clone
        // strictly precedes its deregistration), so dropping this
        // reference can no longer race a clone of a dead Arc.
        drop(unsafe { Arc::from_raw(old) });
    }

    /// Consumes the cell, returning the held value.
    pub fn into_inner(self) -> Arc<T> {
        let p = self.ptr.load(Ordering::Relaxed);
        // Don't double-drop in `Drop`.
        std::mem::forget(self);
        // SAFETY: exclusive ownership (`self` by value); reclaim the
        // cell's strong reference.
        unsafe { Arc::from_raw(p) }
    }
}

impl<T> Drop for ArcCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        // SAFETY: exclusive access in drop; release the cell's strong
        // reference.
        drop(unsafe { Arc::from_raw(p) });
    }
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, which is
// exactly what `Arc` supports when `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for ArcCell<T> {}
unsafe impl<T: Send + Sync> Sync for ArcCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};

    #[test]
    fn load_returns_current_value() {
        let cell = ArcCell::new(Arc::new(7u64));
        assert_eq!(*cell.load(), 7);
        cell.store(Arc::new(8));
        assert_eq!(*cell.load(), 8);
        assert_eq!(*cell.into_inner(), 8);
    }

    #[test]
    fn old_snapshots_stay_alive_after_store() {
        let cell = ArcCell::new(Arc::new(String::from("v0")));
        let pinned = cell.load();
        cell.store(Arc::new(String::from("v1")));
        assert_eq!(*pinned, "v0");
        assert_eq!(*cell.load(), "v1");
    }

    /// Readers hammer `load` while a writer continuously replaces the
    /// value; every loaded Arc must be alive and internally consistent.
    /// (Run under the normal test harness this doubles as a low-grade
    /// race detector: a use-after-free here crashes loudly.)
    #[test]
    fn concurrent_load_store_storm() {
        // The pair inside must always satisfy b == a * 2 — a torn or
        // dangling value would break it.
        let cell = Arc::new(ArcCell::new(Arc::new((1u64, 2u64))));
        let loads = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                let loads = loads.clone();
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let v = cell.load();
                        assert_eq!(v.1, v.0 * 2);
                        loads.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            s.spawn(|| {
                for i in 2..2_000u64 {
                    cell.store(Arc::new((i, i * 2)));
                }
            });
        });
        assert_eq!(loads.load(Ordering::Relaxed), 4 * 20_000);
        let last = cell.load();
        assert_eq!(last.1, last.0 * 2);
    }

    /// Liveness: a publisher waits only on readers of the epoch it
    /// retired — a continuous stream of *new* loads (which register
    /// against the new epoch) must not stall `store`.
    #[test]
    fn store_completes_under_sustained_reader_traffic() {
        let cell = Arc::new(ArcCell::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let cell = cell.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::black_box(cell.load());
                    }
                });
            }
            // Every store must return; 500 of them back-to-back while
            // readers never pause.
            for i in 1..=500u64 {
                cell.store(Arc::new(i));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(*cell.load(), 500);
    }

    /// Two cells' publishers running concurrently (each serialized
    /// internally) with shared readers — cross-cell traffic must not
    /// confuse the per-cell slots.
    #[test]
    fn independent_cells_do_not_interfere() {
        let a = Arc::new(ArcCell::new(Arc::new(1u64)));
        let b = Arc::new(ArcCell::new(Arc::new(100u64)));
        std::thread::scope(|s| {
            let (a2, b2) = (a.clone(), b.clone());
            s.spawn(move || {
                for i in 0..1_000 {
                    a2.store(Arc::new(i));
                    std::hint::black_box(b2.load());
                }
            });
            let (a3, b3) = (a.clone(), b.clone());
            s.spawn(move || {
                for i in 0..1_000 {
                    b3.store(Arc::new(100 + i));
                    std::hint::black_box(a3.load());
                }
            });
        });
        assert_eq!(*a.load(), 999);
        assert_eq!(*b.load(), 1099);
    }
}
