//! Structure-preserving checkpoint serialization of a [`PagedDoc`].
//!
//! A checkpoint cannot round-trip through plain XML text: the parser
//! coalesces adjacent text runs, but deletes legitimately leave adjacent
//! *separate* text tuples behind (each with its own immutable node id
//! that later WAL records may reference). Reparsing would then produce
//! fewer tuples than the live document and recovery would desynchronize
//! — fatally, since the checkpoint has already truncated the log.
//!
//! So a checkpoint dumps the **tuple stream** instead: one entry per
//! used tuple in document order carrying its node id, level, kind and
//! content, followed by the attribute rows. Sizes are recomputed from
//! the level sequence on load (the same postorder walk the shredder
//! uses), the `node→pos` map is rebuilt over the checkpointed id
//! allocation point, and the page layout is re-shredded at the
//! configured fill factor. Strings travel length-prefixed (`len:bytes`),
//! the same escaping-free convention as the WAL op encoding.

use crate::paged::{PagedDoc, Tuple};
use crate::types::{Kind, PageConfig, StorageError};
use crate::values::QnId;
use crate::view::TreeView;
use crate::Result;
use mbxq_xml::QName;
use std::fmt::Write as _;

fn put_str(out: &mut String, s: &str) {
    let _ = write!(out, "{}:", s.len());
    out.push_str(s);
    out.push(' ');
}

fn next_tok<'a>(rest: &mut &'a str) -> Option<&'a str> {
    *rest = rest.trim_start();
    if rest.is_empty() {
        return None;
    }
    let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
    let (tok, r) = rest.split_at(end);
    *rest = r;
    Some(tok)
}

fn take_str<'a>(rest: &mut &'a str) -> Option<&'a str> {
    let r = rest.trim_start();
    let colon = r.find(':')?;
    let len: usize = r[..colon].parse().ok()?;
    let start = colon + 1;
    if r.len() < start + len {
        return None;
    }
    let s = &r[start..start + len];
    *rest = &r[start + len..];
    Some(s)
}

/// The document identity stamped into `dump` by
/// [`PagedDoc::checkpoint_dump_named`], if any. Recovery of a catalog
/// shard compares this against the manifest's document name before
/// replaying, so a WAL file shuffled between shard slots is caught
/// instead of silently loading the wrong document.
pub fn checkpoint_dump_identity(dump: &str) -> Option<&str> {
    let mut rest = dump;
    if next_tok(&mut rest)? != "D" {
        return None;
    }
    take_str(&mut rest)
}

fn bad(message: impl Into<String>) -> StorageError {
    StorageError::InvalidTarget {
        message: message.into(),
    }
}

impl PagedDoc {
    /// Serializes the live tuples and attribute rows into the
    /// checkpoint dump format (see the module docs). Lossless with
    /// respect to structure *and* node ids — unlike XML text, which
    /// merges adjacent text siblings on reparse.
    pub fn checkpoint_dump(&self) -> String {
        self.checkpoint_dump_named(None)
    }

    /// [`PagedDoc::checkpoint_dump`] with an optional **document
    /// identity**: a catalog shard stamps its document name into the
    /// dump (a leading `D len:name` entry) so recovery can detect a WAL
    /// file that was renamed or swapped under a different manifest
    /// entry. Dumps without the entry load exactly as before.
    pub fn checkpoint_dump_named(&self, doc_name: Option<&str>) -> String {
        let mut out = String::new();
        if let Some(name) = doc_name {
            out.push_str("D ");
            put_str(&mut out, name);
        }
        let mut p = 0u64;
        while let Some(q) = self.next_used_at_or_after(p) {
            let pos = self.pos_of_pre(q).expect("used slot resolves");
            let node = self.node[pos];
            let lvl = self.level[pos];
            match self.kind[pos] {
                Kind::Element => {
                    let name = self
                        .pool
                        .qname(QnId(self.name[pos]))
                        .map(QName::to_string)
                        .unwrap_or_default();
                    let _ = write!(out, "E {node} {lvl} ");
                    put_str(&mut out, &name);
                }
                Kind::Text => {
                    let _ = write!(out, "T {node} {lvl} ");
                    put_str(&mut out, self.pool.text(self.value[pos]).unwrap_or(""));
                }
                Kind::Comment => {
                    let _ = write!(out, "M {node} {lvl} ");
                    put_str(&mut out, self.pool.comment(self.value[pos]).unwrap_or(""));
                }
                Kind::ProcessingInstruction => {
                    let (target, data) = self.pool.instruction(self.value[pos]).unwrap_or(("", ""));
                    let (target, data) = (target.to_string(), data.to_string());
                    let _ = write!(out, "P {node} {lvl} ");
                    put_str(&mut out, &target);
                    put_str(&mut out, &data);
                }
            }
            p = q + 1;
        }
        // Attribute rows, owner-major in document order (per-node row
        // order is the attribute order).
        let mut p = 0u64;
        while let Some(q) = self.next_used_at_or_after(p) {
            let pos = self.pos_of_pre(q).expect("used slot resolves");
            let node = self.node[pos];
            if let Some(rows) = self.attr_index.get(node) {
                for &r in rows {
                    let name = self
                        .pool
                        .qname(self.attr_qn[r as usize])
                        .map(QName::to_string)
                        .unwrap_or_default();
                    let value = self
                        .pool
                        .prop(self.attr_prop[r as usize])
                        .unwrap_or("")
                        .to_string();
                    let _ = write!(out, "A {node} ");
                    put_str(&mut out, &name);
                    put_str(&mut out, &value);
                }
            }
            p = q + 1;
        }
        out
    }

    /// Rebuilds a document from a [`PagedDoc::checkpoint_dump`] and the
    /// checkpointed id allocation point. Ids above the live set (deleted
    /// nodes) stay NULL in `node→pos`, so WAL records logged *after* the
    /// checkpoint still resolve their targets and id allocation resumes
    /// exactly where the checkpointed store left off.
    pub fn from_checkpoint_dump(dump: &str, cfg: PageConfig, alloc_end: u64) -> Result<Self> {
        let mut doc = Self::empty(cfg)?;
        let mut staged: Vec<Tuple> = Vec::new();
        let mut attrs = Vec::new();
        let mut rest = dump;
        while let Some(tag) = next_tok(&mut rest) {
            if tag == "D" {
                // Document-identity entry (see `checkpoint_dump_named`):
                // carries no tuple data, callers read it separately via
                // `checkpoint_dump_identity`.
                take_str(&mut rest).ok_or_else(|| bad("checkpoint identity lacks a name"))?;
                continue;
            }
            if tag == "A" {
                let node = next_tok(&mut rest)
                    .and_then(|t| t.parse::<u64>().ok())
                    .ok_or_else(|| bad("checkpoint attr row lacks a node id"))?;
                let name = take_str(&mut rest)
                    .and_then(QName::parse)
                    .ok_or_else(|| bad("checkpoint attr row carries a bad name"))?;
                let value =
                    take_str(&mut rest).ok_or_else(|| bad("checkpoint attr row lacks a value"))?;
                let qn = doc.pool.intern_qname(&name);
                let prop = doc.pool.intern_prop(value);
                attrs.push((node, qn, prop));
                continue;
            }
            let node = next_tok(&mut rest)
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| bad("checkpoint tuple lacks a node id"))?;
            let level = next_tok(&mut rest)
                .and_then(|t| t.parse::<u16>().ok())
                .ok_or_else(|| bad("checkpoint tuple lacks a level"))?;
            let (kind, name, value) = match tag {
                "E" => {
                    let name = take_str(&mut rest)
                        .and_then(QName::parse)
                        .ok_or_else(|| bad("checkpoint element carries a bad name"))?;
                    (Kind::Element, doc.pool.intern_qname(&name).0, u32::MAX)
                }
                "T" => {
                    let text =
                        take_str(&mut rest).ok_or_else(|| bad("checkpoint text lacks a value"))?;
                    (Kind::Text, u32::MAX, doc.pool.intern_text(text))
                }
                "M" => {
                    let c = take_str(&mut rest)
                        .ok_or_else(|| bad("checkpoint comment lacks a value"))?;
                    (Kind::Comment, u32::MAX, doc.pool.intern_comment(c))
                }
                "P" => {
                    let target = take_str(&mut rest)
                        .ok_or_else(|| bad("checkpoint instruction lacks a target"))?
                        .to_string();
                    let data = take_str(&mut rest)
                        .ok_or_else(|| bad("checkpoint instruction lacks data"))?;
                    (
                        Kind::ProcessingInstruction,
                        u32::MAX,
                        doc.pool.intern_instruction(&target, data),
                    )
                }
                other => return Err(bad(format!("unknown checkpoint entry '{other}'"))),
            };
            if node >= alloc_end {
                return Err(bad(format!(
                    "checkpoint node id {node} beyond allocation point {alloc_end}"
                )));
            }
            staged.push(Tuple {
                size: 0,
                level,
                kind,
                name,
                value,
                node,
            });
        }
        if staged.is_empty() {
            return Err(bad("cannot load an empty checkpoint"));
        }

        // Recompute sizes from the level sequence (used descendants
        // only), validating tree shape as we go.
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..staged.len() {
            let lvl = staged[i].level;
            if i == 0 {
                if lvl != 0 {
                    return Err(bad("checkpoint does not start at the root"));
                }
            } else {
                while let Some(&top) = stack.last() {
                    if staged[top].level >= lvl {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                match stack.last() {
                    Some(&top) if staged[top].level + 1 == lvl => {}
                    Some(&top) => {
                        return Err(bad(format!(
                            "checkpoint level jump from {} to {lvl}",
                            staged[top].level
                        )))
                    }
                    None => return Err(bad("checkpoint carries a second root")),
                }
                for &a in &stack {
                    staged[a].size += 1;
                }
            }
            stack.push(i);
        }

        // Page layout at the configured fill factor, node→pos over the
        // full checkpointed id space.
        let mut seen = std::collections::HashSet::with_capacity(staged.len());
        for t in &staged {
            if !seen.insert(t.node) {
                return Err(bad(format!("checkpoint node id {} duplicated", t.node)));
            }
        }
        for _ in 0..alloc_end {
            doc.node_pos.append(None);
        }
        let fill = cfg.fill_target();
        for chunk in staged.chunks(fill) {
            let page = doc.append_physical_page();
            let base = page * cfg.page_size;
            for (i, t) in chunk.iter().enumerate() {
                doc.write_tuple(base + i, *t);
                doc.node_pos.set(t.node, Some((base + i) as u64))?;
            }
            doc.rebuild_runs_in_page(page);
        }
        doc.used_count = staged.len() as u64;
        for (node, qn, prop) in attrs {
            if doc.node_pos.get(node).ok().flatten().is_none() {
                return Err(bad(format!("checkpoint attr row for dead node {node}")));
            }
            doc.push_attr(node, qn, prop);
        }
        // The dump carries tuples in document order; the element-name
        // and content indexes are derived state and are rebuilt rather
        // than serialized.
        doc.name_index = crate::names::NameIndex::from_base(crate::paged::name_index_base(&staged));
        let content = crate::values::ContentIndex::build_from_view(&doc);
        doc.content_index = content;
        doc.pool.compact();
        doc.attr_index.compact();
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_xml;
    use crate::update::InsertPosition;
    use crate::view::TreeView;
    use mbxq_xml::Document;

    fn cfg() -> PageConfig {
        PageConfig::new(8, 75).unwrap()
    }

    fn round_trip(doc: &PagedDoc) -> PagedDoc {
        let dump = doc.checkpoint_dump();
        let back = PagedDoc::from_checkpoint_dump(&dump, cfg(), doc.node_alloc_end()).unwrap();
        crate::invariants::check_paged(&back).unwrap();
        back
    }

    #[test]
    fn dump_round_trips_structure_ids_and_attributes() {
        let mut d = PagedDoc::parse_str(
            r#"<r a="1"><x b="2">text</x><!--note--><?pi data?></r>"#,
            cfg(),
        )
        .unwrap();
        let x = d.pre_to_node(1).unwrap();
        let sub = Document::parse_fragment("<y c=\"3\"/>").unwrap();
        d.insert(InsertPosition::After(x), &sub).unwrap();
        let back = round_trip(&d);
        assert_eq!(to_xml(&back).unwrap(), to_xml(&d).unwrap());
        assert_eq!(back.used_count(), d.used_count());
        assert_eq!(back.node_alloc_end(), d.node_alloc_end());
        // Node ids line up tuple by tuple.
        let mut p = 0u64;
        while let Some(q) = d.next_used_at_or_after(p) {
            let node = d.pre_to_node(q).unwrap();
            assert!(back.node_to_pre(node).is_ok(), "node {node:?} lost");
            p = q + 1;
        }
    }

    /// Regression: adjacent text tuples (left behind when the element
    /// between them is deleted) must survive a checkpoint as *separate*
    /// tuples with their original ids — XML text round-trips coalesce
    /// them, which is exactly why checkpoints do not go through XML.
    #[test]
    fn adjacent_text_tuples_survive_with_their_ids() {
        let mut d = PagedDoc::parse_str("<d>hello <kw/> world</d>", cfg()).unwrap();
        let second_text = d.pre_to_node(3).unwrap();
        let kw = d.pre_to_node(2).unwrap();
        d.delete(kw).unwrap();
        assert_eq!(d.used_count(), 3, "two adjacent text tuples remain");
        let back = round_trip(&d);
        assert_eq!(back.used_count(), 3);
        // The second text node is still individually addressable.
        let pre = back.node_to_pre(second_text).unwrap();
        assert_eq!(back.kind(pre), Some(Kind::Text));
        assert_eq!(to_xml(&back).unwrap(), to_xml(&d).unwrap());
    }

    #[test]
    fn deleted_ids_stay_dead_and_allocation_resumes() {
        let mut d = PagedDoc::parse_str("<r><a/><b/></r>", cfg()).unwrap();
        let a = d.pre_to_node(1).unwrap();
        d.delete(a).unwrap();
        let back = round_trip(&d);
        assert!(back.node_to_pre(a).is_err(), "deleted id must stay NULL");
        assert_eq!(back.node_alloc_end(), d.node_alloc_end());
    }

    #[test]
    fn malformed_dumps_are_rejected() {
        assert!(PagedDoc::from_checkpoint_dump("", cfg(), 5).is_err());
        assert!(PagedDoc::from_checkpoint_dump("E 0 1 2:ab ", cfg(), 5).is_err()); // root level 1
        assert!(PagedDoc::from_checkpoint_dump("E 0 0 2:ab E 1 2 1:c ", cfg(), 5).is_err()); // jump
        assert!(PagedDoc::from_checkpoint_dump("E 0 0 2:ab E 1 0 1:c ", cfg(), 5).is_err()); // 2 roots
        assert!(PagedDoc::from_checkpoint_dump("E 9 0 2:ab ", cfg(), 5).is_err()); // id beyond alloc
        assert!(PagedDoc::from_checkpoint_dump("E 0 0 2:ab A 3 1:k 1:v ", cfg(), 5).is_err()); // dead attr
        assert!(PagedDoc::from_checkpoint_dump("Z 0 0 2:ab ", cfg(), 5).is_err()); // unknown tag
        assert!(PagedDoc::from_checkpoint_dump("T 0 0 99:short ", cfg(), 5).is_err());
        // torn string
    }

    #[test]
    fn dump_strings_may_contain_newlines_and_separators() {
        let d = PagedDoc::parse_str(
            "<r a=\"x y\nz\">line one\nline 2:3 two</r>",
            PageConfig::new(8, 100).unwrap(),
        )
        .unwrap();
        let back = round_trip(&d);
        assert_eq!(to_xml(&back).unwrap(), to_xml(&d).unwrap());
    }
}
