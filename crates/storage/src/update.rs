//! Structural updates on the paged schema (Figure 7).
//!
//! * **Delete** "just leaves the tuples of the deleted nodes in place
//!   (they become unused tuples) without causing any shifts in pre
//!   numbers" (§3). Ancestor sizes are decremented by the delete volume.
//! * **Insert** first tries to place the subtree inside the free space of
//!   the target logical page (case 2a: tuples after the insert point are
//!   moved within the page, their `node→pos` entries updated, the new
//!   tuples written). If the page cannot hold it, the page is filled and
//!   the remainder spills into fresh pages that are appended physically
//!   and **spliced into the logical order** behind the target page (case
//!   2b) — all later pre numbers shift automatically through the view at
//!   zero cost.
//!
//! Physical work is proportional to the update volume plus at most one
//! page rewrite — never to the document size; the reports returned by
//! each operation expose the touched-tuple counts so the benchmarks can
//! verify that claim against the naive baseline.

use crate::paged::{PagedDoc, Tuple};
use crate::types::{Kind, NodeId, StorageError};
use crate::values::QnId;
use crate::view::TreeView;
use crate::Result;
use mbxq_xml::{Node, QName};

/// An element's content-index state: its name and `Some(text)` for
/// simple content (the concatenated direct text children — its XPath
/// string value) or `None` for complex content (element children).
/// `None` at the outer level marks a slot that is not a used element.
type ContentState = Option<(QnId, Option<String>)>;

/// Where to place an inserted subtree, mirroring XUpdate's structural
/// commands (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPosition {
    /// `<xupdate:insert-before>`: directly preceding sibling of the target.
    Before(NodeId),
    /// `<xupdate:insert-after>`: direct successor of the target.
    After(NodeId),
    /// `<xupdate:append>` without a `child` position: last child.
    LastChildOf(NodeId),
    /// `<xupdate:append child="k">`: k-th child (0-based; clamped to the
    /// child count).
    ChildAt(NodeId, usize),
}

/// Which of Figure 7's scenarios an insert executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertCase {
    /// Case 2a — the subtree fit into the target page's unused tuples.
    WithinPage,
    /// Case 2b — one or more overflow pages were spliced in.
    PageOverflow,
}

/// Physical-cost report of a structural insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReport {
    /// Which scenario ran.
    pub case: InsertCase,
    /// Tuples inserted (the update volume).
    pub inserted: u64,
    /// Pre-existing tuples whose physical position changed (each costs a
    /// `node→pos` maintenance write).
    pub moved: u64,
    /// Overflow pages appended (0 for case 2a).
    pub pages_added: usize,
    /// Ancestors whose `size` received a delta-increment.
    pub ancestors_updated: usize,
    /// Pre rank of the inserted subtree root after the insert.
    pub new_root_pre: u64,
}

/// Physical-cost report of a structural delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteReport {
    /// Tuples marked unused (the update volume).
    pub deleted: u64,
    /// Attribute rows dropped.
    pub attrs_removed: u64,
    /// Ancestors whose `size` received a delta-decrement.
    pub ancestors_updated: usize,
    /// Logical pages whose run encodings were rebuilt.
    pub pages_touched: usize,
}

impl PagedDoc {
    /// Inserts `subtree` at `position`, allocating node ids sequentially
    /// from the current allocation point. Returns the physical-cost
    /// report.
    pub fn insert(&mut self, position: InsertPosition, subtree: &Node) -> Result<InsertReport> {
        let base = self.node_alloc_end();
        self.insert_with_base(position, subtree, base)
    }

    /// Like [`PagedDoc::insert`], but the inserted tuples receive the
    /// explicit node ids `first_node..first_node + n`.
    ///
    /// The transaction layer reserves id ranges from a shared counter at
    /// staging time, so a transaction's private workspace, the commit
    /// replay on the master document, and crash recovery all assign the
    /// *same* ids — which later operations in the same transaction (or
    /// WAL record) may reference. Ids below the current allocation point
    /// must not collide with live nodes; gaps are padded with NULL
    /// `node→pos` entries (deleted-looking ids that were never used).
    pub fn insert_with_base(
        &mut self,
        position: InsertPosition,
        subtree: &Node,
        first_node: u64,
    ) -> Result<InsertReport> {
        // Resolve target and placement in the current view.
        let (insert_pre, parent_pre, base_level) = self.resolve_insert(position)?;
        // The insert adds children to the parent, which may flip its
        // content-index state (simple key growing, simple → complex):
        // capture the before-state while the tree is still untouched.
        let parent_content_before = match parent_pre {
            Some(p) => self.content_state(p),
            None => None,
        };

        // Stage the new tuples and their attribute rows; attribute rows
        // are keyed by node id, so they can be added independently of
        // physical placement (Figure 6).
        let mut staged = Vec::with_capacity(subtree.tuple_count() as usize);
        let mut attrs = Vec::new();
        self.stage_subtree_with_base(subtree, base_level, first_node, &mut staged, &mut attrs);
        let n = staged.len() as u64;
        // Materialize the node→pos entries (NULL until placed below),
        // padding any reservation gap with NULL entries.
        while self.node_alloc_end() < first_node + n {
            self.alloc_node_id();
        }
        for t in &staged {
            if self.node_pos.get(t.node).ok().flatten().is_some() {
                return Err(StorageError::InvalidTarget {
                    message: format!("node id {} already in use", t.node),
                });
            }
        }
        for (node, qn, prop) in attrs {
            let value = self.pool.prop(prop).unwrap_or_default().to_string();
            self.content_index.add_attr(qn, &value, node);
            self.push_attr(node, qn, prop);
        }
        // Register the new elements in the name index (staged is in
        // document order, so per-name delta order stays document order)
        // and classify them for the content index.
        for t in &staged {
            if t.kind == Kind::Element {
                self.name_index.add(QnId(t.name), t.node);
            }
        }
        self.register_staged_content(&staged);

        // Remember the parent by immutable node id: its pre may shift.
        let parent_node = match parent_pre {
            Some(p) => Some(self.pre_to_node(p)?),
            None => None,
        };
        let new_root_node = staged[0].node;

        let report = self.place_tuples(insert_pre, &staged)?;
        self.used_count += n;

        // Delta-increment the size of every ancestor (§3.2: deltas are
        // commutative, so concurrent committers need not serialize on the
        // root; the transaction layer exploits exactly this hook).
        let mut ancestors = 0;
        if let Some(pnode) = parent_node {
            let mut p = Some(self.node_to_pre(pnode)?);
            while let Some(pre) = p {
                self.add_size_delta(pre, n as i64)?;
                ancestors += 1;
                p = self.parent_of(pre);
            }
            // Re-key the parent in the content index if its state
            // changed (its key grew, or it went simple → complex).
            let parent_content_after = self.content_state(self.node_to_pre(pnode)?);
            self.apply_content_diff(pnode.0, parent_content_before, parent_content_after);
        }

        Ok(InsertReport {
            ancestors_updated: ancestors,
            new_root_pre: self.node_to_pre(NodeId(new_root_node))?,
            ..report
        })
    }

    /// Deletes the subtree rooted at `target` (XUpdate `remove`, §2.1).
    pub fn delete(&mut self, target: NodeId) -> Result<DeleteReport> {
        let pre = self.node_to_pre(target)?;
        let lvl = self
            .level(pre)
            .ok_or(StorageError::BadNode { node: target })?;
        if lvl == 0 {
            return Err(StorageError::InvalidTarget {
                message: "cannot remove the document root".into(),
            });
        }
        let parent = self.parent_of(pre).ok_or(StorageError::Corrupt {
            message: format!("non-root node at pre {pre} has no parent"),
        })?;
        let parent_node = self.pre_to_node(parent)?;
        // A delete may flip the parent's content state (losing its last
        // element child makes it simple): capture the before-state.
        let parent_content_before = self.content_state(parent);

        // Collect the used tuples of the region (self + descendants).
        let end = self.region_end(pre);
        let mut victims = Vec::new();
        let mut p = pre;
        while let Some(q) = self.next_used_at_or_after(p) {
            if q >= end {
                break;
            }
            victims.push(q);
            p = q + 1;
        }

        let mut attrs_removed = 0u64;
        let mut pages = std::collections::BTreeSet::new();
        for &v in &victims {
            let pos = self.pos_of_pre(v).expect("victim is in range");
            let node = self.node[pos];
            if self.kind[pos] == Kind::Element {
                self.name_index.remove(QnId(self.name[pos]), node);
                self.content_index
                    .remove_element(QnId(self.name[pos]), node);
            }
            if let Some(rows) = self.attr_index.remove(node) {
                attrs_removed += rows.len() as u64;
                for &r in &rows {
                    self.content_index
                        .remove_attr(self.attr_qn[r as usize], node);
                }
                // Rows stay in the attr columns as dead space; the index
                // is authoritative. (MonetDB similarly leaves deletions
                // to be vacuumed.)
            }
            self.set_node_pos(node, None);
            self.clear_slot(pos);
            pages.insert(pos >> self.shift);
        }
        for &page in &pages {
            self.rebuild_runs_in_page(page);
        }
        let m = victims.len() as u64;
        self.used_count -= m;

        // Delta-decrement ancestors.
        let mut ancestors = 0;
        let mut p = Some(self.node_to_pre(parent_node)?);
        while let Some(a) = p {
            self.add_size_delta(a, -(m as i64))?;
            ancestors += 1;
            p = self.parent_of(a);
        }
        // Re-key the parent if its content state changed (complex →
        // simple when the last element child went away, or a shrunken
        // simple key).
        let parent_content_after = self.content_state(self.node_to_pre(parent_node)?);
        self.apply_content_diff(parent_node.0, parent_content_before, parent_content_after);

        Ok(DeleteReport {
            deleted: m,
            attrs_removed,
            ancestors_updated: ancestors,
            pages_touched: pages.len(),
        })
    }

    // ------------------------------------------------------------------
    // Value updates (§2.1: these "map quite trivially to updates in the
    // underlying relational tables").
    // ------------------------------------------------------------------

    /// Replaces the content of the text/comment/instruction node `target`.
    pub fn update_value(&mut self, target: NodeId, new_value: &str) -> Result<()> {
        let pre = self.node_to_pre(target)?;
        let pos = self
            .pos_of_pre(pre)
            .ok_or(StorageError::BadNode { node: target })?;
        // A text edit changes the direct parent's string value; capture
        // its content state before the write (comment/PI edits never
        // contribute to string values, so only text needs this).
        let parent_content = if self.kind[pos] == Kind::Text {
            match self.parent_of(pre) {
                Some(pp) => Some((self.pre_to_node(pp)?, pp, self.content_state(pp))),
                None => None,
            }
        } else {
            None
        };
        let v = match self.kind[pos] {
            Kind::Text => self.pool.intern_text(new_value),
            Kind::Comment => self.pool.intern_comment(new_value),
            Kind::ProcessingInstruction => {
                let (target_str, _) = self
                    .pool
                    .instruction(self.value[pos])
                    .map(|(t, d)| (t.to_string(), d.to_string()))
                    .unwrap_or_default();
                self.pool.intern_instruction(&target_str, new_value)
            }
            Kind::Element => {
                return Err(StorageError::InvalidTarget {
                    message: "update_value targets a non-element node; use XUpdate \
                              update semantics for elements"
                        .into(),
                })
            }
        };
        self.value[pos] = v;
        if let Some((pnode, pp, before)) = parent_content {
            // A value update never shifts pres, so `pp` is still valid.
            let after = self.content_state(pp);
            self.apply_content_diff(pnode.0, before, after);
        }
        Ok(())
    }

    /// Renames the element `target` (XUpdate `rename`).
    pub fn rename(&mut self, target: NodeId, name: &QName) -> Result<()> {
        let pre = self.node_to_pre(target)?;
        let pos = self
            .pos_of_pre(pre)
            .ok_or(StorageError::BadNode { node: target })?;
        if self.kind[pos] != Kind::Element {
            return Err(StorageError::InvalidTarget {
                message: "rename targets an element".into(),
            });
        }
        let qn = self.pool.intern_qname(name);
        let old = QnId(self.name[pos]);
        if old != qn {
            let node = self.node[pos];
            self.name_index.remove(old, node);
            self.name_index.add(qn, node);
            // The content key is name-independent; move it between
            // name buckets unchanged.
            let key = self.content_state(pre).and_then(|(_, k)| k);
            self.content_index
                .rename_element(old, qn, key.as_deref(), node);
        }
        self.name[pos] = qn.0;
        Ok(())
    }

    /// Sets (adds or replaces) an attribute on the element `target`.
    pub fn set_attribute(&mut self, target: NodeId, name: &QName, value: &str) -> Result<()> {
        let pre = self.node_to_pre(target)?;
        let pos = self
            .pos_of_pre(pre)
            .ok_or(StorageError::BadNode { node: target })?;
        if self.kind[pos] != Kind::Element {
            return Err(StorageError::InvalidTarget {
                message: "attributes can only be set on elements".into(),
            });
        }
        let qn = self.pool.intern_qname(name);
        let prop = self.pool.intern_prop(value);
        let node = self.node[pos];
        if let Some(rows) = self.attr_index.get(node) {
            for &r in rows {
                if self.attr_qn[r as usize] == qn {
                    self.attr_prop[r as usize] = prop;
                    self.content_index.remove_attr(qn, node);
                    self.content_index.add_attr(qn, value, node);
                    return Ok(());
                }
            }
        }
        self.content_index.add_attr(qn, value, node);
        self.push_attr(node, qn, prop);
        Ok(())
    }

    /// Removes an attribute from the element `target`. Returns whether an
    /// attribute was actually removed.
    pub fn remove_attribute(&mut self, target: NodeId, name: &QName) -> Result<bool> {
        let pre = self.node_to_pre(target)?;
        let pos = self
            .pos_of_pre(pre)
            .ok_or(StorageError::BadNode { node: target })?;
        let node = self.node[pos];
        let Some(qn) = self.pool.lookup_qname(name) else {
            return Ok(false);
        };
        let hit = self
            .attr_index
            .get(node)
            .and_then(|rows| rows.iter().position(|&r| self.attr_qn[r as usize] == qn));
        if let Some(i) = hit {
            self.attr_index
                .rows_mut(node)
                .expect("entry exists, just probed")
                .remove(i);
            self.content_index.remove_attr(qn, node);
            return Ok(true);
        }
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The content-index state of the element at `pre`: `(name,
    /// Some(string value))` for simple content, `(name, None)` for
    /// complex. `None` for non-elements. Stops at the first element
    /// child, so simple elements cost O(direct children) and complex
    /// ones exit early.
    pub(crate) fn content_state(&self, pre: u64) -> ContentState {
        let pos = self.pos_of_pre(pre)?;
        if !self.used[pos] || self.kind[pos] != Kind::Element {
            return None;
        }
        let qn = QnId(self.name[pos]);
        let end = self.region_end(pre);
        let mut text = String::new();
        let mut p = pre + 1;
        while let Some(q) = self.next_used_at_or_after(p) {
            if q >= end {
                break;
            }
            let qpos = self.pos_of_pre(q).expect("used slot resolves");
            match self.kind[qpos] {
                Kind::Element => return Some((qn, None)),
                Kind::Text => text.push_str(self.pool.text(self.value[qpos]).unwrap_or("")),
                _ => {} // comments/PIs contribute no string value
            }
            p = q + 1;
        }
        Some((qn, Some(text)))
    }

    /// Moves `node` between content-index states (remove-then-add; a
    /// no-op when nothing changed).
    pub(crate) fn apply_content_diff(&mut self, node: u64, old: ContentState, new: ContentState) {
        if old == new {
            return;
        }
        if let Some((qn, key)) = old {
            self.content_index
                .remove_element_keyed(qn, key.as_deref(), node);
        }
        if let Some((qn, key)) = new {
            self.content_index.add_element(qn, key.as_deref(), node);
        }
    }

    /// Classifies a freshly staged (document-ordered) subtree and
    /// registers every element in the content index — the insert-path
    /// twin of `ContentIndex::build_from_view`, working off the staged
    /// tuples so it never re-reads the tree.
    fn register_staged_content(&mut self, staged: &[Tuple]) {
        struct Frame {
            level: u16,
            node: u64,
            qn: u32,
            has_elem_child: bool,
            text: String,
        }
        let mut stack: Vec<Frame> = Vec::new();
        for t in staged {
            while stack.last().is_some_and(|f| f.level >= t.level) {
                let f = stack.pop().expect("just checked");
                let key = if f.has_elem_child { None } else { Some(f.text) };
                self.content_index
                    .add_element(QnId(f.qn), key.as_deref(), f.node);
            }
            match t.kind {
                Kind::Element => {
                    if let Some(parent) = stack.last_mut() {
                        parent.has_elem_child = true;
                    }
                    stack.push(Frame {
                        level: t.level,
                        node: t.node,
                        qn: t.name,
                        has_elem_child: false,
                        text: String::new(),
                    });
                }
                Kind::Text => {
                    if let Some(parent) = stack.last_mut() {
                        parent.text.push_str(self.pool.text(t.value).unwrap_or(""));
                    }
                }
                _ => {}
            }
        }
        while let Some(f) = stack.pop() {
            let key = if f.has_elem_child { None } else { Some(f.text) };
            self.content_index
                .add_element(QnId(f.qn), key.as_deref(), f.node);
        }
    }

    /// Applies a size delta to the used tuple at `pre`.
    pub(crate) fn add_size_delta(&mut self, pre: u64, delta: i64) -> Result<()> {
        let pos = self.pos_of_pre(pre).ok_or(StorageError::BadPre {
            pre,
            context: "applying a size delta",
        })?;
        let new = self.size[pos] as i64 + delta;
        if new < 0 {
            return Err(StorageError::Corrupt {
                message: format!("size of pre {pre} would become negative"),
            });
        }
        self.size[pos] = new as u64;
        Ok(())
    }

    /// Resolves an [`InsertPosition`] to `(insert_pre, parent_pre,
    /// base_level)` in the current view. `insert_pre` is the view slot at
    /// which the subtree's first tuple must be placed.
    fn resolve_insert(&self, position: InsertPosition) -> Result<(u64, Option<u64>, u16)> {
        match position {
            InsertPosition::Before(t) => {
                let pre = self.node_to_pre(t)?;
                let lvl = self.level(pre).ok_or(StorageError::BadNode { node: t })?;
                if lvl == 0 {
                    return Err(StorageError::InvalidTarget {
                        message: "cannot insert a sibling before the document root".into(),
                    });
                }
                let parent = self.parent_of(pre);
                Ok((pre, parent, lvl))
            }
            InsertPosition::After(t) => {
                let pre = self.node_to_pre(t)?;
                let lvl = self.level(pre).ok_or(StorageError::BadNode { node: t })?;
                if lvl == 0 {
                    return Err(StorageError::InvalidTarget {
                        message: "cannot insert a sibling after the document root".into(),
                    });
                }
                let parent = self.parent_of(pre);
                Ok((self.region_end(pre), parent, lvl))
            }
            InsertPosition::LastChildOf(t) => {
                let pre = self.node_to_pre(t)?;
                let lvl = self.level(pre).ok_or(StorageError::BadNode { node: t })?;
                if self.kind(pre) != Some(Kind::Element) {
                    return Err(StorageError::InvalidTarget {
                        message: "only elements can take children".into(),
                    });
                }
                Ok((self.region_end(pre), Some(pre), lvl + 1))
            }
            InsertPosition::ChildAt(t, k) => {
                let pre = self.node_to_pre(t)?;
                let lvl = self.level(pre).ok_or(StorageError::BadNode { node: t })?;
                if self.kind(pre) != Some(Kind::Element) {
                    return Err(StorageError::InvalidTarget {
                        message: "only elements can take children".into(),
                    });
                }
                // Walk to the k-th child; falling off the end appends.
                let end = self.region_end(pre);
                let mut seen = 0usize;
                let mut p = pre + 1;
                while let Some(q) = self.next_used_at_or_after(p) {
                    if q >= end {
                        break;
                    }
                    if self.level(q) == Some(lvl + 1) {
                        if seen == k {
                            return Ok((q, Some(pre), lvl + 1));
                        }
                        seen += 1;
                    }
                    p = self.region_end(q);
                }
                Ok((end, Some(pre), lvl + 1))
            }
        }
    }

    /// Places `staged` tuples at view position `insert_pre`, running case
    /// 2a or 2b of Figure 7. Returns a partial report (ancestor fields
    /// filled by the caller).
    #[allow(clippy::explicit_counter_loop)] // cursor spans several loops
    fn place_tuples(&mut self, insert_pre: u64, staged: &[Tuple]) -> Result<InsertReport> {
        let page_size = self.cfg.page_size;
        let n = staged.len();

        // Inserting at the very end of the view gets a fresh page first,
        // so the offset arithmetic below is uniform.
        let insert_pre = if insert_pre >= self.pre_end() {
            let lp = self.pages.num_pages();
            self.append_physical_page();
            (lp << self.shift) as u64
        } else {
            insert_pre
        };

        let target_logical = (insert_pre >> self.shift) as usize;
        let phys = self.pages.logical_to_physical(target_logical)?;
        let base = phys * page_size;
        let offset = (insert_pre & (page_size as u64 - 1)) as usize;

        // Partition the page's used tuples around the insert point.
        let mut before: Vec<Tuple> = Vec::new();
        let mut after: Vec<Tuple> = Vec::new();
        for pos in base..base + page_size {
            if self.used[pos] {
                if pos - base < offset {
                    before.push(self.read_tuple(pos));
                } else {
                    after.push(self.read_tuple(pos));
                }
            }
        }

        if before.len() + after.len() + n <= page_size {
            // ---- Case 2a: rewrite the single page. ----
            // Compacting interior holes while we are here is free: the
            // view's semantics depend only on the order of used tuples.
            let mut moved = 0u64;
            for pos in base..base + page_size {
                self.clear_slot(pos);
            }
            let mut cursor = base;
            for t in before.iter().chain(staged.iter()).chain(after.iter()) {
                self.write_tuple(cursor, *t);
                match self.node_pos.get(t.node) {
                    Ok(Some(old)) if old == cursor as u64 => {}
                    _ => {
                        self.set_node_pos(t.node, Some(cursor as u64));
                        moved += 1;
                    }
                }
                cursor += 1;
            }
            self.rebuild_runs_in_page(phys);
            Ok(InsertReport {
                case: InsertCase::WithinPage,
                inserted: n as u64,
                moved: moved - n as u64, // new tuples are not "moved"
                pages_added: 0,
                ancestors_updated: 0,
                new_root_pre: 0,
            })
        } else {
            // ---- Case 2b: fill the page, spill into spliced pages. ----
            let mut moved = 0u64;
            let mut sequence: Vec<Tuple> = Vec::with_capacity(n + after.len());
            sequence.extend_from_slice(staged);
            sequence.extend_from_slice(&after);

            for pos in base..base + page_size {
                self.clear_slot(pos);
            }
            let mut cursor = base;
            for t in &before {
                self.write_tuple(cursor, *t);
                if self.node_pos.get(t.node) != Ok(Some(cursor as u64)) {
                    self.set_node_pos(t.node, Some(cursor as u64));
                    moved += 1;
                }
                cursor += 1;
            }
            // Fill the target page completely (the paper puts k into the
            // last free slot of page 0 before spilling l and m).
            let head = (page_size - before.len()).min(sequence.len());
            for t in &sequence[..head] {
                self.write_tuple(cursor, *t);
                if self.node_pos.get(t.node) != Ok(Some(cursor as u64)) {
                    self.set_node_pos(t.node, Some(cursor as u64));
                    moved += 1;
                }
                cursor += 1;
            }
            self.rebuild_runs_in_page(phys);

            // Spill the remainder into fresh pages spliced after the
            // target page, each filled to the configured fill target so
            // future inserts nearby find free space again.
            let fill = self.cfg.fill_target();
            let mut pages_added = 0usize;
            let mut rest = &sequence[head..];
            let mut splice_at = target_logical + 1;
            while !rest.is_empty() {
                let chunk_len = rest.len().min(fill);
                let new_phys = self.splice_physical_page(splice_at)?;
                let nbase = new_phys * page_size;
                for (i, t) in rest[..chunk_len].iter().enumerate() {
                    self.write_tuple(nbase + i, *t);
                    if self.node_pos.get(t.node) != Ok(Some((nbase + i) as u64)) {
                        self.set_node_pos(t.node, Some((nbase + i) as u64));
                        moved += 1;
                    }
                }
                self.rebuild_runs_in_page(new_phys);
                rest = &rest[chunk_len..];
                splice_at += 1;
                pages_added += 1;
            }
            Ok(InsertReport {
                case: InsertCase::PageOverflow,
                inserted: n as u64,
                moved: moved - n as u64,
                pages_added,
                ancestors_updated: 0,
                new_root_pre: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageConfig;
    use mbxq_xml::Document;

    const PAPER_DOC: &str =
        "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";

    fn figure4_doc() -> PagedDoc {
        PagedDoc::parse_str(PAPER_DOC, PageConfig::new(8, 88).unwrap()).unwrap()
    }

    fn node_of(d: &PagedDoc, local: &str) -> NodeId {
        let mut p = 0;
        while let Some(q) = d.next_used_at_or_after(p) {
            if let Some(qid) = d.name_id(q) {
                if d.pool().qname(qid).unwrap().local == local {
                    return d.pre_to_node(q).unwrap();
                }
            }
            p = q + 1;
        }
        panic!("element {local} not found");
    }

    fn names_in_order(d: &PagedDoc) -> Vec<String> {
        let mut out = Vec::new();
        let mut p = 0;
        while let Some(q) = d.next_used_at_or_after(p) {
            if let Some(qid) = d.name_id(q) {
                out.push(d.pool().qname(qid).unwrap().local.clone());
            }
            p = q + 1;
        }
        out
    }

    /// The paper's running update: append `<k><l/><m/></k>` to g.
    #[test]
    fn figure3_insert_shapes_sizes() {
        let mut d = figure4_doc();
        let g = node_of(&d, "g");
        let sub = Document::parse_fragment("<k><l/><m/></k>").unwrap();
        let report = d.insert(InsertPosition::LastChildOf(g), &sub).unwrap();

        // Page 0 had exactly one unused slot; three nodes overflow.
        assert_eq!(report.case, InsertCase::PageOverflow);
        assert_eq!(report.inserted, 3);
        assert_eq!(report.pages_added, 1);
        // g and f and a get +3 (Figure 3's size+3 annotation).
        assert_eq!(report.ancestors_updated, 3);

        let a = d.node_to_pre(node_of(&d, "a")).unwrap();
        let f = d.node_to_pre(node_of(&d, "f")).unwrap();
        let g_pre = d.node_to_pre(g).unwrap();
        assert_eq!(TreeView::size(&d, a), 12);
        assert_eq!(TreeView::size(&d, f), 7);
        assert_eq!(TreeView::size(&d, g_pre), 3);

        // Document order: a b c d e f g k l m h i j.
        assert_eq!(
            names_in_order(&d),
            ["a", "b", "c", "d", "e", "f", "g", "k", "l", "m", "h", "i", "j"]
        );
        // k went into page 0's free slot (paper: "we insert eight new
        // tuples, of which only the first two represent real nodes
        // (l and m)").
        let k_pre = d.node_to_pre(node_of(&d, "k")).unwrap();
        assert_eq!(k_pre, 7);
        let l_pre = d.node_to_pre(node_of(&d, "l")).unwrap();
        assert_eq!(l_pre, 8); // first slot of the spliced page
                              // h shifted from pre 8 to pre 16 purely through the view.
        let h_pre = d.node_to_pre(node_of(&d, "h")).unwrap();
        assert_eq!(h_pre, 16);
        assert_eq!(d.stats().pages, 3);
    }

    #[test]
    fn within_page_insert_moves_only_page_tuples() {
        let mut d = figure4_doc();
        // Page 1 (h,i,j + 5 unused) has room for a 2-node subtree.
        let i = node_of(&d, "i");
        let sub = Document::parse_fragment("<x><y/></x>").unwrap();
        let report = d.insert(InsertPosition::Before(i), &sub).unwrap();
        assert_eq!(report.case, InsertCase::WithinPage);
        assert_eq!(report.inserted, 2);
        // Only i and j had to move.
        assert_eq!(report.moved, 2);
        assert_eq!(report.pages_added, 0);
        assert_eq!(
            names_in_order(&d),
            ["a", "b", "c", "d", "e", "f", "g", "h", "x", "y", "i", "j"]
        );
        // h grew by 2; f and a likewise.
        let h = d.node_to_pre(node_of(&d, "h")).unwrap();
        assert_eq!(TreeView::size(&d, h), 4);
        assert_eq!(report.ancestors_updated, 3);
    }

    #[test]
    fn insert_after_places_behind_subtree() {
        let mut d = figure4_doc();
        let b = node_of(&d, "b");
        let sub = Document::parse_fragment("<n/>").unwrap();
        d.insert(InsertPosition::After(b), &sub).unwrap();
        assert_eq!(
            names_in_order(&d),
            ["a", "b", "c", "d", "e", "n", "f", "g", "h", "i", "j"]
        );
        // n is a sibling of b: same level, parent a grew by 1.
        let n_pre = d.node_to_pre(node_of(&d, "n")).unwrap();
        assert_eq!(d.level(n_pre), Some(1));
        let a_pre = d.node_to_pre(node_of(&d, "a")).unwrap();
        assert_eq!(TreeView::size(&d, a_pre), 10);
    }

    #[test]
    fn child_at_positions_within_children() {
        let mut d = figure4_doc();
        let c = node_of(&d, "c"); // children d, e
        let sub = Document::parse_fragment("<mid/>").unwrap();
        d.insert(InsertPosition::ChildAt(c, 1), &sub).unwrap();
        assert_eq!(
            names_in_order(&d),
            ["a", "b", "c", "d", "mid", "e", "f", "g", "h", "i", "j"]
        );
        // Appending past the end clamps to last child.
        let sub2 = Document::parse_fragment("<tail/>").unwrap();
        d.insert(InsertPosition::ChildAt(c, 99), &sub2).unwrap();
        assert_eq!(
            names_in_order(&d),
            ["a", "b", "c", "d", "mid", "e", "tail", "f", "g", "h", "i", "j"]
        );
    }

    #[test]
    fn delete_leaves_tuples_in_place_without_shifts() {
        let mut d = figure4_doc();
        let h = node_of(&d, "h");
        let g_pre_before = d.node_to_pre(node_of(&d, "g")).unwrap();
        let report = d.delete(h).unwrap();
        assert_eq!(report.deleted, 3); // h, i, j
        assert_eq!(report.ancestors_updated, 2); // f, a
                                                 // No pre shifts for surviving nodes.
        assert_eq!(d.node_to_pre(node_of(&d, "g")).unwrap(), g_pre_before);
        assert_eq!(names_in_order(&d), ["a", "b", "c", "d", "e", "f", "g"]);
        let a_pre = d.node_to_pre(node_of(&d, "a")).unwrap();
        let f_pre = d.node_to_pre(node_of(&d, "f")).unwrap();
        assert_eq!(TreeView::size(&d, a_pre), 6);
        assert_eq!(TreeView::size(&d, f_pre), 1);
        assert_eq!(d.stats().used, 7);
        // The freed slots merged into the page's unused run.
        assert!(d.level(8).is_none() && d.level(9).is_none() && d.level(10).is_none());
    }

    #[test]
    fn delete_then_insert_reuses_free_space() {
        let mut d = figure4_doc();
        let h = node_of(&d, "h");
        d.delete(h).unwrap();
        // Page 1 is now fully free; inserting under f should fit in-page
        // (insert point = after g, which is page 0 slot 7 — one free
        // slot; a 4-tuple subtree overflows page 0 but page 1's space is
        // found… actually the insert targets page 0; verify it still
        // works end-to-end and order is right).
        let f = node_of(&d, "f");
        let sub = Document::parse_fragment("<p><q/><r/><s/></p>").unwrap();
        d.insert(InsertPosition::LastChildOf(f), &sub).unwrap();
        assert_eq!(
            names_in_order(&d),
            ["a", "b", "c", "d", "e", "f", "g", "p", "q", "r", "s"]
        );
        let f_pre = d.node_to_pre(node_of(&d, "f")).unwrap();
        assert_eq!(TreeView::size(&d, f_pre), 5);
    }

    #[test]
    fn deleting_root_is_rejected() {
        let mut d = figure4_doc();
        let a = node_of(&d, "a");
        assert!(matches!(
            d.delete(a),
            Err(StorageError::InvalidTarget { .. })
        ));
    }

    #[test]
    fn sibling_of_root_is_rejected() {
        let mut d = figure4_doc();
        let a = node_of(&d, "a");
        let sub = Document::parse_fragment("<x/>").unwrap();
        assert!(d.insert(InsertPosition::Before(a), &sub).is_err());
        assert!(d.insert(InsertPosition::After(a), &sub).is_err());
    }

    #[test]
    fn value_updates() {
        let cfg = PageConfig::default();
        let mut d = PagedDoc::parse_str("<a>old<b k=\"1\"/></a>", cfg).unwrap();
        let text_node = d.pre_to_node(1).unwrap();
        d.update_value(text_node, "new").unwrap();
        assert_eq!(d.string_value(0), "new");

        let b = d.pre_to_node(2).unwrap();
        d.set_attribute(b, &QName::local("k"), "2").unwrap();
        assert_eq!(d.attribute_value(2, &QName::local("k")), Some("2".into()));
        d.set_attribute(b, &QName::local("fresh"), "x").unwrap();
        assert_eq!(d.attributes(2).len(), 2);
        assert!(d.remove_attribute(b, &QName::local("k")).unwrap());
        assert!(!d.remove_attribute(b, &QName::local("k")).unwrap());
        assert_eq!(d.attributes(2).len(), 1);

        d.rename(b, &QName::local("renamed")).unwrap();
        let qid = d.name_id(2).unwrap();
        assert_eq!(d.pool().qname(qid).unwrap().local, "renamed");
    }

    /// Every mutation path must keep the content index consistent
    /// (index ≡ scan is part of `check_paged`), and the probes must
    /// track the live values.
    #[test]
    fn content_index_follows_every_mutation_path() {
        use crate::values::NumRange;
        let cfg = PageConfig::new(8, 75).unwrap();
        let mut d = PagedDoc::parse_str(
            r#"<site><item id="i0"><price>10</price></item><item id="i1"><price>50</price></item></site>"#,
            cfg,
        )
        .unwrap();
        crate::invariants::check_paged(&d).unwrap();
        let price_qn = d.pool().lookup_qname(&QName::local("price")).unwrap();
        let id_qn = d.pool().lookup_qname(&QName::local("id")).unwrap();
        assert_eq!(d.nodes_with_attr_value(id_qn, "i0").unwrap().len(), 1);
        assert_eq!(d.elements_with_text(price_qn, "50").unwrap().exact.len(), 1);
        assert_eq!(
            d.elements_with_text_range(price_qn, &NumRange::at_least(20.0, true))
                .unwrap()
                .exact
                .len(),
            1
        );

        // Text edit re-keys the parent.
        let price_text = {
            let price_pre = d.elements_with_text(price_qn, "10").unwrap().exact[0];
            d.pre_to_node(price_pre + 1).unwrap()
        };
        d.update_value(price_text, "49").unwrap();
        crate::invariants::check_paged(&d).unwrap();
        assert!(d
            .elements_with_text(price_qn, "10")
            .unwrap()
            .exact
            .is_empty());
        assert_eq!(
            d.elements_with_text_range(price_qn, &NumRange::at_least(20.0, true))
                .unwrap()
                .exact
                .len(),
            2
        );

        // Attribute set/replace/remove.
        let i0 = d
            .pre_to_node(d.nodes_with_attr_value(id_qn, "i0").unwrap()[0])
            .unwrap();
        d.set_attribute(i0, &QName::local("id"), "i9").unwrap();
        crate::invariants::check_paged(&d).unwrap();
        assert!(d.nodes_with_attr_value(id_qn, "i0").unwrap().is_empty());
        assert_eq!(d.nodes_with_attr_value(id_qn, "i9").unwrap().len(), 1);
        d.remove_attribute(i0, &QName::local("id")).unwrap();
        crate::invariants::check_paged(&d).unwrap();
        assert!(d.nodes_with_attr_value(id_qn, "i9").unwrap().is_empty());

        // Insert flips a simple parent to complex; delete flips it back.
        let price_pre = d.elements_with_text(price_qn, "49").unwrap().exact[0];
        let price_node = d.pre_to_node(price_pre).unwrap();
        let sub = Document::parse_fragment("<note/>").unwrap();
        d.insert(InsertPosition::LastChildOf(price_node), &sub)
            .unwrap();
        crate::invariants::check_paged(&d).unwrap();
        let probe = d.elements_with_text(price_qn, "49").unwrap();
        assert!(probe.exact.is_empty(), "price went complex");
        assert_eq!(probe.unindexed.len(), 1);
        let note = node_of(&d, "note");
        d.delete(note).unwrap();
        crate::invariants::check_paged(&d).unwrap();
        assert_eq!(d.elements_with_text(price_qn, "49").unwrap().exact.len(), 1);

        // Rename moves between name buckets.
        d.rename(price_node, &QName::local("cost")).unwrap();
        crate::invariants::check_paged(&d).unwrap();
        let cost_qn = d.pool().lookup_qname(&QName::local("cost")).unwrap();
        assert!(d
            .elements_with_text(price_qn, "49")
            .unwrap()
            .exact
            .is_empty());
        assert_eq!(d.elements_with_text(cost_qn, "49").unwrap().exact.len(), 1);

        // Vacuum and checkpoint round-trips rebuild the index.
        d.vacuum().unwrap();
        crate::invariants::check_paged(&d).unwrap();
        assert_eq!(d.content_index_delta_len(), 0);
        assert_eq!(d.elements_with_text(cost_qn, "49").unwrap().exact.len(), 1);
        let dump = d.checkpoint_dump();
        let back = PagedDoc::from_checkpoint_dump(&dump, cfg, d.node_alloc_end()).unwrap();
        crate::invariants::check_paged(&back).unwrap();
        let cost_qn2 = back.pool().lookup_qname(&QName::local("cost")).unwrap();
        assert_eq!(
            back.elements_with_text(cost_qn2, "49").unwrap().exact.len(),
            1
        );
    }

    #[test]
    fn attributes_survive_tuple_moves() {
        let mut d = PagedDoc::parse_str(
            r#"<a><b id="b1"/><c id="c1"/></a>"#,
            PageConfig::new(8, 50).unwrap(),
        )
        .unwrap();
        let b = node_of(&d, "b");
        let sub = Document::parse_fragment("<z/>").unwrap();
        // Insert before b: b and c shift within their page.
        d.insert(InsertPosition::Before(b), &sub).unwrap();
        let b_pre = d.node_to_pre(node_of(&d, "b")).unwrap();
        let c_pre = d.node_to_pre(node_of(&d, "c")).unwrap();
        assert_eq!(
            d.attribute_value(b_pre, &QName::local("id")),
            Some("b1".to_string())
        );
        assert_eq!(
            d.attribute_value(c_pre, &QName::local("id")),
            Some("c1".to_string())
        );
    }

    #[test]
    fn bulk_insert_spans_multiple_new_pages() {
        let mut d = figure4_doc();
        let g = node_of(&d, "g");
        // 20 children overflow well past one spill page (fill target 7).
        let mut xml = String::from("<big>");
        for i in 0..20 {
            xml.push_str(&format!("<c{i}/>"));
        }
        xml.push_str("</big>");
        let sub = Document::parse_fragment(&xml).unwrap();
        let report = d.insert(InsertPosition::LastChildOf(g), &sub).unwrap();
        assert_eq!(report.case, InsertCase::PageOverflow);
        assert_eq!(report.inserted, 21);
        assert!(report.pages_added >= 3);
        let g_pre = d.node_to_pre(g).unwrap();
        assert_eq!(TreeView::size(&d, g_pre), 21);
        assert_eq!(d.stats().used, 31);
        // Everything still navigable.
        let a_pre = d.node_to_pre(node_of(&d, "a")).unwrap();
        assert_eq!(TreeView::size(&d, a_pre), 30);
        assert_eq!(d.region_end(a_pre), {
            let j_pre = d.node_to_pre(node_of(&d, "j")).unwrap();
            j_pre + 1
        });
    }

    #[test]
    fn insert_at_document_end_appends_page() {
        // Root's region ends at the last used tuple; appending to the
        // root when the last page is full must append a page.
        let mut d = PagedDoc::parse_str("<a><b/></a>", PageConfig::new(4, 50).unwrap()).unwrap();
        let a = d.pre_to_node(0).unwrap();
        let sub = Document::parse_fragment("<c><d/><e/></c>").unwrap();
        let report = d.insert(InsertPosition::LastChildOf(a), &sub).unwrap();
        assert_eq!(report.inserted, 3);
        assert_eq!(names_in_order(&d), ["a", "b", "c", "d", "e"]);
    }
}
