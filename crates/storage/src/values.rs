//! Interned side tables: `qn`, `prop`, and the node-value tables.
//!
//! Figure 5: "`prop`, holding all unique attribute values (as strings)"
//! and "`qn`, with one tuple for each qualified name (element or
//! attribute)". Both are append-only interning tables keyed by a void
//! column, so lookups from tree tuples are positional. The text, comment
//! and instruction tables hold node values, also void-keyed.
//!
//! # Structural sharing
//!
//! The pool participates in the O(touched-pages) commit discipline: each
//! interner is split into an immutable, [`Arc`]-shared **base** (built by
//! the shredder, or by the last compaction) plus a small mutable
//! **delta** holding values interned since. Cloning the pool clones the
//! base pointers and the (small) deltas — O(delta), not O(all strings) —
//! so a transaction's private workspace and a commit's new version never
//! copy the document's text heap. Interned ids are *absolute* (base
//! first, delta continuing the sequence) and survive compaction, which
//! folds the delta into a fresh shared base. Compaction runs only at
//! explicit maintenance points (shredding, vacuum, checkpoint) — never
//! on the intern path, which would otherwise spike a commit to
//! O(document) while it holds the global commit lock.

use mbxq_xml::QName;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Id of a qualified name in the `qn` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QnId(pub u32);

/// Id of a unique attribute value in the `prop` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PropId(pub u32);

/// An append-only interner backing one side table, split into a shared
/// base and a private delta (see the module docs).
#[derive(Debug, Clone)]
struct Interner<K> {
    base: Arc<InternSet<K>>,
    delta_values: Vec<K>,
    delta_index: HashMap<K, u32>,
}

/// The immutable, shareable half of an [`Interner`].
#[derive(Debug)]
struct InternSet<K> {
    values: Vec<K>,
    index: HashMap<K, u32>,
}

impl<K> Default for Interner<K> {
    fn default() -> Self {
        Interner {
            base: Arc::new(InternSet {
                values: Vec::new(),
                index: HashMap::new(),
            }),
            delta_values: Vec::new(),
            delta_index: HashMap::new(),
        }
    }
}

impl<K: Clone + Eq + Hash> Interner<K> {
    fn intern<Q>(&mut self, key: &Q) -> u32
    where
        K: Borrow<Q>,
        Q: ?Sized + Eq + Hash + ToOwned<Owned = K>,
    {
        if let Some(&id) = self.base.index.get(key) {
            return id;
        }
        if let Some(&id) = self.delta_index.get(key) {
            return id;
        }
        let id = u32::try_from(self.base.values.len() + self.delta_values.len())
            .expect("interner overflow");
        let owned = key.to_owned();
        self.delta_values.push(owned.clone());
        self.delta_index.insert(owned, id);
        id
    }

    fn get(&self, id: u32) -> Option<&K> {
        let idx = id as usize;
        if idx < self.base.values.len() {
            self.base.values.get(idx)
        } else {
            self.delta_values.get(idx - self.base.values.len())
        }
    }

    fn lookup<Q>(&self, key: &Q) -> Option<u32>
    where
        K: Borrow<Q>,
        Q: ?Sized + Eq + Hash,
    {
        self.base
            .index
            .get(key)
            .or_else(|| self.delta_index.get(key))
            .copied()
    }

    fn len(&self) -> usize {
        self.base.values.len() + self.delta_values.len()
    }

    /// Folds the delta into a fresh shared base; ids are preserved.
    fn compact(&mut self) {
        if self.delta_values.is_empty() {
            return;
        }
        let mut set = InternSet {
            values: self.base.values.clone(),
            index: self.base.index.clone(),
        };
        for v in self.delta_values.drain(..) {
            let id = u32::try_from(set.values.len()).expect("interner overflow");
            set.index.insert(v.clone(), id);
            set.values.push(v);
        }
        self.delta_index.clear();
        self.base = Arc::new(set);
    }

    /// A clone sharing nothing with `self` (benchmark baseline).
    fn deep_clone(&self) -> Interner<K> {
        Interner {
            base: Arc::new(InternSet {
                values: self.base.values.clone(),
                index: self.base.index.clone(),
            }),
            delta_values: self.delta_values.clone(),
            delta_index: self.delta_index.clone(),
        }
    }

    /// Sums `per` over all interned values (heap accounting).
    fn approx_heap(&self, per: impl Fn(&K) -> usize) -> usize {
        self.base
            .values
            .iter()
            .chain(self.delta_values.iter())
            .map(per)
            .sum()
    }
}

/// All interned side tables shared by a document store.
///
/// Grouped in one struct because every schema variant (read-only, paged,
/// naive) needs the identical set, and the *same* pool instance lets the
/// ro-vs-up benchmarks rule out interning differences. Cloning is cheap
/// (shared bases + small deltas); see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    qnames: Interner<QName>,
    props: Interner<String>,
    texts: Interner<String>,
    comments: Interner<String>,
    instructions: Interner<String>,
}

impl ValuePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a qualified name, returning its `qn` id.
    pub fn intern_qname(&mut self, name: &QName) -> QnId {
        QnId(self.qnames.intern(name))
    }

    /// The qualified name behind a `qn` id.
    pub fn qname(&self, id: QnId) -> Option<&QName> {
        self.qnames.get(id.0)
    }

    /// Looks up a name without interning (query-side: an XPath name test
    /// for a name that was never interned matches nothing).
    pub fn lookup_qname(&self, name: &QName) -> Option<QnId> {
        self.qnames.lookup(name).map(QnId)
    }

    /// Interns an attribute value into `prop`.
    pub fn intern_prop(&mut self, value: &str) -> PropId {
        PropId(self.props.intern(value))
    }

    /// The attribute value behind a `prop` id.
    pub fn prop(&self, id: PropId) -> Option<&str> {
        self.props.get(id.0).map(String::as_str)
    }

    /// Looks up an attribute value without interning.
    pub fn lookup_prop(&self, value: &str) -> Option<PropId> {
        self.props.lookup(value).map(PropId)
    }

    /// Interns a text-node value, returning its row in the text table.
    pub fn intern_text(&mut self, value: &str) -> u32 {
        self.texts.intern(value)
    }

    /// Text value by id.
    pub fn text(&self, id: u32) -> Option<&str> {
        self.texts.get(id).map(String::as_str)
    }

    /// Interns a comment value.
    pub fn intern_comment(&mut self, value: &str) -> u32 {
        self.comments.intern(value)
    }

    /// Comment value by id.
    pub fn comment(&self, id: u32) -> Option<&str> {
        self.comments.get(id).map(String::as_str)
    }

    /// Interns a processing instruction as `target data` (single string;
    /// the target is the prefix up to the first space).
    pub fn intern_instruction(&mut self, target: &str, data: &str) -> u32 {
        let combined = if data.is_empty() {
            target.to_string()
        } else {
            format!("{target} {data}")
        };
        self.instructions.intern(combined.as_str())
    }

    /// Instruction `(target, data)` by id.
    pub fn instruction(&self, id: u32) -> Option<(&str, &str)> {
        self.instructions.get(id).map(|s| match s.find(' ') {
            Some(i) => (&s[..i], &s[i + 1..]),
            None => (s.as_str(), ""),
        })
    }

    /// Number of interned qualified names.
    pub fn qname_count(&self) -> usize {
        self.qnames.len()
    }

    /// Folds every interner's delta into a fresh shared base (ids are
    /// preserved). Runs after shredding, in vacuum, and when a
    /// checkpoint publishes/loads — never on the intern path, so commits
    /// stay O(touched) and deltas are bounded by the commits since the
    /// last maintenance point.
    pub fn compact(&mut self) {
        self.qnames.compact();
        self.props.compact();
        self.texts.compact();
        self.comments.compact();
        self.instructions.compact();
    }

    /// Values interned since the last compaction (diagnostic).
    pub fn delta_len(&self) -> usize {
        self.qnames.delta_values.len()
            + self.props.delta_values.len()
            + self.texts.delta_values.len()
            + self.comments.delta_values.len()
            + self.instructions.delta_values.len()
    }

    /// A pool sharing no storage with `self` — the clone-the-world
    /// baseline for the commit-cost benchmark.
    pub fn deep_clone(&self) -> ValuePool {
        ValuePool {
            qnames: self.qnames.deep_clone(),
            props: self.props.deep_clone(),
            texts: self.texts.deep_clone(),
            comments: self.comments.deep_clone(),
            instructions: self.instructions.deep_clone(),
        }
    }

    /// Approximate heap footprint (for the storage-overhead experiment).
    pub fn approx_bytes(&self) -> usize {
        let string_bytes = |s: &String| (s.len() + 24) * 2;
        self.qnames
            .approx_heap(|q| q.prefix.len() + q.local.len() + 48)
            + self.props.approx_heap(string_bytes)
            + self.texts.approx_heap(string_bytes)
            + self.comments.approx_heap(string_bytes)
            + self.instructions.approx_heap(string_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qnames_intern_once() {
        let mut p = ValuePool::new();
        let a = p.intern_qname(&QName::local("item"));
        let b = p.intern_qname(&QName::local("item"));
        let c = p.intern_qname(&QName::local("name"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.qname(a).unwrap().local, "item");
        assert_eq!(p.qname_count(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut p = ValuePool::new();
        assert_eq!(p.lookup_qname(&QName::local("x")), None);
        let id = p.intern_qname(&QName::local("x"));
        assert_eq!(p.lookup_qname(&QName::local("x")), Some(id));
    }

    #[test]
    fn props_are_unique_strings() {
        let mut p = ValuePool::new();
        let a = p.intern_prop("person0");
        let b = p.intern_prop("person0");
        assert_eq!(a, b);
        assert_eq!(p.prop(a), Some("person0"));
        assert_eq!(p.lookup_prop("nope"), None);
    }

    #[test]
    fn instruction_splits_target_and_data() {
        let mut p = ValuePool::new();
        let a = p.intern_instruction("php", "echo 1");
        assert_eq!(p.instruction(a), Some(("php", "echo 1")));
        let b = p.intern_instruction("bare", "");
        assert_eq!(p.instruction(b), Some(("bare", "")));
    }

    #[test]
    fn ids_survive_compaction() {
        let mut p = ValuePool::new();
        let ids: Vec<u32> = (0..600).map(|i| p.intern_text(&format!("t{i}"))).collect();
        p.compact();
        assert_eq!(p.delta_len(), 0);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.text(*id), Some(format!("t{i}").as_str()));
        }
        // Re-interning after compaction finds the base entry.
        assert_eq!(p.intern_text("t42"), ids[42]);
        // New values continue the absolute id sequence.
        let fresh = p.intern_text("brand new");
        assert_eq!(fresh as usize, ids.len());
    }

    #[test]
    fn interning_never_compacts_implicitly() {
        // Compaction clones the whole base, so it must never fire inside
        // a commit's op.apply — only at explicit maintenance points.
        let mut p = ValuePool::new();
        for i in 0..100 {
            p.intern_text(&format!("base{i}"));
        }
        p.compact();
        for i in 0..5000 {
            p.intern_text(&format!("hot{i}"));
        }
        assert_eq!(p.delta_len(), 5000, "intern path must not compact");
        p.compact();
        assert_eq!(p.delta_len(), 0);
        assert_eq!(p.text(50), Some("base50"));
        assert_eq!(p.text(100 + 4999), Some("hot4999"));
    }

    #[test]
    fn clones_do_not_see_later_interns() {
        let mut p = ValuePool::new();
        p.intern_text("shared");
        p.compact();
        let snapshot = p.clone();
        let id = p.intern_text("after-clone");
        assert_eq!(p.text(id), Some("after-clone"));
        assert_eq!(snapshot.text(id), None);
        assert_eq!(snapshot.lookup_prop("after-clone"), None);
    }
}
