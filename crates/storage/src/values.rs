//! Interned side tables: `qn`, `prop`, and the node-value tables.
//!
//! Figure 5: "`prop`, holding all unique attribute values (as strings)"
//! and "`qn`, with one tuple for each qualified name (element or
//! attribute)". Both are append-only interning tables keyed by a void
//! column, so lookups from tree tuples are positional. The text, comment
//! and instruction tables hold node values, also void-keyed.

use mbxq_xml::QName;
use std::collections::HashMap;

/// Id of a qualified name in the `qn` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QnId(pub u32);

/// Id of a unique attribute value in the `prop` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PropId(pub u32);

/// An append-only string interner backing one side table.
#[derive(Debug, Clone, Default)]
struct Interner {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("interner overflow");
        self.values.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    fn get(&self, id: u32) -> Option<&str> {
        self.values.get(id as usize).map(String::as_str)
    }

    fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    fn heap_bytes(&self) -> usize {
        self.values.iter().map(|s| s.len() + 24).sum::<usize>() * 2
    }
}

/// All interned side tables shared by a document store.
///
/// Grouped in one struct because every schema variant (read-only, paged,
/// naive) needs the identical set, and the *same* pool instance lets the
/// ro-vs-up benchmarks rule out interning differences.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    qnames: Vec<QName>,
    qname_index: HashMap<QName, u32>,
    props: Interner,
    texts: Interner,
    comments: Interner,
    instructions: Interner,
}

impl ValuePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a qualified name, returning its `qn` id.
    pub fn intern_qname(&mut self, name: &QName) -> QnId {
        if let Some(&id) = self.qname_index.get(name) {
            return QnId(id);
        }
        let id = u32::try_from(self.qnames.len()).expect("qn table overflow");
        self.qnames.push(name.clone());
        self.qname_index.insert(name.clone(), id);
        QnId(id)
    }

    /// The qualified name behind a `qn` id.
    pub fn qname(&self, id: QnId) -> Option<&QName> {
        self.qnames.get(id.0 as usize)
    }

    /// Looks up a name without interning (query-side: an XPath name test
    /// for a name that was never interned matches nothing).
    pub fn lookup_qname(&self, name: &QName) -> Option<QnId> {
        self.qname_index.get(name).copied().map(QnId)
    }

    /// Interns an attribute value into `prop`.
    pub fn intern_prop(&mut self, value: &str) -> PropId {
        PropId(self.props.intern(value))
    }

    /// The attribute value behind a `prop` id.
    pub fn prop(&self, id: PropId) -> Option<&str> {
        self.props.get(id.0)
    }

    /// Looks up an attribute value without interning.
    pub fn lookup_prop(&self, value: &str) -> Option<PropId> {
        self.props.lookup(value).map(PropId)
    }

    /// Interns a text-node value, returning its row in the text table.
    pub fn intern_text(&mut self, value: &str) -> u32 {
        self.texts.intern(value)
    }

    /// Text value by id.
    pub fn text(&self, id: u32) -> Option<&str> {
        self.texts.get(id)
    }

    /// Interns a comment value.
    pub fn intern_comment(&mut self, value: &str) -> u32 {
        self.comments.intern(value)
    }

    /// Comment value by id.
    pub fn comment(&self, id: u32) -> Option<&str> {
        self.comments.get(id)
    }

    /// Interns a processing instruction as `target data` (single string;
    /// the target is the prefix up to the first space).
    pub fn intern_instruction(&mut self, target: &str, data: &str) -> u32 {
        let combined = if data.is_empty() {
            target.to_string()
        } else {
            format!("{target} {data}")
        };
        self.instructions.intern(&combined)
    }

    /// Instruction `(target, data)` by id.
    pub fn instruction(&self, id: u32) -> Option<(&str, &str)> {
        self.instructions.get(id).map(|s| match s.find(' ') {
            Some(i) => (&s[..i], &s[i + 1..]),
            None => (s, ""),
        })
    }

    /// Number of interned qualified names.
    pub fn qname_count(&self) -> usize {
        self.qnames.len()
    }

    /// Approximate heap footprint (for the storage-overhead experiment).
    pub fn approx_bytes(&self) -> usize {
        self.qnames
            .iter()
            .map(|q| q.prefix.len() + q.local.len() + 48)
            .sum::<usize>()
            + self.props.heap_bytes()
            + self.texts.heap_bytes()
            + self.comments.heap_bytes()
            + self.instructions.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qnames_intern_once() {
        let mut p = ValuePool::new();
        let a = p.intern_qname(&QName::local("item"));
        let b = p.intern_qname(&QName::local("item"));
        let c = p.intern_qname(&QName::local("name"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.qname(a).unwrap().local, "item");
        assert_eq!(p.qname_count(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut p = ValuePool::new();
        assert_eq!(p.lookup_qname(&QName::local("x")), None);
        let id = p.intern_qname(&QName::local("x"));
        assert_eq!(p.lookup_qname(&QName::local("x")), Some(id));
    }

    #[test]
    fn props_are_unique_strings() {
        let mut p = ValuePool::new();
        let a = p.intern_prop("person0");
        let b = p.intern_prop("person0");
        assert_eq!(a, b);
        assert_eq!(p.prop(a), Some("person0"));
        assert_eq!(p.lookup_prop("nope"), None);
    }

    #[test]
    fn instruction_splits_target_and_data() {
        let mut p = ValuePool::new();
        let a = p.intern_instruction("php", "echo 1");
        assert_eq!(p.instruction(a), Some(("php", "echo 1")));
        let b = p.intern_instruction("bare", "");
        assert_eq!(p.instruction(b), Some(("bare", "")));
    }
}
