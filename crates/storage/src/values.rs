//! Interned side tables (`qn`, `prop`, node values) and the **content
//! index** — the value-based access path of the query layer.
//!
//! Figure 5: "`prop`, holding all unique attribute values (as strings)"
//! and "`qn`, with one tuple for each qualified name (element or
//! attribute)". Both are append-only interning tables keyed by a void
//! column, so lookups from tree tuples are positional. The text, comment
//! and instruction tables hold node values, also void-keyed.
//!
//! # The content index
//!
//! The element-name index (module `names`) lets the planner jump to
//! `descendant::item` without scanning; the `ContentIndex` here does
//! the same for **value predicates** — `//item[@id='item42']`,
//! `//price[. > 50]`, `//person[name='Alice']` — so a selective
//! comparison becomes an index probe plus a structural semijoin instead
//! of a scalar evaluation over every context row. It maps
//! `(QnId, value)` to node ids in document order, on two key spaces:
//!
//! * **attribute values** — keyed by the *attribute* name: every
//!   element carrying `@qn = value`. Complete by construction
//!   (attributes are atomic strings).
//! * **element text content** — keyed by the *element* name: every
//!   **simple-content** element (no element children) under the
//!   concatenation of its direct text children, which for such elements
//!   *is* the XPath string value. Elements **with** element children are
//!   tracked per name in a separate `complex` list instead of being
//!   keyed (their string value would change on every deep text edit,
//!   turning an O(1) text update into an O(depth) index rewrite); a
//!   probe returns them as an unindexed remainder for the executor to
//!   verify by evaluation, so results stay exact while maintenance
//!   stays local to the touched element.
//!
//! Each key space has an **exact-match hash arm** and a **sorted
//! numeric arm** holding `(number, node)` pairs for every value that
//! parses as an XPath number ([`xpath_number`]) — the access path for
//! range predicates (`<`, `<=`, `>`, `>=`).
//!
//! Like the name index, entries are keyed by **immutable node ids**
//! (pre-shift-immune; translated to pre ranks at probe time) and the
//! structure is an [`Arc`]-shared immutable **base** plus small per-key
//! **deltas** (`added` values, `removed` tombstones), so a commit
//! touching one value never copies a posting list. Deltas fold into a
//! fresh base only at the maintenance points (shredding, vacuum, and
//! the checkpoint load/publish paths of the transaction layer).
//!
//! # Structural sharing
//!
//! The pool participates in the O(touched-pages) commit discipline: each
//! interner is split into an immutable, [`Arc`]-shared **base** (built by
//! the shredder, or by the last compaction) plus a small mutable
//! **delta** holding values interned since. Cloning the pool clones the
//! base pointers and the (small) deltas — O(delta), not O(all strings) —
//! so a transaction's private workspace and a commit's new version never
//! copy the document's text heap. Interned ids are *absolute* (base
//! first, delta continuing the sequence) and survive compaction, which
//! folds the delta into a fresh shared base. Compaction runs only at
//! explicit maintenance points (shredding, vacuum, checkpoint) — never
//! on the intern path, which would otherwise spike a commit to
//! O(document) while it holds the global commit lock.

use crate::types::{Kind, ValueRef};
use mbxq_xml::QName;
use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

/// Id of a qualified name in the `qn` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QnId(pub u32);

/// Id of a unique attribute value in the `prop` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PropId(pub u32);

/// An append-only interner backing one side table, split into a shared
/// base and a private delta (see the module docs).
#[derive(Debug, Clone)]
struct Interner<K> {
    base: Arc<InternSet<K>>,
    delta_values: Vec<K>,
    delta_index: HashMap<K, u32>,
}

/// The immutable, shareable half of an [`Interner`].
#[derive(Debug)]
struct InternSet<K> {
    values: Vec<K>,
    index: HashMap<K, u32>,
}

impl<K> Default for Interner<K> {
    fn default() -> Self {
        Interner {
            base: Arc::new(InternSet {
                values: Vec::new(),
                index: HashMap::new(),
            }),
            delta_values: Vec::new(),
            delta_index: HashMap::new(),
        }
    }
}

impl<K: Clone + Eq + Hash> Interner<K> {
    fn intern<Q>(&mut self, key: &Q) -> u32
    where
        K: Borrow<Q>,
        Q: ?Sized + Eq + Hash + ToOwned<Owned = K>,
    {
        if let Some(&id) = self.base.index.get(key) {
            return id;
        }
        if let Some(&id) = self.delta_index.get(key) {
            return id;
        }
        let id = u32::try_from(self.base.values.len() + self.delta_values.len())
            .expect("interner overflow");
        let owned = key.to_owned();
        self.delta_values.push(owned.clone());
        self.delta_index.insert(owned, id);
        id
    }

    fn get(&self, id: u32) -> Option<&K> {
        let idx = id as usize;
        if idx < self.base.values.len() {
            self.base.values.get(idx)
        } else {
            self.delta_values.get(idx - self.base.values.len())
        }
    }

    fn lookup<Q>(&self, key: &Q) -> Option<u32>
    where
        K: Borrow<Q>,
        Q: ?Sized + Eq + Hash,
    {
        self.base
            .index
            .get(key)
            .or_else(|| self.delta_index.get(key))
            .copied()
    }

    fn len(&self) -> usize {
        self.base.values.len() + self.delta_values.len()
    }

    /// Folds the delta into a fresh shared base; ids are preserved.
    fn compact(&mut self) {
        if self.delta_values.is_empty() {
            return;
        }
        let mut set = InternSet {
            values: self.base.values.clone(),
            index: self.base.index.clone(),
        };
        for v in self.delta_values.drain(..) {
            let id = u32::try_from(set.values.len()).expect("interner overflow");
            set.index.insert(v.clone(), id);
            set.values.push(v);
        }
        self.delta_index.clear();
        self.base = Arc::new(set);
    }

    /// A clone sharing nothing with `self` (benchmark baseline).
    fn deep_clone(&self) -> Interner<K> {
        Interner {
            base: Arc::new(InternSet {
                values: self.base.values.clone(),
                index: self.base.index.clone(),
            }),
            delta_values: self.delta_values.clone(),
            delta_index: self.delta_index.clone(),
        }
    }

    /// Sums `per` over all interned values (heap accounting).
    fn approx_heap(&self, per: impl Fn(&K) -> usize) -> usize {
        self.base
            .values
            .iter()
            .chain(self.delta_values.iter())
            .map(per)
            .sum()
    }
}

/// All interned side tables shared by a document store.
///
/// Grouped in one struct because every schema variant (read-only, paged,
/// naive) needs the identical set, and the *same* pool instance lets the
/// ro-vs-up benchmarks rule out interning differences. Cloning is cheap
/// (shared bases + small deltas); see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    qnames: Interner<QName>,
    props: Interner<String>,
    texts: Interner<String>,
    comments: Interner<String>,
    instructions: Interner<String>,
}

impl ValuePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a qualified name, returning its `qn` id.
    pub fn intern_qname(&mut self, name: &QName) -> QnId {
        QnId(self.qnames.intern(name))
    }

    /// The qualified name behind a `qn` id.
    pub fn qname(&self, id: QnId) -> Option<&QName> {
        self.qnames.get(id.0)
    }

    /// Looks up a name without interning (query-side: an XPath name test
    /// for a name that was never interned matches nothing).
    pub fn lookup_qname(&self, name: &QName) -> Option<QnId> {
        self.qnames.lookup(name).map(QnId)
    }

    /// Interns an attribute value into `prop`.
    pub fn intern_prop(&mut self, value: &str) -> PropId {
        PropId(self.props.intern(value))
    }

    /// The attribute value behind a `prop` id.
    pub fn prop(&self, id: PropId) -> Option<&str> {
        self.props.get(id.0).map(String::as_str)
    }

    /// Looks up an attribute value without interning.
    pub fn lookup_prop(&self, value: &str) -> Option<PropId> {
        self.props.lookup(value).map(PropId)
    }

    /// Interns a text-node value, returning its row in the text table.
    pub fn intern_text(&mut self, value: &str) -> u32 {
        self.texts.intern(value)
    }

    /// Text value by id.
    pub fn text(&self, id: u32) -> Option<&str> {
        self.texts.get(id).map(String::as_str)
    }

    /// Interns a comment value.
    pub fn intern_comment(&mut self, value: &str) -> u32 {
        self.comments.intern(value)
    }

    /// Comment value by id.
    pub fn comment(&self, id: u32) -> Option<&str> {
        self.comments.get(id).map(String::as_str)
    }

    /// Interns a processing instruction as `target data` (single string;
    /// the target is the prefix up to the first space).
    pub fn intern_instruction(&mut self, target: &str, data: &str) -> u32 {
        let combined = if data.is_empty() {
            target.to_string()
        } else {
            format!("{target} {data}")
        };
        self.instructions.intern(combined.as_str())
    }

    /// Instruction `(target, data)` by id.
    pub fn instruction(&self, id: u32) -> Option<(&str, &str)> {
        self.instructions.get(id).map(|s| match s.find(' ') {
            Some(i) => (&s[..i], &s[i + 1..]),
            None => (s.as_str(), ""),
        })
    }

    /// Number of interned qualified names.
    pub fn qname_count(&self) -> usize {
        self.qnames.len()
    }

    /// Folds every interner's delta into a fresh shared base (ids are
    /// preserved). Runs after shredding, in vacuum, and when a
    /// checkpoint publishes/loads — never on the intern path, so commits
    /// stay O(touched) and deltas are bounded by the commits since the
    /// last maintenance point.
    pub fn compact(&mut self) {
        self.qnames.compact();
        self.props.compact();
        self.texts.compact();
        self.comments.compact();
        self.instructions.compact();
    }

    /// Values interned since the last compaction (diagnostic).
    pub fn delta_len(&self) -> usize {
        self.qnames.delta_values.len()
            + self.props.delta_values.len()
            + self.texts.delta_values.len()
            + self.comments.delta_values.len()
            + self.instructions.delta_values.len()
    }

    /// A pool sharing no storage with `self` — the clone-the-world
    /// baseline for the commit-cost benchmark.
    pub fn deep_clone(&self) -> ValuePool {
        ValuePool {
            qnames: self.qnames.deep_clone(),
            props: self.props.deep_clone(),
            texts: self.texts.deep_clone(),
            comments: self.comments.deep_clone(),
            instructions: self.instructions.deep_clone(),
        }
    }

    /// Approximate heap footprint (for the storage-overhead experiment).
    pub fn approx_bytes(&self) -> usize {
        let string_bytes = |s: &String| (s.len() + 24) * 2;
        self.qnames
            .approx_heap(|q| q.prefix.len() + q.local.len() + 48)
            + self.props.approx_heap(string_bytes)
            + self.texts.approx_heap(string_bytes)
            + self.comments.approx_heap(string_bytes)
            + self.instructions.approx_heap(string_bytes)
    }
}

// ---------------------------------------------------------------------
// The content index (module docs, "The content index")
// ---------------------------------------------------------------------

/// XPath 1.0 string→number coercion (`NaN` for anything the spec's
/// `number()` grammar rejects: empty strings, exponents, `inf`/`NaN`
/// spellings, interior minus signs). The single implementation shared
/// by the query engine and the content index's sorted numeric arm —
/// both **must** agree on which strings parse, or range probes would
/// diverge from scalar scans.
pub fn xpath_number(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty()
        || t.chars()
            .any(|c| !(c.is_ascii_digit() || c == '.' || c == '-'))
        || t.matches('-').count() > 1
        || (t.contains('-') && !t.starts_with('-'))
    {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// A (half-)open numeric interval — the probe argument of the sorted
/// arm, built from a comparison operator and its literal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumRange {
    /// Lower bound (`-∞` for none).
    pub lo: f64,
    /// Upper bound (`+∞` for none).
    pub hi: f64,
    /// Whether `lo` itself is inside.
    pub lo_incl: bool,
    /// Whether `hi` itself is inside.
    pub hi_incl: bool,
}

impl NumRange {
    /// `value = n` as a degenerate range.
    pub fn exactly(n: f64) -> NumRange {
        NumRange {
            lo: n,
            hi: n,
            lo_incl: true,
            hi_incl: true,
        }
    }

    /// `value > lo` / `value >= lo`.
    pub fn at_least(lo: f64, incl: bool) -> NumRange {
        NumRange {
            lo,
            hi: f64::INFINITY,
            lo_incl: incl,
            hi_incl: true,
        }
    }

    /// `value < hi` / `value <= hi`.
    pub fn at_most(hi: f64, incl: bool) -> NumRange {
        NumRange {
            lo: f64::NEG_INFINITY,
            hi,
            lo_incl: true,
            hi_incl: incl,
        }
    }

    /// Whether `v` lies inside the range (`NaN` never does).
    pub fn contains(&self, v: f64) -> bool {
        let above = if self.lo_incl {
            v >= self.lo
        } else {
            v > self.lo
        };
        let below = if self.hi_incl {
            v <= self.hi
        } else {
            v < self.hi
        };
        above && below
    }
}

/// Per-key degree statistics of one content-index key space — the raw
/// material of the planner's pessimistic cardinality estimator. All
/// three figures are **upper bounds** under deltas (added entries are
/// counted in full, tombstones are not subtracted), matching the
/// count-estimator convention: over-estimating a probe keeps the
/// multi-predicate chooser conservative as documents skew.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegreeStats {
    /// Distinct values keyed under this name (≥ the true count).
    pub distinct_keys: u64,
    /// Total postings across all values (≥ the true count).
    pub total_postings: u64,
    /// Longest single posting list — the *degree bound*: no probe on
    /// this key space can return more rows than this for any one value.
    pub max_postings: u64,
}

impl DegreeStats {
    /// Average postings per distinct key, rounded up (1 when empty) —
    /// the expected-case figure the pessimistic bound is compared to.
    pub fn avg_postings(&self) -> u64 {
        if self.distinct_keys == 0 {
            1
        } else {
            self.total_postings.div_ceil(self.distinct_keys)
        }
    }
}

/// Result of an element-text content probe: the `exact` arm is
/// authoritative (string values match by construction); the `unindexed`
/// arm lists the name's complex-content elements, which the caller must
/// verify by evaluating the predicate (see the module docs). Both are
/// pre ranks in document order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextProbe {
    /// Elements whose string value provably satisfies the probe.
    pub exact: Vec<u64>,
    /// Complex-content candidates the caller must verify.
    pub unindexed: Vec<u64>,
}

/// One key space of the content index: `(QnId, value)` → node ids, with
/// the exact hash arm and the sorted numeric arm, base + per-key delta.
#[derive(Debug, Clone, Default)]
struct ValueIndex {
    base: Arc<ValueBase>,
    delta: HashMap<QnId, ValueDelta>,
}

#[derive(Debug, Default)]
struct ValueBase {
    /// qn → value → node ids (document order).
    exact: HashMap<QnId, HashMap<String, Vec<u64>>>,
    /// qn → `(number, node)` sorted by number (then node) — only values
    /// that parse under [`xpath_number`].
    numeric: HashMap<QnId, Vec<(f64, u64)>>,
    /// qn → degree statistics of the exact arm, computed once per base
    /// rebuild so estimator probes stay O(1) + O(delta).
    stats: HashMap<QnId, DegreeStats>,
}

/// Degree statistics of an exact-arm base (one pass per rebuild).
fn base_degree_stats(
    exact: &HashMap<QnId, HashMap<String, Vec<u64>>>,
) -> HashMap<QnId, DegreeStats> {
    exact
        .iter()
        .map(|(&qn, bucket)| {
            let mut s = DegreeStats::default();
            for list in bucket.values() {
                s.distinct_keys += 1;
                s.total_postings += list.len() as u64;
                s.max_postings = s.max_postings.max(list.len() as u64);
            }
            (qn, s)
        })
        .collect()
}

/// Per-qn overlay. The mutation protocol is remove-then-add: every
/// value change first records the node in `removed` (shadowing whatever
/// the base holds for it), then appends the new `(value, node)` pair —
/// so `added` never needs tombstone filtering.
#[derive(Debug, Clone, Default)]
struct ValueDelta {
    added: Vec<(String, u64)>,
    removed: HashSet<u64>,
}

impl ValueIndex {
    /// Records that `node` now carries `value` under key `qn`. Callers
    /// must have called [`ValueIndex::remove`] first if the node
    /// already carried a value under this key.
    fn add(&mut self, qn: QnId, value: &str, node: u64) {
        self.delta
            .entry(qn)
            .or_default()
            .added
            .push((value.to_string(), node));
    }

    /// Removes whatever value `node` carries under key `qn` (no-op — a
    /// harmless tombstone — if it carries none).
    fn remove(&mut self, qn: QnId, node: u64) {
        let d = self.delta.entry(qn).or_default();
        if let Some(i) = d.added.iter().position(|&(_, n)| n == node) {
            d.added.remove(i);
        } else {
            d.removed.insert(node);
        }
    }

    /// Nodes carrying exactly `value` under `qn`, as `pre` ranks in
    /// document order (`pre_of` skips dead ids defensively).
    fn probe_exact(
        &self,
        qn: QnId,
        value: &str,
        mut pre_of: impl FnMut(u64) -> Option<u64>,
    ) -> Vec<u64> {
        let delta = self.delta.get(&qn);
        let mut out: Vec<u64> = Vec::new();
        if let Some(list) = self.base.exact.get(&qn).and_then(|m| m.get(value)) {
            for &n in list {
                if delta.is_some_and(|d| d.removed.contains(&n)) {
                    continue;
                }
                if let Some(p) = pre_of(n) {
                    out.push(p);
                }
            }
        }
        if let Some(d) = delta {
            let before = out.len();
            for (v, n) in &d.added {
                if v == value {
                    if let Some(p) = pre_of(*n) {
                        out.push(p);
                    }
                }
            }
            if out.len() > before {
                out.sort_unstable();
            }
        }
        out
    }

    /// Nodes whose value parses into `range` under `qn`, as `pre` ranks
    /// in document order.
    fn probe_range(
        &self,
        qn: QnId,
        range: &NumRange,
        mut pre_of: impl FnMut(u64) -> Option<u64>,
    ) -> Vec<u64> {
        let delta = self.delta.get(&qn);
        let mut out: Vec<u64> = Vec::new();
        if let Some(sorted) = self.base.numeric.get(&qn) {
            // Binary-search to the first candidate, then walk until the
            // values leave the range (the sorted arm's whole point).
            let start = sorted.partition_point(|&(v, _)| {
                if range.lo_incl {
                    v < range.lo
                } else {
                    v <= range.lo
                }
            });
            for &(v, n) in &sorted[start..] {
                if !range.contains(v) {
                    break;
                }
                if delta.is_some_and(|d| d.removed.contains(&n)) {
                    continue;
                }
                if let Some(p) = pre_of(n) {
                    out.push(p);
                }
            }
        }
        if let Some(d) = delta {
            for (v, n) in &d.added {
                if range.contains(xpath_number(v)) {
                    if let Some(p) = pre_of(*n) {
                        out.push(p);
                    }
                }
            }
        }
        // The numeric arm is value-sorted, not pre-sorted.
        out.sort_unstable();
        out
    }

    /// Upper-bound cardinality of [`ValueIndex::probe_exact`] — the
    /// statistic the cost model keys on (tombstoned base entries are
    /// not subtracted; over-estimating the probe keeps the choice
    /// conservative).
    fn count_exact(&self, qn: QnId, value: &str) -> u64 {
        let base = self
            .base
            .exact
            .get(&qn)
            .and_then(|m| m.get(value))
            .map_or(0, Vec::len) as u64;
        let added = self
            .delta
            .get(&qn)
            .map_or(0, |d| d.added.iter().filter(|(v, _)| v == value).count())
            as u64;
        base + added
    }

    /// Upper-bound cardinality of [`ValueIndex::probe_range`].
    fn count_range(&self, qn: QnId, range: &NumRange) -> u64 {
        let base = self.base.numeric.get(&qn).map_or(0, |sorted| {
            let start = sorted.partition_point(|&(v, _)| {
                if range.lo_incl {
                    v < range.lo
                } else {
                    v <= range.lo
                }
            });
            let end = sorted.partition_point(|&(v, _)| {
                if range.hi_incl {
                    v <= range.hi
                } else {
                    v < range.hi
                }
            });
            end.saturating_sub(start)
        }) as u64;
        let added = self.delta.get(&qn).map_or(0, |d| {
            d.added
                .iter()
                .filter(|(v, _)| range.contains(xpath_number(v)))
                .count()
        }) as u64;
        base + added
    }

    /// Folds the deltas into a fresh shared base (per-key lists stay
    /// document-ordered via `pre_of`). Maintenance points only.
    fn compact(&mut self, mut pre_of: impl FnMut(u64) -> Option<u64>) {
        if self.delta.is_empty() {
            return;
        }
        let mut exact = self.base.exact.clone();
        let mut numeric = self.base.numeric.clone();
        for (qn, d) in self.delta.drain() {
            let bucket = exact.entry(qn).or_default();
            if !d.removed.is_empty() {
                bucket.retain(|_, list| {
                    list.retain(|n| !d.removed.contains(n));
                    !list.is_empty()
                });
            }
            for (v, n) in d.added {
                bucket.entry(v).or_default().push(n);
            }
            // Restore per-list document order (adds appended out of
            // order), then rebuild the qn's sorted numeric arm.
            let mut nums: Vec<(f64, u64)> = Vec::new();
            for (v, list) in bucket.iter_mut() {
                list.sort_unstable_by_key(|&n| pre_of(n).unwrap_or(u64::MAX));
                let num = xpath_number(v);
                if !num.is_nan() {
                    nums.extend(list.iter().map(|&n| (num, n)));
                }
            }
            if bucket.is_empty() {
                exact.remove(&qn);
            }
            nums.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs stored"));
            if nums.is_empty() {
                numeric.remove(&qn);
            } else {
                numeric.insert(qn, nums);
            }
        }
        let stats = base_degree_stats(&exact);
        self.base = Arc::new(ValueBase {
            exact,
            numeric,
            stats,
        });
    }

    /// Entries added/tombstoned since the last compaction (diagnostic).
    fn delta_len(&self) -> usize {
        self.delta
            .values()
            .map(|d| d.added.len() + d.removed.len())
            .sum()
    }

    /// Degree statistics for key space `qn`: the base's precomputed
    /// figures widened by the delta's `added` entries (each added entry
    /// may be a new distinct value and may extend the longest list, so
    /// all three bounds grow by the added count — upper bounds, like
    /// the probe-count estimators; tombstones are not subtracted).
    fn degree_stats(&self, qn: QnId) -> DegreeStats {
        let mut s = self.base.stats.get(&qn).copied().unwrap_or_default();
        if let Some(d) = self.delta.get(&qn) {
            let added = d.added.len() as u64;
            if added > 0 {
                s.distinct_keys += added;
                s.total_postings += added;
                s.max_postings += added;
            }
        }
        s
    }

    /// A clone sharing no storage (the clone-the-world baseline).
    fn deep_clone(&self) -> ValueIndex {
        ValueIndex {
            base: Arc::new(ValueBase {
                exact: self.base.exact.clone(),
                numeric: self.base.numeric.clone(),
                stats: self.base.stats.clone(),
            }),
            delta: self.delta.clone(),
        }
    }
}

/// The content index: attribute values + element text content, each
/// with an exact and a sorted numeric arm, plus the per-name list of
/// complex-content elements (module docs).
#[derive(Debug, Clone, Default)]
pub(crate) struct ContentIndex {
    /// Attribute-name-keyed: elements carrying `@qn = value`.
    attrs: ValueIndex,
    /// Element-name-keyed: simple-content elements by string value.
    texts: ValueIndex,
    /// Element-name-keyed: elements with element children (not in
    /// `texts`; probes return them for caller-side verification).
    complex: crate::names::NameIndex,
}

impl ContentIndex {
    // -- maintenance (update paths; remove-then-add discipline) --------

    /// Records `@qn = value` on element `node` (any previous value for
    /// this attribute must have been removed first).
    pub(crate) fn add_attr(&mut self, qn: QnId, value: &str, node: u64) {
        self.attrs.add(qn, value, node);
    }

    /// Removes element `node`'s `@qn` entry.
    pub(crate) fn remove_attr(&mut self, qn: QnId, node: u64) {
        self.attrs.remove(qn, node);
    }

    /// Registers element `node` (named `qn`) with content state `key`:
    /// `Some(text)` for simple content, `None` for complex.
    pub(crate) fn add_element(&mut self, qn: QnId, key: Option<&str>, node: u64) {
        match key {
            Some(text) => self.texts.add(qn, text, node),
            None => self.complex.add(qn, node),
        }
    }

    /// Unregisters a **deleted** element `node` (named `qn`) whose
    /// content state is unknown: both arms are cleared. Only valid when
    /// the node will never be re-added (node ids are not reused) — the
    /// spurious tombstone in the wrong arm would otherwise cancel a
    /// later re-add. Live re-keying goes through
    /// [`ContentIndex::remove_element_keyed`] instead.
    pub(crate) fn remove_element(&mut self, qn: QnId, node: u64) {
        self.texts.remove(qn, node);
        self.complex.remove(qn, node);
    }

    /// Unregisters element `node` (named `qn`) from the arm its known
    /// content state `key` lives in — the removal half of a re-key.
    pub(crate) fn remove_element_keyed(&mut self, qn: QnId, key: Option<&str>, node: u64) {
        match key {
            Some(_) => self.texts.remove(qn, node),
            None => self.complex.remove(qn, node),
        }
    }

    /// Moves element `node` (content state `key`) between names —
    /// the rename hook.
    pub(crate) fn rename_element(
        &mut self,
        old_qn: QnId,
        new_qn: QnId,
        key: Option<&str>,
        node: u64,
    ) {
        match key {
            Some(text) => {
                self.texts.remove(old_qn, node);
                self.texts.add(new_qn, text, node);
            }
            None => {
                self.complex.remove(old_qn, node);
                self.complex.add(new_qn, node);
            }
        }
    }

    // -- probes --------------------------------------------------------

    /// Elements with `@qn = value`, as pre ranks in document order.
    pub(crate) fn attr_eq(
        &self,
        qn: QnId,
        value: &str,
        pre_of: impl FnMut(u64) -> Option<u64>,
    ) -> Vec<u64> {
        self.attrs.probe_exact(qn, value, pre_of)
    }

    /// Elements whose `@qn` parses into `range`.
    pub(crate) fn attr_range(
        &self,
        qn: QnId,
        range: &NumRange,
        pre_of: impl FnMut(u64) -> Option<u64>,
    ) -> Vec<u64> {
        self.attrs.probe_range(qn, range, pre_of)
    }

    /// Upper-bound cardinality of [`ContentIndex::attr_eq`].
    pub(crate) fn attr_eq_count(&self, qn: QnId, value: &str) -> u64 {
        self.attrs.count_exact(qn, value)
    }

    /// Upper-bound cardinality of [`ContentIndex::attr_range`].
    pub(crate) fn attr_range_count(&self, qn: QnId, range: &NumRange) -> u64 {
        self.attrs.count_range(qn, range)
    }

    /// Elements named `qn` whose string value equals `value` (exact
    /// arm) plus the name's unverified complex elements.
    pub(crate) fn text_eq(
        &self,
        qn: QnId,
        value: &str,
        mut pre_of: impl FnMut(u64) -> Option<u64>,
    ) -> TextProbe {
        TextProbe {
            exact: self.texts.probe_exact(qn, value, &mut pre_of),
            unindexed: self.complex_pres(qn, pre_of),
        }
    }

    /// Elements named `qn` whose string value parses into `range`
    /// (exact arm) plus the name's unverified complex elements.
    pub(crate) fn text_range(
        &self,
        qn: QnId,
        range: &NumRange,
        mut pre_of: impl FnMut(u64) -> Option<u64>,
    ) -> TextProbe {
        TextProbe {
            exact: self.texts.probe_range(qn, range, &mut pre_of),
            unindexed: self.complex_pres(qn, pre_of),
        }
    }

    /// Upper-bound cardinality of [`ContentIndex::text_eq`] (complex
    /// candidates included — they cost a verification each).
    pub(crate) fn text_eq_count(&self, qn: QnId, value: &str) -> u64 {
        self.texts.count_exact(qn, value) + self.complex.count_upper(qn)
    }

    /// Upper-bound cardinality of [`ContentIndex::text_range`].
    pub(crate) fn text_range_count(&self, qn: QnId, range: &NumRange) -> u64 {
        self.texts.count_range(qn, range) + self.complex.count_upper(qn)
    }

    /// Degree statistics of the attribute key space for `@qn`.
    pub(crate) fn attr_degree_stats(&self, qn: QnId) -> DegreeStats {
        self.attrs.degree_stats(qn)
    }

    /// Degree statistics of the element-text key space for name `qn`.
    /// The name's complex-content elements widen `total` and `max` —
    /// every text probe returns them as unverified candidates, so they
    /// bound the probe's cardinality exactly like indexed postings.
    pub(crate) fn text_degree_stats(&self, qn: QnId) -> DegreeStats {
        let mut s = self.texts.degree_stats(qn);
        let complex = self.complex.count_upper(qn);
        if complex > 0 {
            s.total_postings += complex;
            s.max_postings += complex;
            s.distinct_keys = s.distinct_keys.max(1);
        }
        s
    }

    fn complex_pres(&self, qn: QnId, pre_of: impl FnMut(u64) -> Option<u64>) -> Vec<u64> {
        self.complex
            .nodes_by_pre(qn, pre_of)
            .into_iter()
            .map(|(pre, _)| pre)
            .collect()
    }

    // -- maintenance points --------------------------------------------

    /// Folds all deltas into fresh shared bases. Maintenance points
    /// only (clones the whole base).
    pub(crate) fn compact(&mut self, mut pre_of: impl FnMut(u64) -> Option<u64>) {
        self.attrs.compact(&mut pre_of);
        self.texts.compact(&mut pre_of);
        self.complex.compact(pre_of);
    }

    /// Entries added/tombstoned since the last compaction (diagnostic).
    pub(crate) fn delta_len(&self) -> usize {
        self.attrs.delta_len() + self.texts.delta_len() + self.complex.delta_len()
    }

    /// A clone sharing no storage (the clone-the-world baseline).
    pub(crate) fn deep_clone(&self) -> ContentIndex {
        ContentIndex {
            attrs: self.attrs.deep_clone(),
            texts: self.texts.deep_clone(),
            complex: self.complex.deep_clone(),
        }
    }

    /// Builds a compacted index by scanning a whole document view — the
    /// shredding / vacuum / checkpoint-load constructor. One pass over
    /// the used slots classifies every element (simple key vs complex)
    /// and collects attribute rows; node ids come from the view, so the
    /// index survives later pre shifts.
    pub(crate) fn build_from_view<V: crate::view::TreeView + ?Sized>(view: &V) -> ContentIndex {
        struct Frame {
            level: u16,
            node: u64,
            qn: QnId,
            has_elem_child: bool,
            text: String,
        }
        // (pre, node, qn, key) — collected, then inserted in pre order
        // so the base posting lists come out document-ordered.
        let mut elems: Vec<(u64, u64, QnId, Option<String>)> = Vec::new();
        let mut attr_base: HashMap<QnId, HashMap<String, Vec<u64>>> = HashMap::new();
        let mut stack: Vec<Frame> = Vec::new();
        let finalize = |f: Frame, pre: u64, out: &mut Vec<(u64, u64, QnId, Option<String>)>| {
            let key = if f.has_elem_child { None } else { Some(f.text) };
            out.push((pre, f.node, f.qn, key));
        };
        let mut pre_of: HashMap<u64, u64> = HashMap::new();
        let mut p = 0u64;
        while let Some(q) = view.next_used_at_or_after(p) {
            let level = view.level(q).expect("used slot has a level");
            while stack.last().is_some_and(|f| f.level >= level) {
                let f = stack.pop().expect("just checked");
                let fp = pre_of[&f.node];
                finalize(f, fp, &mut elems);
            }
            match view.kind(q) {
                Some(Kind::Element) => {
                    let node = view.node_id(q).expect("used slot has a node id").0;
                    let qn = view.name_id(q).expect("element has a name");
                    if let Some(parent) = stack.last_mut() {
                        parent.has_elem_child = true;
                    }
                    for (aqn, prop) in view.attributes(q) {
                        let value = view.pool().prop(prop).unwrap_or_default().to_string();
                        attr_base
                            .entry(aqn)
                            .or_default()
                            .entry(value)
                            .or_default()
                            .push(node);
                    }
                    pre_of.insert(node, q);
                    stack.push(Frame {
                        level,
                        node,
                        qn,
                        has_elem_child: false,
                        text: String::new(),
                    });
                }
                Some(Kind::Text) => {
                    if let Some(parent) = stack.last_mut() {
                        if let Some(ValueRef(v)) = view.value_ref(q) {
                            parent.text.push_str(view.pool().text(v).unwrap_or(""));
                        }
                    }
                }
                _ => {} // comments/PIs contribute no string value
            }
            p = q + 1;
        }
        while let Some(f) = stack.pop() {
            let fp = pre_of[&f.node];
            finalize(f, fp, &mut elems);
        }
        elems.sort_unstable_by_key(|&(pre, ..)| pre);

        let mut text_base: HashMap<QnId, HashMap<String, Vec<u64>>> = HashMap::new();
        let mut complex_base: HashMap<QnId, Vec<u64>> = HashMap::new();
        for (_, node, qn, key) in elems {
            match key {
                Some(text) => text_base
                    .entry(qn)
                    .or_default()
                    .entry(text)
                    .or_default()
                    .push(node),
                None => complex_base.entry(qn).or_default().push(node),
            }
        }
        ContentIndex {
            attrs: ValueIndex::from_exact(attr_base),
            texts: ValueIndex::from_exact(text_base),
            complex: crate::names::NameIndex::from_base(complex_base),
        }
    }
}

impl ValueIndex {
    /// Builds the base (numeric arm derived) from document-ordered
    /// exact lists; empty delta.
    fn from_exact(exact: HashMap<QnId, HashMap<String, Vec<u64>>>) -> ValueIndex {
        let mut numeric: HashMap<QnId, Vec<(f64, u64)>> = HashMap::new();
        for (&qn, bucket) in &exact {
            let mut nums: Vec<(f64, u64)> = Vec::new();
            for (v, list) in bucket {
                let num = xpath_number(v);
                if !num.is_nan() {
                    nums.extend(list.iter().map(|&n| (num, n)));
                }
            }
            if !nums.is_empty() {
                nums.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs stored"));
                numeric.insert(qn, nums);
            }
        }
        let stats = base_degree_stats(&exact);
        ValueIndex {
            base: Arc::new(ValueBase {
                exact,
                numeric,
                stats,
            }),
            delta: HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qnames_intern_once() {
        let mut p = ValuePool::new();
        let a = p.intern_qname(&QName::local("item"));
        let b = p.intern_qname(&QName::local("item"));
        let c = p.intern_qname(&QName::local("name"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.qname(a).unwrap().local, "item");
        assert_eq!(p.qname_count(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut p = ValuePool::new();
        assert_eq!(p.lookup_qname(&QName::local("x")), None);
        let id = p.intern_qname(&QName::local("x"));
        assert_eq!(p.lookup_qname(&QName::local("x")), Some(id));
    }

    #[test]
    fn props_are_unique_strings() {
        let mut p = ValuePool::new();
        let a = p.intern_prop("person0");
        let b = p.intern_prop("person0");
        assert_eq!(a, b);
        assert_eq!(p.prop(a), Some("person0"));
        assert_eq!(p.lookup_prop("nope"), None);
    }

    #[test]
    fn instruction_splits_target_and_data() {
        let mut p = ValuePool::new();
        let a = p.intern_instruction("php", "echo 1");
        assert_eq!(p.instruction(a), Some(("php", "echo 1")));
        let b = p.intern_instruction("bare", "");
        assert_eq!(p.instruction(b), Some(("bare", "")));
    }

    #[test]
    fn ids_survive_compaction() {
        let mut p = ValuePool::new();
        let ids: Vec<u32> = (0..600).map(|i| p.intern_text(&format!("t{i}"))).collect();
        p.compact();
        assert_eq!(p.delta_len(), 0);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.text(*id), Some(format!("t{i}").as_str()));
        }
        // Re-interning after compaction finds the base entry.
        assert_eq!(p.intern_text("t42"), ids[42]);
        // New values continue the absolute id sequence.
        let fresh = p.intern_text("brand new");
        assert_eq!(fresh as usize, ids.len());
    }

    #[test]
    fn interning_never_compacts_implicitly() {
        // Compaction clones the whole base, so it must never fire inside
        // a commit's op.apply — only at explicit maintenance points.
        let mut p = ValuePool::new();
        for i in 0..100 {
            p.intern_text(&format!("base{i}"));
        }
        p.compact();
        for i in 0..5000 {
            p.intern_text(&format!("hot{i}"));
        }
        assert_eq!(p.delta_len(), 5000, "intern path must not compact");
        p.compact();
        assert_eq!(p.delta_len(), 0);
        assert_eq!(p.text(50), Some("base50"));
        assert_eq!(p.text(100 + 4999), Some("hot4999"));
    }

    #[test]
    fn clones_do_not_see_later_interns() {
        let mut p = ValuePool::new();
        p.intern_text("shared");
        p.compact();
        let snapshot = p.clone();
        let id = p.intern_text("after-clone");
        assert_eq!(p.text(id), Some("after-clone"));
        assert_eq!(snapshot.text(id), None);
        assert_eq!(snapshot.lookup_prop("after-clone"), None);
    }

    // -- content index ------------------------------------------------

    fn ident(n: u64) -> Option<u64> {
        Some(n)
    }

    #[test]
    fn xpath_number_matches_spec_grammar() {
        assert_eq!(xpath_number(" 42 "), 42.0);
        assert_eq!(xpath_number("-1.5"), -1.5);
        for bad in ["", "inf", "NaN", "1e3", "1-2", "--1", "a"] {
            assert!(xpath_number(bad).is_nan(), "{bad:?} must be NaN");
        }
    }

    #[test]
    fn num_range_bounds() {
        assert!(NumRange::exactly(5.0).contains(5.0));
        assert!(!NumRange::exactly(5.0).contains(5.1));
        assert!(NumRange::at_least(3.0, false).contains(3.5));
        assert!(!NumRange::at_least(3.0, false).contains(3.0));
        assert!(NumRange::at_least(3.0, true).contains(3.0));
        assert!(NumRange::at_most(3.0, true).contains(3.0));
        assert!(!NumRange::at_most(3.0, false).contains(3.0));
        assert!(!NumRange::exactly(5.0).contains(f64::NAN));
    }

    #[test]
    fn value_index_base_delta_and_ranges() {
        let mut exact: HashMap<QnId, HashMap<String, Vec<u64>>> = HashMap::new();
        exact
            .entry(QnId(1))
            .or_default()
            .insert("10".into(), vec![2, 8]);
        exact
            .entry(QnId(1))
            .or_default()
            .insert("50".into(), vec![5]);
        let mut idx = ValueIndex::from_exact(exact);
        assert_eq!(idx.probe_exact(QnId(1), "10", ident), vec![2, 8]);
        assert_eq!(
            idx.probe_range(QnId(1), &NumRange::at_least(10.0, true), ident),
            vec![2, 5, 8]
        );
        assert_eq!(
            idx.probe_range(QnId(1), &NumRange::at_least(10.0, false), ident),
            vec![5]
        );
        // Value change on node 8: remove, add under a new value.
        idx.remove(QnId(1), 8);
        idx.add(QnId(1), "49", 8);
        assert_eq!(idx.probe_exact(QnId(1), "10", ident), vec![2]);
        assert_eq!(idx.probe_exact(QnId(1), "49", ident), vec![8]);
        assert_eq!(
            idx.probe_range(QnId(1), &NumRange::at_least(11.0, true), ident),
            vec![5, 8]
        );
        // Counts are upper bounds.
        assert!(idx.count_exact(QnId(1), "10") >= 1);
        assert!(idx.count_range(QnId(1), &NumRange::at_least(11.0, true)) >= 2);
        // Compaction preserves contents and clears the delta.
        assert!(idx.delta_len() > 0);
        idx.compact(ident);
        assert_eq!(idx.delta_len(), 0);
        assert_eq!(idx.probe_exact(QnId(1), "49", ident), vec![8]);
        assert_eq!(
            idx.probe_range(QnId(1), &NumRange::at_least(11.0, true), ident),
            vec![5, 8]
        );
        assert_eq!(idx.count_exact(QnId(1), "10"), 1);
    }

    #[test]
    fn content_index_rekey_and_rename() {
        let mut idx = ContentIndex::default();
        idx.add_element(QnId(0), Some("Alice"), 4);
        idx.add_element(QnId(0), None, 9);
        assert_eq!(idx.text_eq(QnId(0), "Alice", ident).exact, vec![4]);
        assert_eq!(idx.text_eq(QnId(0), "Alice", ident).unindexed, vec![9]);
        // Complex → simple (a delete removed the element child):
        // remove-then-add, the diff protocol of the update paths.
        idx.remove_element(QnId(0), 9);
        idx.add_element(QnId(0), Some("Bob"), 9);
        let probe = idx.text_eq(QnId(0), "Bob", ident);
        assert_eq!(probe.exact, vec![9]);
        assert!(probe.unindexed.is_empty());
        // Rename moves between name buckets, key preserved.
        idx.rename_element(QnId(0), QnId(7), Some("Bob"), 9);
        assert!(idx.text_eq(QnId(0), "Bob", ident).exact.is_empty());
        assert_eq!(idx.text_eq(QnId(7), "Bob", ident).exact, vec![9]);
        assert!(idx.text_eq_count(QnId(7), "Bob") >= 1);
    }

    #[test]
    fn content_index_clone_shares_base() {
        let mut exact: HashMap<QnId, HashMap<String, Vec<u64>>> = HashMap::new();
        exact
            .entry(QnId(0))
            .or_default()
            .insert("v".into(), (0..50).collect());
        let idx = ContentIndex {
            attrs: ValueIndex::from_exact(exact),
            texts: ValueIndex::default(),
            complex: crate::names::NameIndex::default(),
        };
        let snap = idx.clone();
        assert!(Arc::ptr_eq(&idx.attrs.base, &snap.attrs.base));
        let deep = idx.deep_clone();
        assert!(!Arc::ptr_eq(&idx.attrs.base, &deep.attrs.base));
    }
}
