//! `mbxq-storage` — relational XML document storage in the pre/post plane.
//!
//! This crate implements both storage schemas of the paper:
//!
//! * [`readonly`] — the original **read-only** schema (Figure 5): a dense
//!   `pre/size/level` table with void `pre`, plus `attr`, `prop`, `qn` and
//!   node-value tables, produced by the document shredder.
//! * [`paged`] — the **updateable** schema (Figures 4, 6, 7): a
//!   `pos/size/level/node` base table divided into logical pages with
//!   unused tuples, a `pageOffset` table giving the logical page order, and
//!   a `node→pos` map; `pre` numbers exist only in the *view* obtained by
//!   reading the pages in logical order, so structural updates never
//!   rewrite them.
//! * [`update`] — structural insert (cases 2a/2b of Figure 7) and delete
//!   on the paged schema.
//! * [`naive`] — the strawman the paper argues against: structural updates
//!   on the dense encoding by physically shifting all following tuples
//!   (O(N)); kept as an oracle and as the baseline for the update-cost
//!   ablation benchmarks.
//! * [`view`] — the [`TreeView`] trait: the uniform pre-plane interface
//!   the axis engine (`mbxq-axes`) evaluates against, so staircase join
//!   code is *identical* for both schemas, exactly as the paper keeps
//!   staircase join "unmodified" on top of the memory-mapped view (§4).
//!
//! # `size` semantics with unused tuples
//!
//! In the paged encoding, the `size` of a *used* tuple counts its **used**
//! descendant tuples only: Figure 4 leaves all sizes unchanged when pages
//! gain unused padding, and ancestor maintenance applies delta-increments
//! equal to the *insert volume* (three for `<k><l/><m/></k>`). A subtree's
//! pre-range may therefore contain holes, and region ends are detected by
//! `level` comparisons while holes are skipped via their run length (the
//! `size` column of an unused tuple holds the number of remaining
//! consecutive unused tuples, §3). For O(1) *backward* hole skipping —
//! which the forward-only run lengths of the paper do not support — we
//! stash the backward run distance in the (otherwise meaningless) `name`
//! slot of unused tuples; DESIGN.md records this as an implementation
//! refinement.

pub mod checkpoint;
pub mod dump;
pub mod invariants;
pub mod naive;
pub(crate) mod names;
pub mod paged;
pub mod readonly;
pub mod serialize;
pub mod snapshot;
pub mod types;
pub mod update;
pub mod vacuum;
pub mod values;
pub mod view;

pub use naive::{NaiveDoc, NaiveReport};
pub use paged::{PagedDoc, PagedStats};
pub use readonly::ReadOnlyDoc;
pub use snapshot::ArcCell;
pub use types::{Kind, NodeId, PageConfig, StorageError, ValueRef};
pub use update::{DeleteReport, InsertCase, InsertPosition, InsertReport};
pub use vacuum::VacuumReport;
pub use values::{xpath_number, DegreeStats, NumRange, PropId, QnId, TextProbe, ValuePool};
pub use view::{PreChunk, TreeView};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, types::StorageError>;
