//! The rule-based plan rewriter.
//!
//! Four rewrite families run over the logical plan, bottom-up, followed
//! by an explicit hoisting pass:
//!
//! 1. **Existence conversion** — `count(e) > 0`, `count(e) != 0`,
//!    `count(e) >= 1` (and mirrored forms) become `Agg(exists)`, as do
//!    bare node-set operands in boolean contexts (`[e]`, `a and b`,
//!    `not(e)`, `boolean(e)`). The executor serves existence aggregates
//!    with an early-exit probe instead of materializing the node set.
//! 2. **Positional short-circuit** — `[1]`, `[position() = 1]`,
//!    `[last()]` and `[position() = last()]` become first/last *picks*
//!    executed without position vectors.
//! 3. **Predicate pushdown** — a step whose predicates are all provably
//!    non-positional ([`plan::pred_is_non_positional`]) sheds them into
//!    explicit [`Rel::Filter`] operators above the step: the executor
//!    then skips the per-context-node expansion/regroup dance that the
//!    `position()` scope would otherwise require.
//! 4. **Step fusion** — `descendant-or-self::node()/child::t` (the `//`
//!    expansion) fuses into one `descendant::t` step, and bare
//!    `self::node()` steps vanish. Fusion only fires on predicate-free
//!    steps, which pushdown has just maximized; positional predicates
//!    keep their step un-fused, preserving the per-parent `position()`
//!    scope of `//x[1]`.
//!
//! 5. **Value-predicate lowering** — a pushed-down filter whose
//!    predicate is a statically recognizable comparison against a
//!    literal (`[@a = "lit"]`, `[. = "lit"]`, `[child = "lit"]`, and
//!    `<`/`<=`/`>`/`>=` against numeric literals) sitting directly on
//!    an indexable step becomes a [`Rel::ValueProbe`]: the content
//!    index serves the value lookup and a range semijoin restores the
//!    structural relationship. Positional predicates never reach this
//!    rule — pushdown (which gates on `position()`/`last()`-freedom and
//!    non-numeric static type) runs first, so anything positional is
//!    still attached to its step.
//!
//! The final pass wraps maximal loop-invariant subtrees in explicit
//! `Const` markers — the plan-level replacement for the interpreter's
//! ad-hoc `Lifted::Const` hoisting — so `explain` output shows exactly
//! what evaluates once per query rather than once per iteration.

use crate::ast::CmpOp;
use crate::plan::{self, AggKind, Pred, Rel, Scalar, ValueCmp, ValuePred, ValueSource};
use mbxq_axes::{Axis, NodeTest};
use mbxq_storage::NumRange;

/// Rewrites a compiled logical plan (all rule families + hoisting).
pub fn rewrite(s: Scalar) -> Scalar {
    let s = rw_scalar(s, false);
    hoist_scalar(s)
}

// ---------------------------------------------------------------------
// Bottom-up rules
// ---------------------------------------------------------------------

/// Rewrites a scalar; `boolean_ctx` marks positions whose value is
/// immediately coerced to a boolean (existence conversion applies).
fn rw_scalar(s: Scalar, boolean_ctx: bool) -> Scalar {
    let out = match s {
        Scalar::Or(a, b) => {
            Scalar::Or(Box::new(rw_scalar(*a, true)), Box::new(rw_scalar(*b, true)))
        }
        Scalar::And(a, b) => {
            Scalar::And(Box::new(rw_scalar(*a, true)), Box::new(rw_scalar(*b, true)))
        }
        Scalar::Compare(op, a, b) => {
            let a = rw_scalar(*a, false);
            let b = rw_scalar(*b, false);
            match count_comparison(op, &a, &b) {
                Some(replacement) => replacement,
                None => Scalar::Compare(op, Box::new(a), Box::new(b)),
            }
        }
        Scalar::Arith(op, a, b) => Scalar::Arith(
            op,
            Box::new(rw_scalar(*a, false)),
            Box::new(rw_scalar(*b, false)),
        ),
        Scalar::Neg(e) => Scalar::Neg(Box::new(rw_scalar(*e, false))),
        Scalar::Call(name, args) => {
            let arg_is_boolean = args.len() == 1 && matches!(name.as_str(), "not" | "boolean");
            let args = args
                .into_iter()
                .map(|a| rw_scalar(a, arg_is_boolean))
                .collect();
            Scalar::Call(name, args)
        }
        Scalar::Agg(kind, rel) => Scalar::Agg(kind, Box::new(rw_rel(*rel))),
        Scalar::Nodes(rel) => Scalar::Nodes(Box::new(rw_rel(*rel))),
        leaf @ (Scalar::Literal(_) | Scalar::Number(_) | Scalar::Var(_) | Scalar::Const(_)) => leaf,
    };
    if boolean_ctx {
        if let Scalar::Nodes(rel) = out {
            // A node set in a boolean context only asks "non-empty?".
            return Scalar::Agg(AggKind::Exists, rel);
        }
    }
    out
}

/// `count(e) <op> n` forms that reduce to (negated) existence.
fn count_comparison(op: CmpOp, a: &Scalar, b: &Scalar) -> Option<Scalar> {
    // Normalize to `count(e) <op> n`.
    let (op, rel, n) = match (a, b) {
        (Scalar::Agg(AggKind::Count, rel), Scalar::Number(n)) => (op, rel, *n),
        (Scalar::Number(n), Scalar::Agg(AggKind::Count, rel)) => (flip(op), rel, *n),
        _ => return None,
    };
    let exists = || Scalar::Agg(AggKind::Exists, rel.clone());
    let not_exists = || {
        Scalar::Call(
            "not".into(),
            vec![Scalar::Agg(AggKind::Exists, rel.clone())],
        )
    };
    match op {
        CmpOp::Gt if n == 0.0 => Some(exists()),
        CmpOp::Ge if n == 1.0 => Some(exists()),
        CmpOp::Ne if n == 0.0 => Some(exists()),
        CmpOp::Eq if n == 0.0 => Some(not_exists()),
        CmpOp::Lt if n == 1.0 => Some(not_exists()),
        CmpOp::Le if n == 0.0 => Some(not_exists()),
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

fn rw_rel(r: Rel) -> Rel {
    let out = match r {
        Rel::Step {
            input,
            axis,
            test,
            preds,
        } => {
            let input = rw_rel(*input);
            let preds: Vec<Pred> = preds.into_iter().map(rw_pred).collect();
            // Predicate pushdown: a step whose predicates are all
            // provably non-positional sheds them into Filter operators.
            if !preds.is_empty() && preds.iter().all(pushable) {
                // Fuse the now predicate-free step before stacking the
                // filters on top of it.
                let mut rel = fuse(Rel::Step {
                    input: Box::new(input),
                    axis,
                    test,
                    preds: Vec::new(),
                });
                for p in preds {
                    let Pred::Expr(s) = p else {
                        unreachable!("pushable excludes picks")
                    };
                    rel = make_filter(rel, s);
                }
                rel
            } else {
                Rel::Step {
                    input: Box::new(input),
                    axis,
                    test,
                    preds,
                }
            }
        }
        Rel::AttrStep {
            input,
            name,
            has_preds,
        } => Rel::AttrStep {
            input: Box::new(rw_rel(*input)),
            name,
            has_preds,
        },
        Rel::Filter { input, pred } => {
            let input = rw_rel(*input);
            make_filter(input, rw_scalar(*pred, true))
        }
        Rel::ValueProbe {
            input,
            axis,
            test,
            pred,
        } => Rel::ValueProbe {
            input: Box::new(rw_rel(*input)),
            axis,
            test,
            pred,
        },
        Rel::MultiProbe {
            input,
            axis,
            test,
            preds,
        } => Rel::MultiProbe {
            input: Box::new(rw_rel(*input)),
            axis,
            test,
            preds,
        },
        Rel::GroupFilter { input, preds } => {
            let input = rw_rel(*input);
            let preds: Vec<Pred> = preds.into_iter().map(rw_pred).collect();
            if !preds.is_empty() && preds.iter().all(pushable) {
                let mut rel = input;
                for p in preds {
                    let Pred::Expr(s) = p else {
                        unreachable!("pushable excludes picks")
                    };
                    rel = make_filter(rel, s);
                }
                rel
            } else {
                Rel::GroupFilter {
                    input: Box::new(input),
                    preds,
                }
            }
        }
        Rel::Semijoin { input, probe, axis } => Rel::Semijoin {
            input: Box::new(rw_rel(*input)),
            probe: Box::new(rw_rel(*probe)),
            axis,
        },
        Rel::Union { left, right } => Rel::Union {
            left: Box::new(rw_rel(*left)),
            right: Box::new(rw_rel(*right)),
        },
        Rel::FromValue { value } => Rel::FromValue {
            value: Box::new(rw_scalar(*value, false)),
        },
        Rel::Const { rel } => Rel::Const {
            rel: Box::new(rw_rel(*rel)),
        },
        leaf @ (Rel::Context | Rel::Root | Rel::NameProbe { .. } | Rel::Unsupported { .. }) => leaf,
    };
    fuse(out)
}

/// Builds a pushed-down row filter — lowering it into a
/// [`Rel::ValueProbe`] when the input is a predicate-free indexable
/// step and the predicate is a recognizable literal comparison
/// (rule 5 of the module docs). Because pushdown folds a step's
/// predicates through here one at a time, a *second* recognizable
/// predicate lands on the just-built `ValueProbe` and upgrades it to a
/// [`Rel::MultiProbe`]; third and later ones append. The fold is
/// order-safe: pushdown already proved every predicate non-positional,
/// so they are pure per-candidate filters over one candidate set and
/// conjunction commutes. Unrecognizable predicates wrap the probe in a
/// plain `Filter` as before (the residual verify pass).
fn make_filter(input: Rel, pred: Scalar) -> Rel {
    let input = match input {
        Rel::Step {
            input: step_in,
            axis,
            test,
            preds,
        } if preds.is_empty()
            && matches!(
                axis,
                Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
            ) =>
        {
            match value_pred_of(&pred, &test) {
                Some(vp) => {
                    return Rel::ValueProbe {
                        input: step_in,
                        axis,
                        test,
                        pred: vp,
                    }
                }
                None => Rel::Step {
                    input: step_in,
                    axis,
                    test,
                    preds,
                },
            }
        }
        Rel::ValueProbe {
            input: probe_in,
            axis,
            test,
            pred: first,
        } => match value_pred_of(&pred, &test) {
            Some(vp) => {
                return Rel::MultiProbe {
                    input: probe_in,
                    axis,
                    test,
                    preds: vec![first, vp],
                }
            }
            None => Rel::ValueProbe {
                input: probe_in,
                axis,
                test,
                pred: first,
            },
        },
        Rel::MultiProbe {
            input: probe_in,
            axis,
            test,
            mut preds,
        } => match value_pred_of(&pred, &test) {
            Some(vp) => {
                preds.push(vp);
                return Rel::MultiProbe {
                    input: probe_in,
                    axis,
                    test,
                    preds,
                };
            }
            None => Rel::MultiProbe {
                input: probe_in,
                axis,
                test,
                preds,
            },
        },
        other => other,
    };
    Rel::Filter {
        input: Box::new(input),
        pred: Box::new(pred),
    }
}

/// Recognizes a lowerable value predicate: a comparison between a
/// candidate-relative value source and a literal. `test` is the probed
/// step's node test — text-content sources need a concrete element name
/// to key the index; attribute sources are keyed by the attribute name
/// alone, so `*[@a = "x"]` lowers too.
fn value_pred_of(pred: &Scalar, test: &NodeTest) -> Option<ValuePred> {
    let Scalar::Compare(op, a, b) = pred else {
        return None;
    };
    recognize_sides(*op, a, b, test).or_else(|| recognize_sides(flip(*op), b, a, test))
}

fn recognize_sides(op: CmpOp, lhs: &Scalar, rhs: &Scalar, test: &NodeTest) -> Option<ValuePred> {
    let source = source_of(lhs)?;
    match (&source, test) {
        (ValueSource::Attr(_), NodeTest::Name(_) | NodeTest::AnyElement) => {}
        (_, NodeTest::Name(_)) => {}
        _ => return None,
    }
    // Order comparisons always go through numbers in XPath 1.0, so a
    // string literal only qualifies if it parses (a NaN literal keeps
    // the scalar path — it compares false everywhere anyway).
    let num = |s: &Scalar| -> Option<f64> {
        match s {
            Scalar::Number(n) => Some(*n),
            Scalar::Literal(v) => {
                let n = mbxq_storage::xpath_number(v);
                (!n.is_nan()).then_some(n)
            }
            _ => None,
        }
    };
    let cmp = match (op, rhs) {
        (CmpOp::Eq, Scalar::Literal(v)) => ValueCmp::Eq(v.clone()),
        (CmpOp::Eq, Scalar::Number(n)) => ValueCmp::InRange(NumRange::exactly(*n)),
        (CmpOp::Gt, r) => ValueCmp::InRange(NumRange::at_least(num(r)?, false)),
        (CmpOp::Ge, r) => ValueCmp::InRange(NumRange::at_least(num(r)?, true)),
        (CmpOp::Lt, r) => ValueCmp::InRange(NumRange::at_most(num(r)?, false)),
        (CmpOp::Le, r) => ValueCmp::InRange(NumRange::at_most(num(r)?, true)),
        // `!=` keeps XPath's existential set semantics in the scalar
        // path (it is NOT the complement of `=`).
        _ => return None,
    };
    Some(ValuePred { source, cmp })
}

/// The candidate-relative value sources a probe can serve.
fn source_of(s: &Scalar) -> Option<ValueSource> {
    let Scalar::Nodes(rel) = s else { return None };
    match &**rel {
        // `.` — `self::node()` already fused to the bare context.
        Rel::Context => Some(ValueSource::SelfValue),
        Rel::AttrStep {
            input,
            name: Some(a),
            has_preds: false,
        } if matches!(**input, Rel::Context) => Some(ValueSource::Attr(a.clone())),
        Rel::Step {
            input,
            axis: Axis::Child,
            test: NodeTest::Name(c),
            preds,
        } if preds.is_empty() && matches!(**input, Rel::Context) => {
            Some(ValueSource::Child(c.clone()))
        }
        _ => None,
    }
}

/// Whether a predicate may leave its position scope (pushdown).
fn pushable(p: &Pred) -> bool {
    match p {
        Pred::First | Pred::Last => false,
        Pred::Expr(s) => plan::pred_is_non_positional(s),
    }
}

fn rw_pred(p: Pred) -> Pred {
    let Pred::Expr(s) = p else { return p };
    // Positional short-circuits first (before the scalar rules would
    // rewrite their subterms).
    if let Some(pick) = positional_pick(&s) {
        return pick;
    }
    // Predicates are boolean contexts — unless they are (possibly)
    // numeric, in which case they select by position and must keep
    // their value.
    let boolean_ctx = plan::pred_is_non_positional(&s);
    Pred::Expr(rw_scalar(s, boolean_ctx))
}

/// `[1]`, `[last()]`, `[position() = 1]`, `[position() = last()]`.
fn positional_pick(s: &Scalar) -> Option<Pred> {
    fn is_position(s: &Scalar) -> bool {
        matches!(s, Scalar::Call(name, args) if name == "position" && args.is_empty())
    }
    fn is_last(s: &Scalar) -> bool {
        matches!(s, Scalar::Call(name, args) if name == "last" && args.is_empty())
    }
    match s {
        Scalar::Number(n) if *n == 1.0 => Some(Pred::First),
        s if is_last(s) => Some(Pred::Last),
        Scalar::Compare(CmpOp::Eq, a, b) => {
            let (pos_side, other) = if is_position(a) {
                (true, b)
            } else if is_position(b) {
                (true, a)
            } else {
                (false, b)
            };
            if !pos_side {
                return None;
            }
            match &**other {
                Scalar::Number(n) if *n == 1.0 => Some(Pred::First),
                o if is_last(o) => Some(Pred::Last),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Step fusion + trivial-step elimination.
fn fuse(r: Rel) -> Rel {
    match r {
        // `descendant-or-self::node()/child::t` → `descendant::t`
        // (valid only with no predicates on either step: positional
        // predicates scope per parent on the child step).
        Rel::Step {
            input,
            axis: Axis::Child,
            test,
            preds,
        } if preds.is_empty() => match *input {
            Rel::Step {
                input: inner,
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyNode,
                preds: inner_preds,
            } if inner_preds.is_empty() => Rel::Step {
                input: inner,
                axis: Axis::Descendant,
                test,
                preds: Vec::new(),
            },
            other => Rel::Step {
                input: Box::new(other),
                axis: Axis::Child,
                test,
                preds,
            },
        },
        // `self::node()` with no predicates is the identity.
        Rel::Step {
            input,
            axis: Axis::SelfAxis,
            test: NodeTest::AnyNode,
            preds,
        } if preds.is_empty() => *input,
        other => other,
    }
}

// ---------------------------------------------------------------------
// Loop-invariant hoisting
// ---------------------------------------------------------------------

/// Wraps maximal invariant scalar subtrees in [`Scalar::Const`].
fn hoist_scalar(s: Scalar) -> Scalar {
    if plan::scalar_invariant(&s) && scalar_worth_hoisting(&s) {
        return Scalar::Const(Box::new(s));
    }
    match s {
        Scalar::Or(a, b) => Scalar::Or(Box::new(hoist_scalar(*a)), Box::new(hoist_scalar(*b))),
        Scalar::And(a, b) => Scalar::And(Box::new(hoist_scalar(*a)), Box::new(hoist_scalar(*b))),
        Scalar::Compare(op, a, b) => {
            Scalar::Compare(op, Box::new(hoist_scalar(*a)), Box::new(hoist_scalar(*b)))
        }
        Scalar::Arith(op, a, b) => {
            Scalar::Arith(op, Box::new(hoist_scalar(*a)), Box::new(hoist_scalar(*b)))
        }
        Scalar::Neg(e) => Scalar::Neg(Box::new(hoist_scalar(*e))),
        Scalar::Call(name, args) => {
            Scalar::Call(name, args.into_iter().map(hoist_scalar).collect())
        }
        Scalar::Agg(kind, rel) => Scalar::Agg(kind, Box::new(hoist_rel(*rel))),
        Scalar::Nodes(rel) => Scalar::Nodes(Box::new(hoist_rel(*rel))),
        leaf => leaf,
    }
}

/// Wraps maximal invariant relational subtrees in [`Rel::Const`] and
/// recurses into non-invariant structure (including predicate scalars,
/// whose own subterms may hoist).
fn hoist_rel(r: Rel) -> Rel {
    if plan::rel_invariant(&r) && rel_worth_hoisting(&r) {
        return Rel::Const { rel: Box::new(r) };
    }
    match r {
        Rel::Step {
            input,
            axis,
            test,
            preds,
        } => Rel::Step {
            input: Box::new(hoist_rel(*input)),
            axis,
            test,
            preds: preds.into_iter().map(hoist_pred).collect(),
        },
        Rel::AttrStep {
            input,
            name,
            has_preds,
        } => Rel::AttrStep {
            input: Box::new(hoist_rel(*input)),
            name,
            has_preds,
        },
        Rel::Filter { input, pred } => Rel::Filter {
            input: Box::new(hoist_rel(*input)),
            pred: Box::new(hoist_scalar(*pred)),
        },
        Rel::ValueProbe {
            input,
            axis,
            test,
            pred,
        } => Rel::ValueProbe {
            input: Box::new(hoist_rel(*input)),
            axis,
            test,
            pred,
        },
        Rel::MultiProbe {
            input,
            axis,
            test,
            preds,
        } => Rel::MultiProbe {
            input: Box::new(hoist_rel(*input)),
            axis,
            test,
            preds,
        },
        Rel::GroupFilter { input, preds } => Rel::GroupFilter {
            input: Box::new(hoist_rel(*input)),
            preds: preds.into_iter().map(hoist_pred).collect(),
        },
        Rel::Semijoin { input, probe, axis } => Rel::Semijoin {
            input: Box::new(hoist_rel(*input)),
            probe: Box::new(hoist_rel(*probe)),
            axis,
        },
        Rel::Union { left, right } => Rel::Union {
            left: Box::new(hoist_rel(*left)),
            right: Box::new(hoist_rel(*right)),
        },
        Rel::FromValue { value } => Rel::FromValue {
            value: Box::new(hoist_scalar(*value)),
        },
        leaf => leaf,
    }
}

fn hoist_pred(p: Pred) -> Pred {
    match p {
        Pred::Expr(s) => Pred::Expr(hoist_scalar(s)),
        pick => pick,
    }
}

/// Hoisting a leaf buys nothing; wrap only composite subtrees.
fn scalar_worth_hoisting(s: &Scalar) -> bool {
    !matches!(
        s,
        Scalar::Literal(_) | Scalar::Number(_) | Scalar::Var(_) | Scalar::Const(_)
    )
}

fn rel_worth_hoisting(r: &Rel) -> bool {
    !matches!(
        r,
        Rel::Root | Rel::Context | Rel::Const { .. } | Rel::Unsupported { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;
    use crate::plan::compile;

    fn rewritten(src: &str) -> Scalar {
        let tokens = lexer::lex(src).unwrap();
        rewrite(compile(&parser::parse(&tokens, src).unwrap()))
    }

    /// Strips Const markers for shape assertions.
    fn strip(s: &Scalar) -> &Scalar {
        match s {
            Scalar::Const(inner) => strip(inner),
            other => other,
        }
    }

    #[test]
    fn double_slash_fuses_to_descendant() {
        let plan = rewritten("//item");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let Rel::Step { axis, test, .. } = &**rel else {
            panic!("got {rel:?}")
        };
        assert_eq!(*axis, Axis::Descendant);
        assert!(matches!(test, NodeTest::Name(q) if q.local == "item"));
    }

    #[test]
    fn positional_predicate_blocks_fusion() {
        let plan = rewritten("//item[1]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let Rel::Step { axis, preds, .. } = &**rel else {
            panic!("got {rel:?}")
        };
        assert_eq!(*axis, Axis::Child, "positional pred keeps per-parent scope");
        assert_eq!(preds, &[Pred::First]);
    }

    #[test]
    fn last_becomes_a_pick() {
        let plan = rewritten("a[last()] | a[position() = last()]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let Rel::Union { left, right } = &**rel else {
            panic!()
        };
        for side in [left.as_ref(), right.as_ref()] {
            let Rel::Step { preds, .. } = side else {
                panic!()
            };
            assert_eq!(preds, &[Pred::Last]);
        }
    }

    #[test]
    fn count_gt_zero_becomes_exists() {
        match strip(&rewritten("count(//item) > 0")) {
            Scalar::Agg(AggKind::Exists, _) => {}
            other => panic!("expected exists, got {other:?}"),
        }
        match strip(&rewritten("0 = count(//item)")) {
            Scalar::Call(name, args) => {
                assert_eq!(name, "not");
                assert!(matches!(strip(&args[0]), Scalar::Agg(AggKind::Exists, _)));
            }
            other => panic!("expected not(exists), got {other:?}"),
        }
    }

    #[test]
    fn bare_node_set_predicates_become_existence_filters() {
        let plan = rewritten("//person[age]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let Rel::Filter { pred, .. } = &**rel else {
            panic!("predicate should push down, got {rel:?}")
        };
        assert!(matches!(&**pred, Scalar::Agg(AggKind::Exists, _)));
    }

    #[test]
    fn absolute_paths_hoist() {
        // Inside a predicate, the absolute subpath is loop-invariant.
        let plan = rewritten("item[count(//name) > 2]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let Rel::Filter { pred, .. } = &**rel else {
            panic!("got {rel:?}")
        };
        assert!(
            matches!(&**pred, Scalar::Const(_)),
            "invariant predicate must hoist, got {pred:?}"
        );
    }

    #[test]
    fn value_predicates_lower_to_probes() {
        // Attribute equality.
        let plan = rewritten("//item[@id = \"item42\"]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let Rel::ValueProbe { axis, pred, .. } = &**rel else {
            panic!("expected a value probe, got {rel:?}")
        };
        assert_eq!(*axis, Axis::Descendant);
        assert!(matches!(&pred.source, ValueSource::Attr(a) if a.local == "id"));
        assert!(matches!(&pred.cmp, ValueCmp::Eq(v) if v == "item42"));
        // Self comparison, numeric range, literal on the left (flip).
        for (src, lo_incl) in [("//price[. > 50]", false), ("//price[50 <= .]", true)] {
            let plan = rewritten(src);
            let Scalar::Nodes(rel) = strip(&plan) else {
                panic!()
            };
            let Rel::ValueProbe { pred, .. } = &**rel else {
                panic!("{src}: expected a value probe, got {rel:?}")
            };
            assert!(matches!(&pred.source, ValueSource::SelfValue), "{src}");
            let ValueCmp::InRange(r) = &pred.cmp else {
                panic!("{src}")
            };
            assert_eq!((r.lo, r.lo_incl), (50.0, lo_incl), "{src}");
        }
        // Child comparison.
        let plan = rewritten("//person[name = \"Alice\"]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let Rel::ValueProbe { pred, .. } = &**rel else {
            panic!("expected a value probe, got {rel:?}")
        };
        assert!(matches!(&pred.source, ValueSource::Child(c) if c.local == "name"));
        // `*[@a = ...]` lowers too (attribute probes need no element
        // name).
        let plan = rewritten("//*[@id = \"x\"]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        assert!(matches!(&**rel, Rel::ValueProbe { .. }), "got {rel:?}");
    }

    #[test]
    fn unsupported_value_shapes_stay_filters() {
        // `!=`, non-literal operands, positional predicates, `*[. = x]`.
        for src in [
            "//price[. != \"50\"]",
            "//item[@id = $v]",
            "//*[. = \"x\"]",
            "//price[. > name]",
        ] {
            let plan = rewritten(src);
            let Scalar::Nodes(rel) = strip(&plan) else {
                panic!("{src}")
            };
            assert!(
                !matches!(&**rel, Rel::ValueProbe { .. }),
                "{src} must not lower, got {rel:?}"
            );
        }
        // Positional predicates never reach the rule at all.
        let plan = rewritten("//item[2][@id = \"x\"]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        assert!(
            !matches!(&**rel, Rel::ValueProbe { .. }),
            "positional step must keep its scope, got {rel:?}"
        );
    }

    #[test]
    fn variables_hoist_inside_comparisons() {
        let plan = rewritten("item[@id = $want]");
        let Scalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let Rel::Filter { pred, .. } = &**rel else {
            panic!("non-positional comparison should push down, got {rel:?}")
        };
        assert!(matches!(&**pred, Scalar::Compare(..)));
    }
}
