//! Physical plans: the rewritten logical algebra lowered onto concrete
//! operators, with a **strategy slot** on every axis step.
//!
//! Lowering is shape-preserving — the executor (internal `eval`) keeps
//! the loop-lifted discipline either way — but each `Step` is annotated
//! with how its axis may be evaluated:
//!
//! * [`StepStrategy::Staircase`] — the staircase join + name filter
//!   (the interpreter's only path). Chosen for every axis/test the
//!   index cannot serve.
//! * [`StepStrategy::NameIndex`] — the element-name-index probe
//!   ([`mbxq_storage::TreeView::elements_named`]) followed by a range
//!   semijoin back to the context ([`mbxq_axes::range_semijoin`]);
//!   the explicit `NameProbe` + `Semijoin` form of the logical algebra,
//!   fused into one physical operator. Produced by lowering explicit
//!   `Semijoin` plans.
//! * [`StepStrategy::Cost`] — decided **per execution** from live
//!   statistics: the index arm is charged `k + 8·|context|` (the probe
//!   list plus a flat per-context-node fee for its binary searches),
//!   the staircase arm `4·Σ (size(c)+1)` — each scanned slot pays
//!   several view indirections, hence the weight (`SCAN_WEIGHT` in the
//!   executor). Statistics come from the view at run time, so one
//!   cached plan adapts as the document grows or shrinks; the
//!   [`crate::AxisChoice`] evaluation option pins either arm for
//!   ablation runs.
//!
//! Name tests on `child`, `descendant` and `descendant-or-self` axes
//! are the indexable shapes (the semijoin needs the candidates inside
//! the context region); everything else lowers to `Staircase`.

use crate::ast::{ArithOp, CmpOp};
use crate::plan::{AggKind, Pred, Rel, Scalar, ValuePred};
use mbxq_axes::{Axis, NodeTest};
use mbxq_xml::QName;

/// How an axis step may be evaluated (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum StepStrategy {
    /// Staircase join + name filter (always available).
    Staircase,
    /// Forced element-name-index probe + range semijoin.
    NameIndex(QName),
    /// Cost-chosen per execution between the two arms.
    Cost(QName),
}

/// A physical predicate slot (mirrors [`Pred`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPred {
    /// Keep each group's first row.
    First,
    /// Keep each group's last row.
    Last,
    /// General predicate with position semantics.
    Expr(PhysScalar),
}

/// Physical relational operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysRel {
    /// The evaluation context.
    Context,
    /// The document root element.
    Root,
    /// One axis step with its strategy slot.
    Step {
        /// Context relation.
        input: Box<PhysRel>,
        /// The axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
        /// Position-scoped predicates.
        preds: Vec<PhysPred>,
        /// How the axis is evaluated.
        strategy: StepStrategy,
    },
    /// The attribute step.
    AttrStep {
        /// Owner relation.
        input: Box<PhysRel>,
        /// Attribute name (`None` = `@*`).
        name: Option<QName>,
        /// Predicates present on the source step (unsupported).
        has_preds: bool,
    },
    /// Pushed-down non-positional row filter.
    Filter {
        /// Input relation.
        input: Box<PhysRel>,
        /// The predicate.
        pred: Box<PhysScalar>,
    },
    /// Whole-group predicates (`(expr)[pred]` scope).
    GroupFilter {
        /// Input relation.
        input: Box<PhysRel>,
        /// The predicates.
        preds: Vec<PhysPred>,
    },
    /// Element-name-index probe (document scan on index-less views).
    NameProbe {
        /// The element name.
        name: QName,
    },
    /// Value-predicate step: `axis::test` from the context restricted
    /// to candidates satisfying `pred`. Carries its own strategy slot,
    /// decided **per execution** from live statistics: the content
    /// index's posting-list estimate vs the context's region sizes —
    /// either a content-index probe + range semijoin, or the scalar
    /// scan (step + per-candidate predicate evaluation) it replaced.
    /// Forceable via [`crate::ValueChoice`]; counted in
    /// [`crate::EvalStats`].
    ValueProbe {
        /// Context relation.
        input: Box<PhysRel>,
        /// `Child`, `Descendant` or `DescendantOrSelf`.
        axis: Axis,
        /// The step's node test.
        test: NodeTest,
        /// The recognized value predicate.
        pred: ValuePred,
    },
    /// Multi-predicate value step: `axis::test` from the context with
    /// **all** of `preds` conjoined. The strategy is decided per
    /// execution from the pessimistic degree-bound estimator
    /// (per-index max/avg-postings statistics): rank the indexable
    /// predicates by their cardinality bound, then choose between a
    /// ranked posting-list intersection + range semijoin, the single
    /// best probe with residual verification, or the scalar scan.
    /// Forceable via [`crate::ValueChoice`]; counted in
    /// [`crate::EvalStats`].
    MultiProbe {
        /// Context relation.
        input: Box<PhysRel>,
        /// `Child`, `Descendant` or `DescendantOrSelf`.
        axis: Axis,
        /// The step's node test.
        test: NodeTest,
        /// The recognized value predicates (≥ 2).
        preds: Vec<ValuePred>,
    },
    /// Probe ⋉ context-region semijoin.
    Semijoin {
        /// Context relation.
        input: Box<PhysRel>,
        /// Candidate relation.
        probe: Box<PhysRel>,
        /// `Child`, `Descendant` or `DescendantOrSelf`.
        axis: Axis,
    },
    /// Per-iteration node-set union.
    Union {
        /// Left operand.
        left: Box<PhysRel>,
        /// Right operand.
        right: Box<PhysRel>,
    },
    /// A scalar value used as a node sequence.
    FromValue {
        /// The value-producing subplan.
        value: Box<PhysScalar>,
    },
    /// Loop-invariant subplan: evaluate once, broadcast.
    Const(Box<PhysRel>),
    /// Fails at execution time.
    Unsupported {
        /// The error text.
        message: String,
    },
}

/// Physical scalar operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysScalar {
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// Variable reference.
    Var(String),
    /// Short-circuit `or`.
    Or(Box<PhysScalar>, Box<PhysScalar>),
    /// Short-circuit `and`.
    And(Box<PhysScalar>, Box<PhysScalar>),
    /// Comparison.
    Compare(CmpOp, Box<PhysScalar>, Box<PhysScalar>),
    /// Arithmetic.
    Arith(ArithOp, Box<PhysScalar>, Box<PhysScalar>),
    /// Unary minus.
    Neg(Box<PhysScalar>),
    /// Function call.
    Call(String, Vec<PhysScalar>),
    /// Group cardinality.
    Count(Box<PhysRel>),
    /// Numeric sum over group string values.
    Sum(Box<PhysRel>),
    /// Group non-emptiness with early exit.
    Exists(Box<PhysRel>),
    /// A relation used as a value.
    Nodes(Box<PhysRel>),
    /// Loop-invariant subtree: evaluate once, broadcast.
    Const(Box<PhysScalar>),
}

/// Lowers a rewritten logical plan to its physical form.
pub fn lower(s: &Scalar) -> PhysScalar {
    match s {
        Scalar::Literal(v) => PhysScalar::Literal(v.clone()),
        Scalar::Number(n) => PhysScalar::Number(*n),
        Scalar::Var(name) => PhysScalar::Var(name.clone()),
        Scalar::Or(a, b) => PhysScalar::Or(Box::new(lower(a)), Box::new(lower(b))),
        Scalar::And(a, b) => PhysScalar::And(Box::new(lower(a)), Box::new(lower(b))),
        Scalar::Compare(op, a, b) => {
            PhysScalar::Compare(*op, Box::new(lower(a)), Box::new(lower(b)))
        }
        Scalar::Arith(op, a, b) => PhysScalar::Arith(*op, Box::new(lower(a)), Box::new(lower(b))),
        Scalar::Neg(e) => PhysScalar::Neg(Box::new(lower(e))),
        Scalar::Call(name, args) => {
            PhysScalar::Call(name.clone(), args.iter().map(lower).collect())
        }
        Scalar::Agg(AggKind::Count, rel) => PhysScalar::Count(Box::new(lower_rel(rel))),
        Scalar::Agg(AggKind::Sum, rel) => PhysScalar::Sum(Box::new(lower_rel(rel))),
        Scalar::Agg(AggKind::Exists, rel) => PhysScalar::Exists(Box::new(lower_rel(rel))),
        Scalar::Nodes(rel) => PhysScalar::Nodes(Box::new(lower_rel(rel))),
        Scalar::Const(inner) => PhysScalar::Const(Box::new(lower(inner))),
    }
}

fn lower_rel(r: &Rel) -> PhysRel {
    match r {
        Rel::Context => PhysRel::Context,
        Rel::Root => PhysRel::Root,
        Rel::Step {
            input,
            axis,
            test,
            preds,
        } => PhysRel::Step {
            input: Box::new(lower_rel(input)),
            axis: *axis,
            test: test.clone(),
            preds: preds.iter().map(lower_pred).collect(),
            strategy: choose_strategy(*axis, test),
        },
        Rel::AttrStep {
            input,
            name,
            has_preds,
        } => PhysRel::AttrStep {
            input: Box::new(lower_rel(input)),
            name: name.clone(),
            has_preds: *has_preds,
        },
        Rel::Filter { input, pred } => PhysRel::Filter {
            input: Box::new(lower_rel(input)),
            pred: Box::new(lower(pred)),
        },
        Rel::GroupFilter { input, preds } => PhysRel::GroupFilter {
            input: Box::new(lower_rel(input)),
            preds: preds.iter().map(lower_pred).collect(),
        },
        Rel::NameProbe { name } => PhysRel::NameProbe { name: name.clone() },
        Rel::ValueProbe {
            input,
            axis,
            test,
            pred,
        } => PhysRel::ValueProbe {
            input: Box::new(lower_rel(input)),
            axis: *axis,
            test: test.clone(),
            pred: pred.clone(),
        },
        Rel::MultiProbe {
            input,
            axis,
            test,
            preds,
        } => PhysRel::MultiProbe {
            input: Box::new(lower_rel(input)),
            axis: *axis,
            test: test.clone(),
            preds: preds.clone(),
        },
        Rel::Semijoin { input, probe, axis } => {
            // An explicit logical semijoin with a name probe is the
            // forced-index step.
            if let Rel::NameProbe { name } = &**probe {
                PhysRel::Step {
                    input: Box::new(lower_rel(input)),
                    axis: *axis,
                    test: NodeTest::Name(name.clone()),
                    preds: Vec::new(),
                    strategy: StepStrategy::NameIndex(name.clone()),
                }
            } else {
                PhysRel::Semijoin {
                    input: Box::new(lower_rel(input)),
                    probe: Box::new(lower_rel(probe)),
                    axis: *axis,
                }
            }
        }
        Rel::Union { left, right } => PhysRel::Union {
            left: Box::new(lower_rel(left)),
            right: Box::new(lower_rel(right)),
        },
        Rel::FromValue { value } => PhysRel::FromValue {
            value: Box::new(lower(value)),
        },
        Rel::Const { rel } => PhysRel::Const(Box::new(lower_rel(rel))),
        Rel::Unsupported { message } => PhysRel::Unsupported {
            message: message.clone(),
        },
    }
}

fn lower_pred(p: &Pred) -> PhysPred {
    match p {
        Pred::First => PhysPred::First,
        Pred::Last => PhysPred::Last,
        Pred::Expr(s) => PhysPred::Expr(lower(s)),
    }
}

/// The indexable shapes get a cost slot; everything else is staircase.
fn choose_strategy(axis: Axis, test: &NodeTest) -> StepStrategy {
    match (axis, test) {
        (Axis::Child | Axis::Descendant | Axis::DescendantOrSelf, NodeTest::Name(name)) => {
            StepStrategy::Cost(name.clone())
        }
        _ => StepStrategy::Staircase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile;
    use crate::rewrite::rewrite;
    use crate::{lexer, parser};

    fn phys(src: &str) -> PhysScalar {
        let tokens = lexer::lex(src).unwrap();
        lower(&rewrite(compile(&parser::parse(&tokens, src).unwrap())))
    }

    fn strip(s: &PhysScalar) -> &PhysScalar {
        match s {
            PhysScalar::Const(inner) => strip(inner),
            other => other,
        }
    }

    #[test]
    fn name_steps_get_cost_slots() {
        let plan = phys("//item");
        let PhysScalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let PhysRel::Step { strategy, .. } = &**rel else {
            panic!("got {rel:?}")
        };
        assert!(matches!(strategy, StepStrategy::Cost(name) if name.local == "item"));
    }

    #[test]
    fn non_name_steps_stay_staircase() {
        let plan = phys("//text()");
        let PhysScalar::Nodes(rel) = strip(&plan) else {
            panic!()
        };
        let PhysRel::Step { strategy, .. } = &**rel else {
            panic!("got {rel:?}")
        };
        assert_eq!(*strategy, StepStrategy::Staircase);
    }

    #[test]
    fn explicit_semijoin_lowers_to_forced_index_step() {
        use crate::plan::{Rel, Scalar};
        let logical = Scalar::Nodes(Box::new(Rel::Semijoin {
            input: Box::new(Rel::Context),
            probe: Box::new(Rel::NameProbe {
                name: QName::local("item"),
            }),
            axis: Axis::Descendant,
        }));
        let PhysScalar::Nodes(rel) = lower(&logical) else {
            panic!()
        };
        let PhysRel::Step { strategy, .. } = *rel else {
            panic!()
        };
        assert!(matches!(strategy, StepStrategy::NameIndex(_)));
    }
}
