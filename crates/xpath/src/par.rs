//! Morsel-parallel execution: a work-stealing worker pool plus the
//! group-aligned morsel splitter.
//!
//! # Morsels
//!
//! A physical step's input is an `(iter, pre)` relation. The executor
//! splits it into **morsels** — contiguous row ranges aligned to
//! iteration-group boundaries — and evaluates each morsel independently
//! on the pool. Group alignment is what keeps the split invisible:
//! staircase pruning, positional predicates and per-group picks all
//! operate *within* one iteration group, so a morsel holding whole
//! groups computes exactly what the sequential operator would compute
//! for those groups. Morsel results are concatenated in morsel order —
//! which is group order, which is `(iter, pre)` order — so the merged
//! output is **bit-identical** to the sequential result.
//!
//! Scan-heavy steps with few groups (`//desc` from the root is *one*
//! group) are instead split by their horizon-pruned subtree ranges (see
//! [`mbxq_axes::descendant_scan_ranges`]): disjoint ascending pre
//! ranges partition by slot volume, and concatenating the per-chunk
//! scans in range order reproduces document order exactly.
//!
//! # The pool
//!
//! [`WorkerPool::new`]`(threads)` pins `threads - 1` persistent
//! `std::thread` workers (the submitting thread is the remaining
//! worker). A run distributes morsel indexes round-robin over per-worker
//! deques; each worker pops its own queue from the front and, when
//! empty, **steals from the back** of a sibling's queue — the classic
//! morsel-driven balance: skewed morsels (one giant subtree region)
//! keep one worker busy while the others drain the rest.
//!
//! One pool is shared per [`Store`](../../mbxq_txn/struct.Store.html)
//! and lives as long as the store: queries borrow it per evaluation,
//! workers sleep on a condvar between runs, and `Drop` shuts them down.
//! Concurrent submitters do not queue behind each other: if a run is
//! already in flight, a second submitter simply executes its morsels
//! inline (sequentially) — under many concurrent readers every thread
//! is already busy, so parallelizing each individual query would only
//! add coordination cost.
//!
//! # Safety
//!
//! `run` erases the submitted closure's lifetime to hand it to the
//! workers. This is sound because `run` does not return until every
//! morsel has completed (the `remaining` counter) **and** every worker
//! that picked up the job has exited its drain loop (the `active`
//! counter) — so the borrow outlives all worker accesses, including a
//! worker that finished the last morsel but is still retrying pops
//! before noticing the queues are empty. A panicking morsel is caught
//! on the worker, the run completes, and the panic is re-raised on the
//! submitting thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// The closure type workers execute: one call per morsel index.
type Task<'a> = &'a (dyn Fn(usize) + Sync);
/// Lifetime-erased task stored in the shared pool state while a run is
/// in flight (see the module docs for why the erasure is sound).
type ErasedTask = &'static (dyn Fn(usize) + Sync);

/// Everything the workers share with the pool handle.
struct Shared {
    /// Current job + epoch; workers sleep on [`Shared::work_ready`]
    /// until the epoch moves past the one they last served.
    state: Mutex<PoolState>,
    work_ready: Condvar,
    /// Signalled when [`PoolState::active`] drops to zero — `run` waits
    /// on it so no worker is still inside [`drain`] when it returns.
    idle: Condvar,
    /// Per-participant morsel queues (slot 0 = the submitting thread).
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Morsels not yet finished in the current run.
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
    /// Cumulative cross-queue steals (the `EvalStats::steals` source).
    steals: AtomicU64,
    /// Whether any morsel of the current run panicked.
    panicked: AtomicBool,
}

struct PoolState {
    epoch: u64,
    shutdown: bool,
    job: Option<ErasedTask>,
    /// Spawned workers currently inside [`drain`] for `job`. Incremented
    /// under this lock when a worker takes the job, decremented when its
    /// drain returns; `run` waits for zero before ending the closure
    /// borrow, so a worker retrying pops can never observe a later run's
    /// queue entries while holding the previous run's task pointer.
    active: usize,
}

/// A persistent work-stealing thread pool executing query morsels.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    /// Serializes runs; a busy pool makes later submitters run inline.
    run_lock: Mutex<()>,
    threads: usize,
    /// Fixed cost of dispatching one morsel through the pool, in
    /// nanoseconds — measured once at spawn (see [`WorkerPool::new`])
    /// and read by the executor's break-even cost model.
    morsel_overhead_ns: u64,
    handles: Vec<JoinHandle<()>>,
}

/// Calibration floor: queue ops alone cost this much even on an
/// unloaded host, and a spuriously tiny measurement would make the
/// cost model parallelize everything.
const MORSEL_OVERHEAD_MIN_NS: u64 = 200;
/// Calibration ceiling: a de-scheduled calibration round on a loaded
/// host must not convince the cost model parallelism never pays.
const MORSEL_OVERHEAD_MAX_NS: u64 = 1_000_000;

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// A pool executing morsels on `threads` threads total: `threads -
    /// 1` spawned workers plus the submitting thread. `threads` is
    /// clamped to at least 1 (a 1-thread pool spawns nothing and `run`
    /// degenerates to a sequential loop).
    ///
    /// Spawning runs a short **calibration loop** — a few rounds of
    /// empty morsels — to measure the fixed per-morsel dispatch cost on
    /// this host. The executor's cost model multiplies that number by
    /// the planned morsel count when deciding whether a split's
    /// speedup beats its coordination overhead, replacing the fixed
    /// scan-volume threshold that assumed one overhead fits all hosts.
    pub fn new(threads: usize) -> WorkerPool {
        Self::with_overhead_ns(threads, None)
    }

    /// [`WorkerPool::new`] with the per-morsel overhead pinned instead
    /// of calibrated — reproducible plan choice in tests and benches,
    /// and the escape hatch `StoreConfig::morsel_overhead_ns` plumbs
    /// through.
    pub fn with_overhead_ns(threads: usize, overhead_ns: Option<u64>) -> WorkerPool {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                shutdown: false,
                job: None,
                active: 0,
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            steals: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..threads)
            .map(|slot| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mbxq-query-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawn query worker")
            })
            .collect();
        let mut pool = WorkerPool {
            shared,
            run_lock: Mutex::new(()),
            threads,
            morsel_overhead_ns: 0,
            handles,
        };
        pool.morsel_overhead_ns = match overhead_ns {
            Some(ns) => ns.clamp(MORSEL_OVERHEAD_MIN_NS, MORSEL_OVERHEAD_MAX_NS),
            None => pool.calibrate(),
        };
        pool
    }

    /// Measures the fixed dispatch cost of one morsel: a warm-up round
    /// (first touch pays thread wake-up and allocator noise), then the
    /// minimum over a few timed rounds of empty morsels, clamped to a
    /// sane band so scheduler hiccups on loaded hosts cannot poison
    /// every subsequent plan choice.
    fn calibrate(&self) -> u64 {
        const MORSELS: usize = 64;
        const ROUNDS: usize = 4;
        self.run(MORSELS, &|_| {});
        let mut best = u64::MAX;
        for _ in 0..ROUNDS {
            let t = std::time::Instant::now();
            self.run(MORSELS, &|_| {});
            let per = (t.elapsed().as_nanos() as u64) / MORSELS as u64;
            best = best.min(per);
        }
        best.clamp(MORSEL_OVERHEAD_MIN_NS, MORSEL_OVERHEAD_MAX_NS)
    }

    /// Total threads a run can occupy (spawned workers + submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The calibrated (or pinned) fixed cost of dispatching one morsel,
    /// in nanoseconds. Always within `[200, 1_000_000]`.
    pub fn morsel_overhead_ns(&self) -> u64 {
        self.morsel_overhead_ns
    }

    /// Cumulative cross-queue steals over the pool's lifetime (each
    /// [`WorkerPool::run`] returns the per-run delta of this counter).
    pub fn steals_total(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Executes `f(0), f(1), …, f(morsels - 1)`, each exactly once, on
    /// the pool; returns the number of cross-queue steals the run
    /// performed. Blocks until all morsels finished. If another run is
    /// already in flight (concurrent readers sharing the store's pool),
    /// the morsels execute inline on the caller instead.
    pub fn run(&self, morsels: usize, f: Task<'_>) -> u64 {
        if morsels == 0 {
            return 0;
        }
        let Ok(_guard) = self.run_lock.try_lock() else {
            for i in 0..morsels {
                f(i);
            }
            return 0;
        };
        // Lifetime erasure — sound because this function only returns
        // once `remaining` hits zero AND every participating worker has
        // left `drain` (the `active` wait below), i.e. after the last
        // worker access.
        let erased: ErasedTask = unsafe { std::mem::transmute::<Task<'_>, ErasedTask>(f) };
        let steals_before = self.shared.steals.load(Ordering::Relaxed);
        self.shared.panicked.store(false, Ordering::Relaxed);
        self.shared.remaining.store(morsels, Ordering::Release);
        for (i, queue) in (0..morsels).zip(self.shared.queues.iter().cycle()) {
            queue.lock().unwrap().push_back(i);
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(erased);
        }
        self.shared.work_ready.notify_all();
        // The submitter is participant 0.
        drain(&self.shared, erased, 0);
        // Wait out morsels other workers are still executing.
        let mut g = self.shared.done_lock.lock().unwrap();
        while self.shared.remaining.load(Ordering::Acquire) > 0 {
            g = self.shared.done.wait(g).unwrap();
        }
        drop(g);
        {
            // Retire the job so no late-waking worker can touch the
            // (about to be invalidated) closure borrow, then wait out
            // workers still inside `drain`: with zero morsels left their
            // pop/steal attempts all miss, but they must exit before the
            // borrow ends — otherwise a stale worker could race a
            // subsequent run and pop its morsels with this run's task.
            let mut st = self.shared.state.lock().unwrap();
            st.job = None;
            while st.active > 0 {
                st = self.shared.idle.wait(st).unwrap();
            }
        }
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("a query morsel panicked on the worker pool");
        }
        self.shared.steals.load(Ordering::Relaxed) - steals_before
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A spawned worker: sleep until a new job epoch, drain it, repeat.
/// Registers in [`PoolState::active`] for the duration of each drain
/// (taken and released under the state lock) so the submitting `run`
/// can wait until no worker still holds the run's task pointer.
fn worker_loop(shared: &Shared, me: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    if let Some(job) = st.job {
                        st.active += 1;
                        break job;
                    }
                }
                st = shared.work_ready.wait(st).unwrap();
            }
        };
        drain(shared, job, me);
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.idle.notify_all();
        }
    }
}

/// Executes morsels until every queue is empty: pop the own queue from
/// the front, then steal from siblings' backs.
fn drain(shared: &Shared, job: ErasedTask, me: usize) {
    let n = shared.queues.len();
    loop {
        let mut task = shared.queues[me].lock().unwrap().pop_front();
        let mut stolen = false;
        if task.is_none() {
            for other in 1..n {
                let victim = (me + other) % n;
                task = shared.queues[victim].lock().unwrap().pop_back();
                if task.is_some() {
                    stolen = true;
                    break;
                }
            }
        }
        let Some(index) = task else { return };
        if stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        if catch_unwind(AssertUnwindSafe(|| job(index))).is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = shared.done_lock.lock().unwrap();
            shared.done.notify_all();
        }
    }
}

/// Whether and how the executor may parallelize relation operators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ParChoice {
    /// Parallelize when a pool is available and the estimated work
    /// clears the fan-out threshold (the default).
    #[default]
    Auto,
    /// Never split, even with a pool — the oracle baseline.
    ForceSequential,
    /// Split whenever the input is splittable at all, regardless of
    /// size — stresses morsel boundaries in tests.
    ForceParallel,
}

/// Splits `0..len` into at most `parts` contiguous ranges aligned to
/// group boundaries: `groups[k]` is row `k`'s group tag (non-decreasing)
/// and no returned range ever splits a run of equal tags. Ranges are
/// ascending and cover all rows; fewer than `parts` come back when the
/// group structure does not support the fan-out.
pub(crate) fn morsel_ranges(groups: &[u32], parts: usize) -> Vec<(usize, usize)> {
    let len = groups.len();
    let mut out = Vec::new();
    if len == 0 || parts == 0 {
        return out;
    }
    let target = len.div_ceil(parts).max(1);
    let mut start = 0usize;
    while start < len {
        let mut end = (start + target).min(len);
        // Push the cut forward to the end of the group it landed in.
        while end < len && groups[end] == groups[end - 1] {
            end += 1;
        }
        out.push((start, end));
        start = end;
    }
    out
}

/// Splits disjoint ascending `(lo, hi)` pre ranges into at most `parts`
/// chunks of ranges with roughly equal total slot volume — the splitter
/// for the single-group descendant scan. Concatenating per-chunk scan
/// results in chunk order preserves document order because the ranges
/// themselves ascend.
pub(crate) fn range_chunks(ranges: &[(u64, u64)], parts: usize) -> Vec<Vec<(u64, u64)>> {
    let mut out: Vec<Vec<(u64, u64)>> = Vec::new();
    if ranges.is_empty() || parts == 0 {
        return out;
    }
    let total: u64 = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
    let target = (total / parts as u64).max(1);
    let mut current: Vec<(u64, u64)> = Vec::new();
    let mut current_vol = 0u64;
    for &(lo, hi) in ranges {
        let mut lo = lo;
        while hi - lo + current_vol > target && out.len() + 1 < parts {
            // Cut inside the range: scans are position-independent, so
            // a range can split anywhere (unlike group rows). When the
            // chunk is already full (`take == 0`) just flush it — don't
            // push a degenerate empty `(lo, lo)` range.
            let take = target - current_vol;
            if take > 0 {
                current.push((lo, lo + take));
                lo += take;
            }
            out.push(std::mem::take(&mut current));
            current_vol = 0;
        }
        if lo < hi {
            current.push((lo, hi));
            current_vol += hi - lo;
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_every_morsel_exactly_once() {
        let pool = WorkerPool::new(4);
        for n in [0usize, 1, 3, 64, 257] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n = {n}"
            );
        }
    }

    #[test]
    fn back_to_back_runs_never_cross_closures() {
        // Regression: a worker that decremented the last morsel but was
        // still retrying pops inside `drain` could race the next run —
        // popping its morsels with the PREVIOUS run's (dangling) task.
        // `run` now waits for all workers to exit `drain` before
        // returning, so each run's slots are hit by its own closure,
        // exactly once, even across rapid-fire runs.
        let pool = WorkerPool::new(4);
        for run in 0..200usize {
            let n = 1 + run % 7;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "run {run}: every morsel executed by its own run exactly once"
            );
        }
    }

    #[test]
    fn single_thread_pool_works_inline() {
        let pool = WorkerPool::new(1);
        let sum = AtomicU64::new(0);
        let steals = pool.run(100, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        assert_eq!(steals, 0, "nobody to steal from");
    }

    #[test]
    fn skewed_morsels_get_stolen() {
        let pool = WorkerPool::new(4);
        let mut total_steals = 0;
        for _ in 0..50 {
            let done = AtomicU64::new(0);
            total_steals += pool.run(32, &|i| {
                // Morsel 0 is slow: its owner's queue must be drained
                // by siblings.
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(done.load(Ordering::Relaxed), 32);
        }
        // Not asserted per-run (a 1-core container may finish the whole
        // queue before workers wake), but across 50 skewed runs at
        // least one steal is overwhelmingly likely on any scheduler —
        // and zero steals would still be correct, just unbalanced.
        let _ = total_steals;
    }

    #[test]
    fn morsel_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a panicked run.
        let ok = AtomicU64::new(0);
        pool.run(8, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrent_submitters_fall_back_inline() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = &pool;
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..20 {
                        pool.run(16, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * 16);
    }

    #[test]
    fn morsel_ranges_align_to_groups() {
        // Groups: 0 0 0 | 1 | 2 2 | 3 3 3 3
        let groups = [0, 0, 0, 1, 2, 2, 3, 3, 3, 3];
        for parts in 1..=8 {
            let ranges = morsel_ranges(&groups, parts);
            assert_eq!(ranges.first().unwrap().0, 0);
            assert_eq!(ranges.last().unwrap().1, groups.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous cover");
            }
            for &(start, end) in &ranges {
                assert!(start < end);
                if end < groups.len() {
                    assert_ne!(groups[end - 1], groups[end], "cut splits a group");
                }
            }
        }
        assert!(morsel_ranges(&[], 4).is_empty());
        // One giant group cannot split.
        assert_eq!(morsel_ranges(&[7; 100], 4), vec![(0, 100)]);
    }

    #[test]
    fn range_chunks_preserve_volume_and_order() {
        let ranges = [(0u64, 100u64), (150, 170), (200, 280)];
        for parts in 1..=6 {
            let chunks = range_chunks(&ranges, parts);
            assert!(chunks.len() <= parts.max(1));
            let vol: u64 = chunks.iter().flatten().map(|&(lo, hi)| hi - lo).sum();
            assert_eq!(vol, 200, "parts {parts}");
            // Flattened ranges stay ascending and disjoint.
            let flat: Vec<(u64, u64)> = chunks.into_iter().flatten().collect();
            for w in flat.windows(2) {
                assert!(w[0].1 <= w[1].0, "order at {w:?}");
            }
        }
        assert!(range_chunks(&[], 4).is_empty());
    }

    #[test]
    fn range_chunks_never_emit_empty_ranges() {
        // Regression: when a chunk filled to exactly `target` volume at
        // a range boundary, the splitter used to push a degenerate
        // `(lo, lo)` range before flushing.
        let cases: &[(&[(u64, u64)], usize)] = &[
            (&[(0, 10), (10, 20)], 2), // boundary lands exactly on a cut
            (&[(0, 8), (8, 16), (16, 24)], 3),
            (&[(0, 4), (100, 104)], 2),
            (&[(0, 100), (150, 170), (200, 280)], 5),
        ];
        for &(ranges, parts) in cases {
            let chunks = range_chunks(ranges, parts);
            let total: u64 = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
            let vol: u64 = chunks.iter().flatten().map(|&(lo, hi)| hi - lo).sum();
            assert_eq!(vol, total);
            for &(lo, hi) in chunks.iter().flatten() {
                assert!(lo < hi, "empty range ({lo}, {hi}) in {chunks:?}");
            }
        }
    }

    /// Minimal deterministic xorshift for the property tests below.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Seeded generator over the morsel splitter: random group shapes
    /// (single-row groups, long runs, tag gaps — "empty groups" in tag
    /// space) × random fan-outs must always yield a contiguous,
    /// group-aligned cover with no empty or out-of-order ranges.
    #[test]
    fn morsel_ranges_properties_hold_on_random_shapes() {
        for seed in 1..=200u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9e3779b97f4a7c15));
            let n_groups = rng.below(12) as usize;
            let mut groups: Vec<u32> = Vec::new();
            let mut tag = 0u32;
            for _ in 0..n_groups {
                // Gaps in tag space model iterations whose step result
                // was empty; run length 1 models single-row groups.
                tag += 1 + rng.below(3) as u32;
                let run = 1 + rng.below(9) as usize;
                groups.extend(std::iter::repeat_n(tag, run));
            }
            let parts = rng.below(10) as usize;
            let ranges = morsel_ranges(&groups, parts);
            if groups.is_empty() || parts == 0 {
                assert!(ranges.is_empty(), "seed {seed}");
                continue;
            }
            assert!(ranges.len() <= parts, "seed {seed}: at most `parts` ranges");
            assert_eq!(ranges.first().unwrap().0, 0, "seed {seed}");
            assert_eq!(ranges.last().unwrap().1, groups.len(), "seed {seed}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "seed {seed}: contiguous cover");
            }
            for &(start, end) in &ranges {
                assert!(start < end, "seed {seed}: no empty morsel");
                if end < groups.len() {
                    assert_ne!(
                        groups[end - 1],
                        groups[end],
                        "seed {seed}: cut splits a group"
                    );
                }
            }
        }
    }

    /// Seeded generator over the volume splitter: random disjoint
    /// ascending range lists (adjacent ranges, unit-width ranges, huge
    /// skew) × random fan-outs. Volume is conserved exactly, order and
    /// disjointness survive flattening, no chunk is empty, and no
    /// degenerate `(lo, lo)` range appears even when cuts land exactly
    /// on range boundaries (the PR 6 regression, now fuzzed).
    #[test]
    fn range_chunks_properties_hold_on_random_shapes() {
        for seed in 1..=200u64 {
            let mut rng = Rng(seed.wrapping_mul(0x2545f4914f6cdd1d));
            let n_ranges = rng.below(8) as usize;
            let mut ranges: Vec<(u64, u64)> = Vec::new();
            let mut lo = 0u64;
            for _ in 0..n_ranges {
                // `below(3) == 0` keeps ranges adjacent — cuts land on
                // boundaries; widths are skewed by squaring.
                lo += rng.below(3) * rng.below(40);
                let w = rng.below(12);
                let width = 1 + w * w;
                ranges.push((lo, lo + width));
                lo += width;
            }
            let parts = rng.below(7) as usize;
            let chunks = range_chunks(&ranges, parts);
            if ranges.is_empty() || parts == 0 {
                assert!(chunks.is_empty(), "seed {seed}");
                continue;
            }
            assert!(chunks.len() <= parts, "seed {seed}");
            let total: u64 = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
            let vol: u64 = chunks.iter().flatten().map(|&(lo, hi)| hi - lo).sum();
            assert_eq!(vol, total, "seed {seed}: volume conserved");
            assert!(
                chunks.iter().all(|c| !c.is_empty()),
                "seed {seed}: no empty chunk in {chunks:?}"
            );
            let flat: Vec<(u64, u64)> = chunks.iter().flatten().copied().collect();
            for &(lo, hi) in &flat {
                assert!(lo < hi, "seed {seed}: degenerate ({lo}, {hi})");
            }
            for w in flat.windows(2) {
                assert!(w[0].1 <= w[1].0, "seed {seed}: order at {w:?}");
            }
        }
    }

    #[test]
    fn overhead_is_calibrated_or_pinned_within_band() {
        let calibrated = WorkerPool::new(2);
        let ns = calibrated.morsel_overhead_ns();
        assert!((200..=1_000_000).contains(&ns), "calibrated {ns}");
        let pinned = WorkerPool::with_overhead_ns(2, Some(5_000));
        assert_eq!(pinned.morsel_overhead_ns(), 5_000);
        // Out-of-band pins are clamped, not trusted.
        assert_eq!(
            WorkerPool::with_overhead_ns(1, Some(1)).morsel_overhead_ns(),
            200
        );
    }
}
