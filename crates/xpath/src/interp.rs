//! The reference interpreter — the oracle arm of the plan pipeline.
//!
//! This is the original recursive AST evaluator: every location step
//! still runs loop-lifted through [`step_lifted`], but the evaluation
//! is driven directly by the syntax tree, with one hard-wired physical
//! strategy (staircase join + name filter) and ad-hoc loop-invariant
//! hoisting ([`Lifted::Const`]). The production entry points compile
//! through the plan layer instead ([`crate::plan`] → [`crate::rewrite`]
//! → [`crate::physical`] → the executor in [`crate::eval`]); this
//! module is retained as the independent reference implementation that
//! `tests/plan_oracle.rs` compares the planned execution against.

use crate::ast::{Expr, PathExpr, Step, StepTest};
use crate::eval::{
    apply_arith, apply_fn, compare, lifted_attributes, to_booleans, union_values, AttrSeq, Lifted,
    PredInfo, Value,
};
use crate::{Bindings, Result, XPathError};
use mbxq_axes::{step_lifted, Axis, ContextSeq, NodeTest};
use mbxq_storage::TreeView;

/// Evaluates `expr` with `context` as the context node set.
pub(crate) fn eval_expr<V: TreeView + ?Sized>(
    view: &V,
    expr: &Expr,
    context: &[u64],
    bnd: Option<&Bindings>,
) -> Result<Value> {
    match expr {
        Expr::Or(a, b) => {
            let va = eval_expr(view, a, context, bnd)?;
            if va.to_boolean() {
                return Ok(Value::Boolean(true));
            }
            Ok(Value::Boolean(
                eval_expr(view, b, context, bnd)?.to_boolean(),
            ))
        }
        Expr::And(a, b) => {
            let va = eval_expr(view, a, context, bnd)?;
            if !va.to_boolean() {
                return Ok(Value::Boolean(false));
            }
            Ok(Value::Boolean(
                eval_expr(view, b, context, bnd)?.to_boolean(),
            ))
        }
        Expr::Compare(op, a, b) => {
            let va = eval_expr(view, a, context, bnd)?;
            let vb = eval_expr(view, b, context, bnd)?;
            Ok(Value::Boolean(compare(view, *op, &va, &vb)))
        }
        Expr::Arith(op, a, b) => {
            let x = eval_expr(view, a, context, bnd)?.to_number(view);
            let y = eval_expr(view, b, context, bnd)?.to_number(view);
            Ok(Value::Number(apply_arith(*op, x, y)))
        }
        Expr::Neg(e) => Ok(Value::Number(
            -eval_expr(view, e, context, bnd)?.to_number(view),
        )),
        Expr::Union(a, b) => {
            let va = eval_expr(view, a, context, bnd)?;
            let vb = eval_expr(view, b, context, bnd)?;
            union_values(va, vb)
        }
        Expr::Literal(s) => Ok(Value::Str(s.clone())),
        Expr::Number(n) => Ok(Value::Number(*n)),
        Expr::Var(name) => lookup_var(name, bnd),
        Expr::Call(name, args) => {
            if name == "position" || name == "last" {
                return Err(XPathError::Eval {
                    message: format!("{name}() outside a predicate"),
                });
            }
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval_expr(view, a, context, bnd)?);
            }
            apply_fn(view, name, &argv, context.first().copied())
        }
        Expr::Path(p) => eval_path(view, p, context, bnd),
    }
}

/// Resolves `$name` against the bindings, with the `unbound variable`
/// error when absent.
pub(crate) fn lookup_var(name: &str, bnd: Option<&Bindings>) -> Result<Value> {
    bnd.and_then(|b| b.get(name).cloned())
        .ok_or_else(|| XPathError::Eval {
            message: format!("unbound variable ${name}"),
        })
}

// ---------------------------------------------------------------------
// Path evaluation — every step runs loop-lifted
// ---------------------------------------------------------------------

fn eval_path<V: TreeView + ?Sized>(
    view: &V,
    path: &PathExpr,
    context: &[u64],
    bnd: Option<&Bindings>,
) -> Result<Value> {
    let mut steps = path.steps.iter();
    let mut current: Value = if let Some(start) = &path.start {
        let v = eval_expr(view, start, context, bnd)?;
        apply_filter_predicates(view, v, &path.start_predicates, bnd)?
    } else if path.absolute {
        // Absolute paths start at the (virtual) *document node*, whose
        // only tree child is the root element: `/site` matches the root
        // element named `site`, and a bare `/` denotes the document node
        // itself (approximated by the root element here, since the
        // storage schema has no document-node tuple).
        match steps.next() {
            None => Value::Nodes(view.root_pre().into_iter().collect()),
            Some(first) => eval_step_from_document(view, first, bnd)?,
        }
    } else {
        Value::Nodes(context.to_vec())
    };
    for step in steps {
        current = eval_step(view, &current, step, bnd)?;
    }
    Ok(current)
}

/// Applies `(expr)[pred]` filter predicates: the whole node-set is one
/// context sequence (one group, document order), unlike step predicates
/// which scope `position()` per context node.
fn apply_filter_predicates<V: TreeView + ?Sized>(
    view: &V,
    input: Value,
    predicates: &[Expr],
    bnd: Option<&Bindings>,
) -> Result<Value> {
    if predicates.is_empty() {
        return Ok(input);
    }
    let Value::Nodes(ns) = input else {
        return Err(XPathError::Eval {
            message: format!("cannot filter a {}", input.type_name()),
        });
    };
    let mut seq = ContextSeq::single_iter(ns);
    for pred in predicates {
        seq = filter_predicate_lifted(view, seq, pred, false, bnd)?;
    }
    Ok(Value::Nodes(seq.pres))
}

/// Evaluates the first step of an absolute path against the virtual
/// document node.
fn eval_step_from_document<V: TreeView + ?Sized>(
    view: &V,
    step: &Step,
    bnd: Option<&Bindings>,
) -> Result<Value> {
    let root: Vec<u64> = view.root_pre().into_iter().collect();
    match &step.test {
        StepTest::Tree(Axis::Child | Axis::SelfAxis, test) => {
            // The document node's only child is the root element; `/self`
            // degenerates to the same singleton.
            let cands: Vec<u64> = root
                .into_iter()
                .filter(|&r| test.matches(view, r))
                .collect();
            let mut seq = ContextSeq::single_iter(cands);
            for pred in &step.predicates {
                seq = filter_predicate_lifted(view, seq, pred, false, bnd)?;
            }
            Ok(Value::Nodes(seq.pres))
        }
        StepTest::Tree(Axis::Descendant | Axis::DescendantOrSelf, test) => {
            // Every tree node descends from the document node.
            let ctx = ContextSeq::single_iter(root);
            let mut cands = step_lifted(view, &ctx, Axis::DescendantOrSelf, test);
            for pred in &step.predicates {
                cands = filter_predicate_lifted(view, cands, pred, false, bnd)?;
            }
            Ok(Value::Nodes(cands.pres))
        }
        StepTest::Tree(axis, _) => Err(XPathError::Eval {
            message: format!("axis {axis:?} cannot start from the document node"),
        }),
        StepTest::Attribute(_) => Err(XPathError::Eval {
            message: "the document node has no attributes".into(),
        }),
    }
}

fn eval_step<V: TreeView + ?Sized>(
    view: &V,
    input: &Value,
    step: &Step,
    bnd: Option<&Bindings>,
) -> Result<Value> {
    let nodes = match input {
        Value::Nodes(ns) => ns,
        other => {
            return Err(XPathError::Eval {
                message: format!("cannot apply a location step to a {}", other.type_name()),
            })
        }
    };
    match &step.test {
        StepTest::Attribute(name) => {
            if !step.predicates.is_empty() {
                return Err(XPathError::Eval {
                    message: "predicates on attribute steps are not supported".into(),
                });
            }
            let seq = ContextSeq::single_iter(nodes.clone());
            Ok(Value::Attrs(
                lifted_attributes(view, &seq, name.as_ref()).attrs,
            ))
        }
        StepTest::Tree(axis, test) => {
            let ctx = ContextSeq::single_iter(nodes.clone());
            let out = lifted_tree_step(view, &ctx, *axis, test, &step.predicates, bnd)?;
            Ok(Value::Nodes(out.merged_pres()))
        }
    }
}

/// One loop-lifted tree-axis step over a whole context relation,
/// predicates included. With no predicates this is a single
/// [`step_lifted`] invocation; with predicates, every `(iter, node)` row
/// is first expanded into its own nested iteration so each context node
/// owns its candidate list (the XPath `position()` scope), the
/// predicates run set-at-a-time over that nested relation, and the
/// survivors are regrouped under the outer iterations.
fn lifted_tree_step<V: TreeView + ?Sized>(
    view: &V,
    input: &ContextSeq,
    axis: Axis,
    test: &NodeTest,
    predicates: &[Expr],
    bnd: Option<&Bindings>,
) -> Result<ContextSeq> {
    if predicates.is_empty() {
        return Ok(step_lifted(view, input, axis, test));
    }
    // Reverse axes produce candidates here in document order; positional
    // predicates on them count from the far end per the XPath spec.
    let reverse = matches!(
        axis,
        Axis::Ancestor | Axis::AncestorOrSelf | Axis::Preceding | Axis::PrecedingSibling
    );
    let expanded = ContextSeq::lift(&input.pres);
    let mut cands = step_lifted(view, &expanded, axis, test);
    for pred in predicates {
        cands = filter_predicate_lifted(view, cands, pred, reverse, bnd)?;
    }
    // Map the nested iterations (one per input row) back to the outer
    // iteration ids and merge groups that share one.
    let row_tags: Vec<u32> = cands
        .iters
        .iter()
        .map(|&row| input.iters[row as usize])
        .collect();
    Ok(cands.regroup(&row_tags))
}

/// Applies one predicate to a candidate relation in a single lifted
/// pass: positions are computed per group, the expression is evaluated
/// for all candidates at once (each candidate is the context node of its
/// own iteration), and a row mask keeps the survivors.
fn filter_predicate_lifted<V: TreeView + ?Sized>(
    view: &V,
    cands: ContextSeq,
    pred: &Expr,
    reverse: bool,
    bnd: Option<&Bindings>,
) -> Result<ContextSeq> {
    if cands.is_empty() {
        return Ok(cands);
    }
    let (pos, last) = cands.positions(reverse);
    let info = PredInfo {
        pos: &pos,
        last: &last,
    };
    let v = eval_lifted(view, pred, &cands.pres, Some(&info), bnd)?;
    // A bare number predicate means position() = n.
    let keep: Vec<bool> = match &v {
        Lifted::Const(Value::Number(n)) => pos.iter().map(|&p| p == *n).collect(),
        Lifted::Numbers(ns) => ns.iter().zip(&pos).map(|(&n, &p)| p == n).collect(),
        other => (0..cands.len())
            .map(|i| other.value_at(i).to_boolean())
            .collect(),
    };
    Ok(cands.retain_rows(&keep))
}

// ---------------------------------------------------------------------
// Lifted expression evaluation
// ---------------------------------------------------------------------

/// Evaluates `expr` once for a whole iteration domain: iteration `i` has
/// the single context node `ctx[i]` (and, inside a predicate,
/// `pred.pos[i]` / `pred.last[i]`). This is the loop-lifted image of
/// "evaluate the expression for every context node".
fn eval_lifted<V: TreeView + ?Sized>(
    view: &V,
    expr: &Expr,
    ctx: &[u64],
    pred: Option<&PredInfo<'_>>,
    bnd: Option<&Bindings>,
) -> Result<Lifted> {
    let n = ctx.len();
    match expr {
        Expr::Or(a, b) => {
            let va = eval_lifted(view, a, ctx, pred, bnd)?;
            if let Lifted::Const(v) = &va {
                if v.to_boolean() {
                    return Ok(Lifted::Const(Value::Boolean(true)));
                }
                let vb = eval_lifted(view, b, ctx, pred, bnd)?;
                return Ok(to_booleans(vb, n));
            }
            // XPath short-circuits per context node: evaluate the right
            // operand only for the iterations the left one left
            // undecided (restricting the loop relation, not looping).
            let mut out: Vec<bool> = (0..n).map(|i| va.value_at(i).to_boolean()).collect();
            let undecided: Vec<usize> = (0..n).filter(|&i| !out[i]).collect();
            if !undecided.is_empty() {
                let vb = eval_on_rows(view, b, ctx, pred, &undecided, bnd)?;
                for (k, &i) in undecided.iter().enumerate() {
                    out[i] = vb[k];
                }
            }
            Ok(Lifted::Booleans(out))
        }
        Expr::And(a, b) => {
            let va = eval_lifted(view, a, ctx, pred, bnd)?;
            if let Lifted::Const(v) = &va {
                if !v.to_boolean() {
                    return Ok(Lifted::Const(Value::Boolean(false)));
                }
                let vb = eval_lifted(view, b, ctx, pred, bnd)?;
                return Ok(to_booleans(vb, n));
            }
            let mut out: Vec<bool> = (0..n).map(|i| va.value_at(i).to_boolean()).collect();
            let undecided: Vec<usize> = (0..n).filter(|&i| out[i]).collect();
            if !undecided.is_empty() {
                let vb = eval_on_rows(view, b, ctx, pred, &undecided, bnd)?;
                for (k, &i) in undecided.iter().enumerate() {
                    out[i] = vb[k];
                }
            }
            Ok(Lifted::Booleans(out))
        }
        Expr::Compare(op, a, b) => {
            let va = eval_lifted(view, a, ctx, pred, bnd)?;
            let vb = eval_lifted(view, b, ctx, pred, bnd)?;
            if let (Lifted::Const(x), Lifted::Const(y)) = (&va, &vb) {
                return Ok(Lifted::Const(Value::Boolean(compare(view, *op, x, y))));
            }
            Ok(Lifted::Booleans(
                (0..n)
                    .map(|i| compare(view, *op, &va.value_at(i), &vb.value_at(i)))
                    .collect(),
            ))
        }
        Expr::Arith(op, a, b) => {
            let va = eval_lifted(view, a, ctx, pred, bnd)?;
            let vb = eval_lifted(view, b, ctx, pred, bnd)?;
            if let (Lifted::Const(x), Lifted::Const(y)) = (&va, &vb) {
                return Ok(Lifted::Const(Value::Number(apply_arith(
                    *op,
                    x.to_number(view),
                    y.to_number(view),
                ))));
            }
            Ok(Lifted::Numbers(
                (0..n)
                    .map(|i| {
                        apply_arith(
                            *op,
                            va.value_at(i).to_number(view),
                            vb.value_at(i).to_number(view),
                        )
                    })
                    .collect(),
            ))
        }
        Expr::Neg(e) => {
            let v = eval_lifted(view, e, ctx, pred, bnd)?;
            if let Lifted::Const(x) = &v {
                return Ok(Lifted::Const(Value::Number(-x.to_number(view))));
            }
            Ok(Lifted::Numbers(
                (0..n).map(|i| -v.value_at(i).to_number(view)).collect(),
            ))
        }
        Expr::Union(a, b) => {
            let va = eval_lifted(view, a, ctx, pred, bnd)?;
            let vb = eval_lifted(view, b, ctx, pred, bnd)?;
            if va.is_const() && vb.is_const() {
                return Ok(Lifted::Const(union_values(va.value_at(0), vb.value_at(0))?));
            }
            let mut nodes = ContextSeq::new();
            let mut attrs: Option<AttrSeq> = None;
            for i in 0..n {
                match union_values(va.value_at(i), vb.value_at(i))? {
                    Value::Nodes(ns) => {
                        for p in ns {
                            nodes.push(i as u32, p);
                        }
                    }
                    Value::Attrs(ats) => {
                        let acc = attrs.get_or_insert_with(|| AttrSeq {
                            iters: Vec::new(),
                            attrs: Vec::new(),
                        });
                        for at in ats {
                            acc.iters.push(i as u32);
                            acc.attrs.push(at);
                        }
                    }
                    _ => unreachable!("union yields node sets"),
                }
            }
            Ok(match attrs {
                Some(a) => Lifted::Attrs(a),
                None => Lifted::Nodes(nodes),
            })
        }
        Expr::Literal(s) => Ok(Lifted::Const(Value::Str(s.clone()))),
        Expr::Number(x) => Ok(Lifted::Const(Value::Number(*x))),
        Expr::Var(name) => Ok(Lifted::Const(lookup_var(name, bnd)?)),
        Expr::Call(name, args) => eval_call_lifted(view, name, args, ctx, pred, bnd),
        Expr::Path(p) => eval_path_lifted(view, p, ctx, pred, bnd),
    }
}

/// Evaluates `expr` over the sub-domain selected by `rows` (indices into
/// the current domain) and returns one boolean per selected row — the
/// restricted loop relation behind per-iteration short-circuiting.
fn eval_on_rows<V: TreeView + ?Sized>(
    view: &V,
    expr: &Expr,
    ctx: &[u64],
    pred: Option<&PredInfo<'_>>,
    rows: &[usize],
    bnd: Option<&Bindings>,
) -> Result<Vec<bool>> {
    let sub_ctx: Vec<u64> = rows.iter().map(|&i| ctx[i]).collect();
    let sub_vectors = pred.map(|info| {
        (
            rows.iter().map(|&i| info.pos[i]).collect::<Vec<f64>>(),
            rows.iter().map(|&i| info.last[i]).collect::<Vec<f64>>(),
        )
    });
    let sub_info = sub_vectors
        .as_ref()
        .map(|(pos, last)| PredInfo { pos, last });
    let v = eval_lifted(view, expr, &sub_ctx, sub_info.as_ref(), bnd)?;
    Ok((0..rows.len())
        .map(|k| v.value_at(k).to_boolean())
        .collect())
}

/// Lifted path evaluation. Absolute paths are loop-invariant — they
/// evaluate once against the document and broadcast. Relative paths
/// start from each iteration's context node and run every step through
/// [`lifted_tree_step`].
fn eval_path_lifted<V: TreeView + ?Sized>(
    view: &V,
    path: &PathExpr,
    ctx: &[u64],
    pred: Option<&PredInfo<'_>>,
    bnd: Option<&Bindings>,
) -> Result<Lifted> {
    let n = ctx.len();
    if path.start.is_none() && path.absolute {
        return Ok(Lifted::Const(eval_path(view, path, &[], bnd)?));
    }
    let mut current: ContextSeq = match &path.start {
        Some(start) => {
            let mut v = eval_lifted(view, start, ctx, pred, bnd)?;
            if !path.start_predicates.is_empty() {
                // Filter predicates see each iteration's whole node-set
                // as one context sequence; an invariant set stays
                // invariant (the predicate only reads the candidates).
                v = match v {
                    Lifted::Const(flat) => Lifted::Const(apply_filter_predicates(
                        view,
                        flat,
                        &path.start_predicates,
                        bnd,
                    )?),
                    Lifted::Nodes(mut cs) => {
                        for p in &path.start_predicates {
                            cs = filter_predicate_lifted(view, cs, p, false, bnd)?;
                        }
                        Lifted::Nodes(cs)
                    }
                    other => {
                        return Err(XPathError::Eval {
                            message: format!("cannot filter a {}", other.type_name()),
                        })
                    }
                };
            }
            if path.steps.is_empty() {
                return Ok(v);
            }
            match v {
                Lifted::Nodes(cs) => cs,
                Lifted::Const(Value::Nodes(ns)) => {
                    // Broadcast the invariant set into every iteration.
                    let mut cs = ContextSeq::new();
                    for i in 0..n {
                        for &p in &ns {
                            cs.push(i as u32, p);
                        }
                    }
                    cs
                }
                other => {
                    return Err(XPathError::Eval {
                        message: format!("cannot apply a location step to a {}", other.type_name()),
                    })
                }
            }
        }
        None => {
            // Relative path: iteration i starts at its context node.
            let mut cs = ContextSeq::new();
            for (i, &p) in ctx.iter().enumerate() {
                cs.push(i as u32, p);
            }
            cs
        }
    };
    let mut attrs: Option<AttrSeq> = None;
    for step in &path.steps {
        if attrs.is_some() {
            return Err(XPathError::Eval {
                message: "cannot apply a location step to a attribute-set".into(),
            });
        }
        match &step.test {
            StepTest::Attribute(name) => {
                if !step.predicates.is_empty() {
                    return Err(XPathError::Eval {
                        message: "predicates on attribute steps are not supported".into(),
                    });
                }
                attrs = Some(lifted_attributes(view, &current, name.as_ref()));
            }
            StepTest::Tree(axis, test) => {
                current = lifted_tree_step(view, &current, *axis, test, &step.predicates, bnd)?;
            }
        }
    }
    Ok(match attrs {
        Some(a) => Lifted::Attrs(a),
        None => Lifted::Nodes(current),
    })
}

/// Lifted function application. `position()`/`last()` read the predicate
/// vectors; every other function with loop-invariant arguments is hoisted
/// and computed once; the rest apply element-wise across the domain.
fn eval_call_lifted<V: TreeView + ?Sized>(
    view: &V,
    name: &str,
    args: &[Expr],
    ctx: &[u64],
    pred: Option<&PredInfo<'_>>,
    bnd: Option<&Bindings>,
) -> Result<Lifted> {
    match name {
        "position" => {
            let info = pred.ok_or(XPathError::Eval {
                message: "position() outside a predicate".into(),
            })?;
            if !args.is_empty() {
                return Err(XPathError::Eval {
                    message: format!("position() expects 0 argument(s), got {}", args.len()),
                });
            }
            Ok(Lifted::Numbers(info.pos.to_vec()))
        }
        "last" => {
            let info = pred.ok_or(XPathError::Eval {
                message: "last() outside a predicate".into(),
            })?;
            if !args.is_empty() {
                return Err(XPathError::Eval {
                    message: format!("last() expects 0 argument(s), got {}", args.len()),
                });
            }
            Ok(Lifted::Numbers(info.last.to_vec()))
        }
        _ => {
            let mut largs = Vec::with_capacity(args.len());
            for a in args {
                largs.push(eval_lifted(view, a, ctx, pred, bnd)?);
            }
            // `string()` / `number()` / `name()` / `local-name()` /
            // `normalize-space()` / `string-length()` with no arguments
            // read the context node, so they cannot be hoisted.
            let context_free = !(args.is_empty()
                && matches!(
                    name,
                    "string"
                        | "number"
                        | "name"
                        | "local-name"
                        | "normalize-space"
                        | "string-length"
                ));
            if context_free && largs.iter().all(Lifted::is_const) {
                let flat: Vec<Value> = largs.iter().map(|a| a.value_at(0)).collect();
                return Ok(Lifted::Const(apply_fn(view, name, &flat, None)?));
            }
            let mut vals = Vec::with_capacity(ctx.len());
            for (i, &node) in ctx.iter().enumerate() {
                let argv: Vec<Value> = largs.iter().map(|a| a.value_at(i)).collect();
                vals.push(apply_fn(view, name, &argv, Some(node))?);
            }
            Ok(crate::eval::pack_values(vals))
        }
    }
}
