//! Recursive-descent parser for the XPath subset.
//!
//! Grammar (precedence climbing, loosest first):
//!
//! ```text
//! Expr        := OrExpr
//! OrExpr      := AndExpr ('or' AndExpr)*
//! AndExpr     := CmpExpr ('and' CmpExpr)*
//! CmpExpr     := AddExpr (('='|'!='|'<'|'<='|'>'|'>=') AddExpr)*
//! AddExpr     := MulExpr (('+'|'-') MulExpr)*
//! MulExpr     := UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
//! UnaryExpr   := '-'* UnionExpr
//! UnionExpr   := PathExpr ('|' PathExpr)*
//! PathExpr    := Literal | Number | FunctionCall | LocationPath
//!              | '(' Expr ')' ('/'|'//' RelativePath)?
//! ```

use crate::ast::{ArithOp, CmpOp, Expr, PathExpr, Step, StepTest};
use crate::lexer::{Token, TokenKind};
use crate::{Result, XPathError};
use mbxq_axes::{Axis, NodeTest};
use mbxq_xml::QName;

pub(crate) fn parse(tokens: &[Token], src: &str) -> Result<Expr> {
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    let expr = p.expr()?;
    if p.pos != tokens.len() {
        return Err(XPathError::Parse {
            message: "trailing tokens after expression".into(),
            offset: p.offset(),
        });
    }
    Ok(expr)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    src_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |t| t.offset)
    }

    fn bump(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        self.pos += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(XPathError::Parse {
                message: format!("expected {what}"),
                offset: self.offset(),
            })
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(XPathError::Parse {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(TokenKind::Name(n)) if n == "or") {
            self.pos += 1;
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.cmp_expr()?;
        while matches!(self.peek(), Some(TokenKind::Name(n)) if n == "and") {
            self.pos += 1;
            let right = self.cmp_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let mut left = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Eq) => CmpOp::Eq,
                Some(TokenKind::Ne) => CmpOp::Ne,
                Some(TokenKind::Lt) => CmpOp::Lt,
                Some(TokenKind::Le) => CmpOp::Le,
                Some(TokenKind::Gt) => CmpOp::Gt,
                Some(TokenKind::Ge) => CmpOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let right = self.add_expr()?;
            left = Expr::Compare(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => ArithOp::Add,
                Some(TokenKind::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => ArithOp::Mul,
                Some(TokenKind::Name(n)) if n == "div" => ArithOp::Div,
                Some(TokenKind::Name(n)) if n == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.peek() == Some(&TokenKind::Minus) {
            self.pos += 1;
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<Expr> {
        let mut left = self.path_expr()?;
        while self.peek() == Some(&TokenKind::Pipe) {
            self.pos += 1;
            let right = self.path_expr()?;
            left = Expr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn path_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(TokenKind::Literal(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Expr::Literal(s))
            }
            Some(TokenKind::Number(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(Expr::Number(n))
            }
            Some(TokenKind::Var(name)) => {
                let var = Expr::Var(name.clone());
                self.pos += 1;
                // `$v/steps` and `$v[pred]` — a variable is a primary
                // expression and may start a path, like `(expr)`.
                if matches!(
                    self.peek(),
                    Some(TokenKind::Slash)
                        | Some(TokenKind::DoubleSlash)
                        | Some(TokenKind::LBracket)
                ) {
                    let mut steps = Vec::new();
                    let mut start_predicates = Vec::new();
                    while self.peek() == Some(&TokenKind::LBracket) {
                        self.pos += 1;
                        start_predicates.push(self.expr()?);
                        self.expect(&TokenKind::RBracket, "']'")?;
                    }
                    self.relative_path_into(&mut steps)?;
                    Ok(Expr::Path(PathExpr {
                        absolute: false,
                        start: Some(Box::new(var)),
                        start_predicates,
                        steps,
                    }))
                } else {
                    Ok(var)
                }
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                // `(expr)/more/steps` or `(expr)[pred]`…
                if matches!(
                    self.peek(),
                    Some(TokenKind::Slash)
                        | Some(TokenKind::DoubleSlash)
                        | Some(TokenKind::LBracket)
                ) {
                    let mut steps = Vec::new();
                    // Filter predicates directly on the parenthesized
                    // set — they see the whole set as one context.
                    let mut start_predicates = Vec::new();
                    while self.peek() == Some(&TokenKind::LBracket) {
                        self.pos += 1;
                        start_predicates.push(self.expr()?);
                        self.expect(&TokenKind::RBracket, "']'")?;
                    }
                    self.relative_path_into(&mut steps)?;
                    Ok(Expr::Path(PathExpr {
                        absolute: false,
                        start: Some(Box::new(inner)),
                        start_predicates,
                        steps,
                    }))
                } else {
                    Ok(inner)
                }
            }
            Some(TokenKind::Name(name))
                if self.peek2() == Some(&TokenKind::LParen) && !is_node_type(name) =>
            {
                // Function call.
                let fname = name.clone();
                self.pos += 2;
                let mut args = Vec::new();
                if self.peek() != Some(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.peek() == Some(&TokenKind::Comma) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen, "')' closing the argument list")?;
                Ok(Expr::Call(fname, args))
            }
            _ => self.location_path().map(Expr::Path),
        }
    }

    fn location_path(&mut self) -> Result<PathExpr> {
        let mut steps = Vec::new();
        let absolute = match self.peek() {
            Some(TokenKind::Slash) => {
                self.pos += 1;
                // A bare "/" selects the root.
                if self.at_path_end() {
                    return Ok(PathExpr {
                        absolute: true,
                        start: None,
                        start_predicates: Vec::new(),
                        steps,
                    });
                }
                true
            }
            Some(TokenKind::DoubleSlash) => {
                self.pos += 1;
                steps.push(descendant_or_self_step());
                true
            }
            _ => false,
        };
        self.step_into(&mut steps)?;
        self.relative_path_tail(&mut steps)?;
        Ok(PathExpr {
            absolute,
            start: None,
            start_predicates: Vec::new(),
            steps,
        })
    }

    /// Parses `('/' Step | '//' Step)*` continuations.
    fn relative_path_tail(&mut self, steps: &mut Vec<Step>) -> Result<()> {
        loop {
            match self.peek() {
                Some(TokenKind::Slash) => {
                    self.pos += 1;
                    self.step_into(steps)?;
                }
                Some(TokenKind::DoubleSlash) => {
                    self.pos += 1;
                    steps.push(descendant_or_self_step());
                    self.step_into(steps)?;
                }
                _ => return Ok(()),
            }
        }
    }

    /// Parses a relative path that must begin right here (after
    /// `(expr)/`).
    fn relative_path_into(&mut self, steps: &mut Vec<Step>) -> Result<()> {
        match self.peek() {
            Some(TokenKind::Slash) => {
                self.pos += 1;
                self.step_into(steps)?;
            }
            Some(TokenKind::DoubleSlash) => {
                self.pos += 1;
                steps.push(descendant_or_self_step());
                self.step_into(steps)?;
            }
            _ => return Ok(()), // only predicates were present
        }
        self.relative_path_tail(steps)
    }

    fn at_path_end(&self) -> bool {
        !matches!(
            self.peek(),
            Some(TokenKind::Name(_))
                | Some(TokenKind::Star)
                | Some(TokenKind::At)
                | Some(TokenKind::Dot)
                | Some(TokenKind::DotDot)
        )
    }

    fn step_into(&mut self, steps: &mut Vec<Step>) -> Result<()> {
        let test = match self.peek() {
            Some(TokenKind::Dot) => {
                self.pos += 1;
                StepTest::Tree(Axis::SelfAxis, NodeTest::AnyNode)
            }
            Some(TokenKind::DotDot) => {
                self.pos += 1;
                StepTest::Tree(Axis::Parent, NodeTest::AnyNode)
            }
            Some(TokenKind::At) => {
                self.pos += 1;
                match self.bump() {
                    Some(TokenKind::Name(n)) => {
                        let name = n.clone();
                        StepTest::Attribute(Some(parse_qname(&name, self.offset())?))
                    }
                    Some(TokenKind::Star) => StepTest::Attribute(None),
                    _ => return self.err("expected attribute name after '@'"),
                }
            }
            Some(TokenKind::Star) => {
                self.pos += 1;
                StepTest::Tree(Axis::Child, NodeTest::AnyElement)
            }
            Some(TokenKind::Name(n)) => {
                let name = n.clone();
                if self.peek2() == Some(&TokenKind::DoubleColon) {
                    // Explicit axis.
                    self.pos += 2;
                    let axis = parse_axis(&name).ok_or_else(|| XPathError::Parse {
                        message: format!("unknown axis '{name}'"),
                        offset: self.offset(),
                    })?;
                    match axis {
                        AxisOrAttr::Attr => match self.bump() {
                            Some(TokenKind::Name(n2)) => {
                                let n2 = n2.clone();
                                StepTest::Attribute(Some(parse_qname(&n2, self.offset())?))
                            }
                            Some(TokenKind::Star) => StepTest::Attribute(None),
                            _ => return self.err("expected name after attribute::"),
                        },
                        AxisOrAttr::Tree(axis) => {
                            let test = self.node_test()?;
                            StepTest::Tree(axis, test)
                        }
                    }
                } else {
                    // Abbreviated child step (or a kind test).
                    let test = self.node_test()?;
                    StepTest::Tree(Axis::Child, test)
                }
            }
            _ => return self.err("expected a location step"),
        };
        let mut predicates = Vec::new();
        while self.peek() == Some(&TokenKind::LBracket) {
            self.pos += 1;
            predicates.push(self.expr()?);
            self.expect(&TokenKind::RBracket, "']' closing the predicate")?;
        }
        steps.push(Step { test, predicates });
        Ok(())
    }

    /// Parses a node test: `*`, `name`, `text()`, `comment()`, `node()`,
    /// `processing-instruction('t'?)`. The current token must be the
    /// test's first token.
    fn node_test(&mut self) -> Result<NodeTest> {
        match self.peek() {
            Some(TokenKind::Star) => {
                self.pos += 1;
                Ok(NodeTest::AnyElement)
            }
            Some(TokenKind::Name(n)) => {
                let name = n.clone();
                if self.peek2() == Some(&TokenKind::LParen) && is_node_type(&name) {
                    self.pos += 2;
                    let test = match name.as_str() {
                        "text" => NodeTest::Text,
                        "comment" => NodeTest::Comment,
                        "node" => NodeTest::AnyNode,
                        "processing-instruction" => {
                            if let Some(TokenKind::Literal(t)) = self.peek() {
                                let t = t.clone();
                                self.pos += 1;
                                NodeTest::PiTarget(t)
                            } else {
                                NodeTest::AnyPi
                            }
                        }
                        _ => unreachable!("is_node_type is exhaustive"),
                    };
                    self.expect(&TokenKind::RParen, "')' closing the node test")?;
                    Ok(test)
                } else {
                    self.pos += 1;
                    Ok(NodeTest::Name(parse_qname(&name, self.offset())?))
                }
            }
            _ => self.err("expected a node test"),
        }
    }
}

fn descendant_or_self_step() -> Step {
    Step {
        test: StepTest::Tree(Axis::DescendantOrSelf, NodeTest::AnyNode),
        predicates: Vec::new(),
    }
}

fn is_node_type(name: &str) -> bool {
    matches!(name, "text" | "comment" | "node" | "processing-instruction")
}

enum AxisOrAttr {
    Tree(Axis),
    Attr,
}

fn parse_axis(name: &str) -> Option<AxisOrAttr> {
    Some(match name {
        "child" => AxisOrAttr::Tree(Axis::Child),
        "descendant" => AxisOrAttr::Tree(Axis::Descendant),
        "descendant-or-self" => AxisOrAttr::Tree(Axis::DescendantOrSelf),
        "parent" => AxisOrAttr::Tree(Axis::Parent),
        "ancestor" => AxisOrAttr::Tree(Axis::Ancestor),
        "ancestor-or-self" => AxisOrAttr::Tree(Axis::AncestorOrSelf),
        "following-sibling" => AxisOrAttr::Tree(Axis::FollowingSibling),
        "preceding-sibling" => AxisOrAttr::Tree(Axis::PrecedingSibling),
        "following" => AxisOrAttr::Tree(Axis::Following),
        "preceding" => AxisOrAttr::Tree(Axis::Preceding),
        "self" => AxisOrAttr::Tree(Axis::SelfAxis),
        "attribute" => AxisOrAttr::Attr,
        _ => return None,
    })
}

fn parse_qname(text: &str, offset: usize) -> Result<QName> {
    QName::parse(text).ok_or(XPathError::Parse {
        message: format!("malformed name '{text}'"),
        offset,
    })
}
