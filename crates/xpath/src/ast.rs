//! Abstract syntax of the XPath subset.

use mbxq_axes::{Axis, NodeTest};
use mbxq_xml::QName;

/// A full expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `e1 or e2`
    Or(Box<Expr>, Box<Expr>),
    /// `e1 and e2`
    And(Box<Expr>, Box<Expr>),
    /// Comparison (`=  !=  <  <=  >  >=`) with XPath 1.0 node-set
    /// semantics.
    Compare(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic (`+  -  *  div  mod`).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `e1 | e2` — node-set union.
    Union(Box<Expr>, Box<Expr>),
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Variable reference (`$name`), resolved against the
    /// [`crate::Bindings`] supplied at evaluation time.
    Var(String),
    /// A location path (optionally rooted in a parenthesized primary
    /// expression, e.g. `(…)/a/b`).
    Path(PathExpr),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// Whether the path starts at the document root (`/…`).
    pub absolute: bool,
    /// Optional primary-expression start (`(expr)/step/…`).
    pub start: Option<Box<Expr>>,
    /// Filter predicates applied directly to the start expression
    /// (`(expr)[pred]`). Unlike step predicates, these see the *whole*
    /// start node-set as one context: `(//b)[2]` is the second `b` in
    /// the document, not the second `b` per parent.
    pub start_predicates: Vec<Expr>,
    /// The steps, applied left to right.
    pub steps: Vec<Step>,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// What the step selects.
    pub test: StepTest,
    /// Predicates, applied in order with XPath position semantics.
    pub predicates: Vec<Expr>,
}

/// The axis + node test of a step. The attribute axis is separated
/// because its results are attribute values, not tree tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum StepTest {
    /// A tree axis with a node test.
    Tree(Axis, NodeTest),
    /// `attribute::name` / `@name` (None = `@*`).
    Attribute(Option<QName>),
}
