//! Evaluator: compiles the AST onto the loop-lifted staircase-join
//! engine.
//!
//! Every location step — top-level or nested inside a predicate — is
//! executed *set-at-a-time*: the whole context flows through
//! [`step_lifted`] as a [`ContextSeq`] (an `(iter, pre)` relation) and
//! each axis is evaluated in **one** operator invocation per step, never
//! once per context node. Predicates follow the same discipline: the
//! candidate relation is expanded so that every candidate becomes its own
//! iteration (Pathfinder's loop-lifting of the implicit `for` over the
//! context), the predicate expression is evaluated for *all* iterations
//! in one pass ([`eval_lifted`]), and a row mask selects the survivors.
//! Loop-invariant subexpressions (literals, absolute paths) are hoisted:
//! they evaluate once and broadcast as [`Lifted::Const`].

use crate::ast::{ArithOp, CmpOp, Expr, PathExpr, Step, StepTest};
use crate::{Result, XPathError};
use mbxq_axes::{step_lifted, Axis, ContextSeq, NodeTest};
use mbxq_storage::{QnId, TreeView};

/// An XPath 1.0 value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Tree nodes in document order (pre ranks).
    Nodes(Vec<u64>),
    /// Attribute nodes as `(owner pre, attribute name id)` pairs.
    Attrs(Vec<(u64, QnId)>),
    /// A number.
    Number(f64),
    /// A boolean.
    Boolean(bool),
    /// A string.
    Str(String),
}

impl Value {
    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nodes(_) => "node-set",
            Value::Attrs(_) => "attribute-set",
            Value::Number(_) => "number",
            Value::Boolean(_) => "boolean",
            Value::Str(_) => "string",
        }
    }

    /// XPath boolean coercion.
    pub fn to_boolean(&self) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Attrs(a) => !a.is_empty(),
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Boolean(b) => *b,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// XPath string coercion (first node's string value for node sets).
    pub fn to_str<V: TreeView + ?Sized>(&self, view: &V) -> String {
        match self {
            Value::Nodes(ns) => ns.first().map_or(String::new(), |&p| view.string_value(p)),
            Value::Attrs(a) => a
                .first()
                .and_then(|&(owner, qn)| attr_value(view, owner, qn))
                .unwrap_or_default(),
            Value::Number(n) => format_number(*n),
            Value::Boolean(b) => b.to_string(),
            Value::Str(s) => s.clone(),
        }
    }

    /// XPath number coercion.
    pub fn to_number<V: TreeView + ?Sized>(&self, view: &V) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => str_to_number(&other.to_str(view)),
        }
    }

    /// All string values (one per node/attribute; singleton otherwise).
    fn string_values<V: TreeView + ?Sized>(&self, view: &V) -> Vec<String> {
        match self {
            Value::Nodes(ns) => ns.iter().map(|&p| view.string_value(p)).collect(),
            Value::Attrs(a) => a
                .iter()
                .map(|&(owner, qn)| attr_value(view, owner, qn).unwrap_or_default())
                .collect(),
            other => vec![other.to_str(view)],
        }
    }

    fn is_set(&self) -> bool {
        matches!(self, Value::Nodes(_) | Value::Attrs(_))
    }
}

fn attr_value<V: TreeView + ?Sized>(view: &V, owner: u64, qn: QnId) -> Option<String> {
    view.attributes(owner)
        .into_iter()
        .find(|&(n, _)| n == qn)
        .and_then(|(_, p)| view.pool().prop(p).map(str::to_string))
}

fn str_to_number(s: &str) -> f64 {
    let t = s.trim();
    // Rust's f64 parser accepts "inf"/"NaN" spellings XPath does not, and
    // XPath numbers have no exponent syntax.
    if t.is_empty()
        || t.chars()
            .any(|c| !(c.is_ascii_digit() || c == '.' || c == '-'))
        || t.matches('-').count() > 1
        || (t.contains('-') && !t.starts_with('-'))
    {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// XPath 1.0 `string()` rendering of a number (§4.4 of the spec): `NaN`,
/// signed `Infinity`, integers without a decimal point (negative zero
/// renders as `0`), everything else in decimal form.
pub(crate) fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else if n == 0.0 {
        // Covers -0.0: XPath renders both zeros as "0".
        "0".to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Evaluates `expr` with `context` as the context node set.
pub(crate) fn eval_expr<V: TreeView + ?Sized>(
    view: &V,
    expr: &Expr,
    context: &[u64],
) -> Result<Value> {
    match expr {
        Expr::Or(a, b) => {
            let va = eval_expr(view, a, context)?;
            if va.to_boolean() {
                return Ok(Value::Boolean(true));
            }
            Ok(Value::Boolean(eval_expr(view, b, context)?.to_boolean()))
        }
        Expr::And(a, b) => {
            let va = eval_expr(view, a, context)?;
            if !va.to_boolean() {
                return Ok(Value::Boolean(false));
            }
            Ok(Value::Boolean(eval_expr(view, b, context)?.to_boolean()))
        }
        Expr::Compare(op, a, b) => {
            let va = eval_expr(view, a, context)?;
            let vb = eval_expr(view, b, context)?;
            Ok(Value::Boolean(compare(view, *op, &va, &vb)))
        }
        Expr::Arith(op, a, b) => {
            let x = eval_expr(view, a, context)?.to_number(view);
            let y = eval_expr(view, b, context)?.to_number(view);
            Ok(Value::Number(apply_arith(*op, x, y)))
        }
        Expr::Neg(e) => Ok(Value::Number(-eval_expr(view, e, context)?.to_number(view))),
        Expr::Union(a, b) => {
            let va = eval_expr(view, a, context)?;
            let vb = eval_expr(view, b, context)?;
            union_values(va, vb)
        }
        Expr::Literal(s) => Ok(Value::Str(s.clone())),
        Expr::Number(n) => Ok(Value::Number(*n)),
        Expr::Call(name, args) => {
            if name == "position" || name == "last" {
                return Err(XPathError::Eval {
                    message: format!("{name}() outside a predicate"),
                });
            }
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval_expr(view, a, context)?);
            }
            apply_fn(view, name, &argv, context.first().copied())
        }
        Expr::Path(p) => eval_path(view, p, context),
    }
}

fn apply_arith(op: ArithOp, x: f64, y: f64) -> f64 {
    match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
        ArithOp::Mod => x % y,
    }
}

/// The `|` operator on already-evaluated operands.
fn union_values(a: Value, b: Value) -> Result<Value> {
    match (a, b) {
        (Value::Nodes(mut x), Value::Nodes(y)) => {
            x.extend(y);
            x.sort_unstable();
            x.dedup();
            Ok(Value::Nodes(x))
        }
        (Value::Attrs(mut x), Value::Attrs(y)) => {
            x.extend(y);
            x.sort_unstable_by_key(|&(p, q)| (p, q.0));
            x.dedup();
            Ok(Value::Attrs(x))
        }
        (a, b) => Err(XPathError::Eval {
            message: format!(
                "union requires node sets, got {} and {}",
                a.type_name(),
                b.type_name()
            ),
        }),
    }
}

/// XPath 1.0 comparison semantics: if either side is a set, the
/// comparison existentially quantifies over its string values.
fn compare<V: TreeView + ?Sized>(view: &V, op: CmpOp, a: &Value, b: &Value) -> bool {
    let num_cmp = |x: f64, y: f64| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    let str_cmp = |x: &str, y: &str| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        // Order comparisons always go through numbers in XPath 1.0.
        _ => num_cmp(str_to_number(x), str_to_number(y)),
    };
    match (a.is_set(), b.is_set()) {
        (true, true) => {
            let xs = a.string_values(view);
            let ys = b.string_values(view);
            xs.iter().any(|x| ys.iter().any(|y| str_cmp(x, y)))
        }
        (true, false) => {
            let xs = a.string_values(view);
            match b {
                Value::Number(n) => xs.iter().any(|x| num_cmp(str_to_number(x), *n)),
                Value::Boolean(bb) => {
                    let ab = a.to_boolean();
                    num_cmp(ab as u8 as f64, *bb as u8 as f64)
                }
                _ => {
                    let y = b.to_str(view);
                    xs.iter().any(|x| str_cmp(x, &y))
                }
            }
        }
        (false, true) => {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
            };
            compare(view, flipped, b, a)
        }
        (false, false) => match (a, b) {
            (Value::Boolean(_), _) | (_, Value::Boolean(_)) => {
                num_cmp(a.to_boolean() as u8 as f64, b.to_boolean() as u8 as f64)
            }
            (Value::Number(_), _) | (_, Value::Number(_)) => {
                num_cmp(a.to_number(view), b.to_number(view))
            }
            _ => str_cmp(&a.to_str(view), &b.to_str(view)),
        },
    }
}

// ---------------------------------------------------------------------
// Path evaluation — every step runs loop-lifted
// ---------------------------------------------------------------------

fn eval_path<V: TreeView + ?Sized>(view: &V, path: &PathExpr, context: &[u64]) -> Result<Value> {
    let mut steps = path.steps.iter();
    let mut current: Value = if let Some(start) = &path.start {
        let v = eval_expr(view, start, context)?;
        apply_filter_predicates(view, v, &path.start_predicates)?
    } else if path.absolute {
        // Absolute paths start at the (virtual) *document node*, whose
        // only tree child is the root element: `/site` matches the root
        // element named `site`, and a bare `/` denotes the document node
        // itself (approximated by the root element here, since the
        // storage schema has no document-node tuple).
        match steps.next() {
            None => Value::Nodes(view.root_pre().into_iter().collect()),
            Some(first) => eval_step_from_document(view, first)?,
        }
    } else {
        Value::Nodes(context.to_vec())
    };
    for step in steps {
        current = eval_step(view, &current, step)?;
    }
    Ok(current)
}

/// Applies `(expr)[pred]` filter predicates: the whole node-set is one
/// context sequence (one group, document order), unlike step predicates
/// which scope `position()` per context node.
fn apply_filter_predicates<V: TreeView + ?Sized>(
    view: &V,
    input: Value,
    predicates: &[Expr],
) -> Result<Value> {
    if predicates.is_empty() {
        return Ok(input);
    }
    let Value::Nodes(ns) = input else {
        return Err(XPathError::Eval {
            message: format!("cannot filter a {}", input.type_name()),
        });
    };
    let mut seq = ContextSeq::single_iter(ns);
    for pred in predicates {
        seq = filter_predicate_lifted(view, seq, pred, false)?;
    }
    Ok(Value::Nodes(seq.pres))
}

/// Evaluates the first step of an absolute path against the virtual
/// document node.
fn eval_step_from_document<V: TreeView + ?Sized>(view: &V, step: &Step) -> Result<Value> {
    let root: Vec<u64> = view.root_pre().into_iter().collect();
    match &step.test {
        StepTest::Tree(Axis::Child | Axis::SelfAxis, test) => {
            // The document node's only child is the root element; `/self`
            // degenerates to the same singleton.
            let cands: Vec<u64> = root
                .into_iter()
                .filter(|&r| test.matches(view, r))
                .collect();
            let mut seq = ContextSeq::single_iter(cands);
            for pred in &step.predicates {
                seq = filter_predicate_lifted(view, seq, pred, false)?;
            }
            Ok(Value::Nodes(seq.pres))
        }
        StepTest::Tree(Axis::Descendant | Axis::DescendantOrSelf, test) => {
            // Every tree node descends from the document node.
            let ctx = ContextSeq::single_iter(root);
            let mut cands = step_lifted(view, &ctx, Axis::DescendantOrSelf, test);
            for pred in &step.predicates {
                cands = filter_predicate_lifted(view, cands, pred, false)?;
            }
            Ok(Value::Nodes(cands.pres))
        }
        StepTest::Tree(axis, _) => Err(XPathError::Eval {
            message: format!("axis {axis:?} cannot start from the document node"),
        }),
        StepTest::Attribute(_) => Err(XPathError::Eval {
            message: "the document node has no attributes".into(),
        }),
    }
}

fn eval_step<V: TreeView + ?Sized>(view: &V, input: &Value, step: &Step) -> Result<Value> {
    let nodes = match input {
        Value::Nodes(ns) => ns,
        other => {
            return Err(XPathError::Eval {
                message: format!("cannot apply a location step to a {}", other.type_name()),
            })
        }
    };
    match &step.test {
        StepTest::Attribute(name) => {
            if !step.predicates.is_empty() {
                return Err(XPathError::Eval {
                    message: "predicates on attribute steps are not supported".into(),
                });
            }
            let seq = ContextSeq::single_iter(nodes.clone());
            Ok(Value::Attrs(
                lifted_attributes(view, &seq, name.as_ref()).attrs,
            ))
        }
        StepTest::Tree(axis, test) => {
            let ctx = ContextSeq::single_iter(nodes.clone());
            let out = lifted_tree_step(view, &ctx, *axis, test, &step.predicates)?;
            Ok(Value::Nodes(out.merged_pres()))
        }
    }
}

/// One loop-lifted tree-axis step over a whole context relation,
/// predicates included. With no predicates this is a single
/// [`step_lifted`] invocation; with predicates, every `(iter, node)` row
/// is first expanded into its own nested iteration so each context node
/// owns its candidate list (the XPath `position()` scope), the
/// predicates run set-at-a-time over that nested relation, and the
/// survivors are regrouped under the outer iterations.
fn lifted_tree_step<V: TreeView + ?Sized>(
    view: &V,
    input: &ContextSeq,
    axis: Axis,
    test: &NodeTest,
    predicates: &[Expr],
) -> Result<ContextSeq> {
    if predicates.is_empty() {
        return Ok(step_lifted(view, input, axis, test));
    }
    // Reverse axes produce candidates here in document order; positional
    // predicates on them count from the far end per the XPath spec.
    let reverse = matches!(
        axis,
        Axis::Ancestor | Axis::AncestorOrSelf | Axis::Preceding | Axis::PrecedingSibling
    );
    let expanded = ContextSeq::lift(&input.pres);
    let mut cands = step_lifted(view, &expanded, axis, test);
    for pred in predicates {
        cands = filter_predicate_lifted(view, cands, pred, reverse)?;
    }
    // Map the nested iterations (one per input row) back to the outer
    // iteration ids and merge groups that share one.
    let row_tags: Vec<u32> = cands
        .iters
        .iter()
        .map(|&row| input.iters[row as usize])
        .collect();
    Ok(cands.regroup(&row_tags))
}

/// Applies one predicate to a candidate relation in a single lifted
/// pass: positions are computed per group, the expression is evaluated
/// for all candidates at once (each candidate is the context node of its
/// own iteration), and a row mask keeps the survivors.
fn filter_predicate_lifted<V: TreeView + ?Sized>(
    view: &V,
    cands: ContextSeq,
    pred: &Expr,
    reverse: bool,
) -> Result<ContextSeq> {
    if cands.is_empty() {
        return Ok(cands);
    }
    let (pos, last) = cands.positions(reverse);
    let info = PredInfo {
        pos: &pos,
        last: &last,
    };
    let v = eval_lifted(view, pred, &cands.pres, Some(&info))?;
    // A bare number predicate means position() = n.
    let keep: Vec<bool> = match &v {
        Lifted::Const(Value::Number(n)) => pos.iter().map(|&p| p == *n).collect(),
        Lifted::Numbers(ns) => ns.iter().zip(&pos).map(|(&n, &p)| p == n).collect(),
        other => (0..cands.len())
            .map(|i| other.value_at(i).to_boolean())
            .collect(),
    };
    Ok(cands.retain_rows(&keep))
}

// ---------------------------------------------------------------------
// Lifted expression evaluation
// ---------------------------------------------------------------------

/// `position()` / `last()` vectors for the current predicate scope, one
/// entry per iteration.
struct PredInfo<'a> {
    pos: &'a [f64],
    last: &'a [f64],
}

/// Iteration-tagged attribute relation (`iter, owner pre, name id`).
struct AttrSeq {
    iters: Vec<u32>,
    attrs: Vec<(u64, QnId)>,
}

impl AttrSeq {
    fn of_iter(&self, iter: u32) -> Vec<(u64, QnId)> {
        let lo = self.iters.partition_point(|&i| i < iter);
        let hi = self.iters.partition_point(|&i| i <= iter);
        self.attrs[lo..hi].to_vec()
    }
}

/// The result of evaluating an expression over a whole iteration domain
/// at once — one logical value per iteration.
enum Lifted {
    /// Loop-invariant: the same value in every iteration (computed once).
    Const(Value),
    /// Per-iteration node sets.
    Nodes(ContextSeq),
    /// Per-iteration attribute sets.
    Attrs(AttrSeq),
    /// One number per iteration.
    Numbers(Vec<f64>),
    /// One boolean per iteration.
    Booleans(Vec<bool>),
    /// One string per iteration.
    Strs(Vec<String>),
}

impl Lifted {
    /// Materializes iteration `i`'s value.
    fn value_at(&self, i: usize) -> Value {
        match self {
            Lifted::Const(v) => v.clone(),
            Lifted::Nodes(cs) => Value::Nodes(cs.pres_of_iter(i as u32).to_vec()),
            Lifted::Attrs(a) => Value::Attrs(a.of_iter(i as u32)),
            Lifted::Numbers(v) => Value::Number(v[i]),
            Lifted::Booleans(v) => Value::Boolean(v[i]),
            Lifted::Strs(v) => Value::Str(v[i].clone()),
        }
    }

    fn is_const(&self) -> bool {
        matches!(self, Lifted::Const(_))
    }
}

/// Evaluates `expr` once for a whole iteration domain: iteration `i` has
/// the single context node `ctx[i]` (and, inside a predicate,
/// `pred.pos[i]` / `pred.last[i]`). This is the loop-lifted image of
/// "evaluate the expression for every context node".
fn eval_lifted<V: TreeView + ?Sized>(
    view: &V,
    expr: &Expr,
    ctx: &[u64],
    pred: Option<&PredInfo<'_>>,
) -> Result<Lifted> {
    let n = ctx.len();
    match expr {
        Expr::Or(a, b) => {
            let va = eval_lifted(view, a, ctx, pred)?;
            if let Lifted::Const(v) = &va {
                if v.to_boolean() {
                    return Ok(Lifted::Const(Value::Boolean(true)));
                }
                let vb = eval_lifted(view, b, ctx, pred)?;
                return Ok(to_booleans(vb, n));
            }
            // XPath short-circuits per context node: evaluate the right
            // operand only for the iterations the left one left
            // undecided (restricting the loop relation, not looping).
            let mut out: Vec<bool> = (0..n).map(|i| va.value_at(i).to_boolean()).collect();
            let undecided: Vec<usize> = (0..n).filter(|&i| !out[i]).collect();
            if !undecided.is_empty() {
                let vb = eval_on_rows(view, b, ctx, pred, &undecided)?;
                for (k, &i) in undecided.iter().enumerate() {
                    out[i] = vb[k];
                }
            }
            Ok(Lifted::Booleans(out))
        }
        Expr::And(a, b) => {
            let va = eval_lifted(view, a, ctx, pred)?;
            if let Lifted::Const(v) = &va {
                if !v.to_boolean() {
                    return Ok(Lifted::Const(Value::Boolean(false)));
                }
                let vb = eval_lifted(view, b, ctx, pred)?;
                return Ok(to_booleans(vb, n));
            }
            let mut out: Vec<bool> = (0..n).map(|i| va.value_at(i).to_boolean()).collect();
            let undecided: Vec<usize> = (0..n).filter(|&i| out[i]).collect();
            if !undecided.is_empty() {
                let vb = eval_on_rows(view, b, ctx, pred, &undecided)?;
                for (k, &i) in undecided.iter().enumerate() {
                    out[i] = vb[k];
                }
            }
            Ok(Lifted::Booleans(out))
        }
        Expr::Compare(op, a, b) => {
            let va = eval_lifted(view, a, ctx, pred)?;
            let vb = eval_lifted(view, b, ctx, pred)?;
            if let (Lifted::Const(x), Lifted::Const(y)) = (&va, &vb) {
                return Ok(Lifted::Const(Value::Boolean(compare(view, *op, x, y))));
            }
            Ok(Lifted::Booleans(
                (0..n)
                    .map(|i| compare(view, *op, &va.value_at(i), &vb.value_at(i)))
                    .collect(),
            ))
        }
        Expr::Arith(op, a, b) => {
            let va = eval_lifted(view, a, ctx, pred)?;
            let vb = eval_lifted(view, b, ctx, pred)?;
            if let (Lifted::Const(x), Lifted::Const(y)) = (&va, &vb) {
                return Ok(Lifted::Const(Value::Number(apply_arith(
                    *op,
                    x.to_number(view),
                    y.to_number(view),
                ))));
            }
            Ok(Lifted::Numbers(
                (0..n)
                    .map(|i| {
                        apply_arith(
                            *op,
                            va.value_at(i).to_number(view),
                            vb.value_at(i).to_number(view),
                        )
                    })
                    .collect(),
            ))
        }
        Expr::Neg(e) => {
            let v = eval_lifted(view, e, ctx, pred)?;
            if let Lifted::Const(x) = &v {
                return Ok(Lifted::Const(Value::Number(-x.to_number(view))));
            }
            Ok(Lifted::Numbers(
                (0..n).map(|i| -v.value_at(i).to_number(view)).collect(),
            ))
        }
        Expr::Union(a, b) => {
            let va = eval_lifted(view, a, ctx, pred)?;
            let vb = eval_lifted(view, b, ctx, pred)?;
            if va.is_const() && vb.is_const() {
                return Ok(Lifted::Const(union_values(va.value_at(0), vb.value_at(0))?));
            }
            let mut nodes = ContextSeq::new();
            let mut attrs: Option<AttrSeq> = None;
            for i in 0..n {
                match union_values(va.value_at(i), vb.value_at(i))? {
                    Value::Nodes(ns) => {
                        for p in ns {
                            nodes.push(i as u32, p);
                        }
                    }
                    Value::Attrs(ats) => {
                        let acc = attrs.get_or_insert_with(|| AttrSeq {
                            iters: Vec::new(),
                            attrs: Vec::new(),
                        });
                        for at in ats {
                            acc.iters.push(i as u32);
                            acc.attrs.push(at);
                        }
                    }
                    _ => unreachable!("union yields node sets"),
                }
            }
            Ok(match attrs {
                Some(a) => Lifted::Attrs(a),
                None => Lifted::Nodes(nodes),
            })
        }
        Expr::Literal(s) => Ok(Lifted::Const(Value::Str(s.clone()))),
        Expr::Number(x) => Ok(Lifted::Const(Value::Number(*x))),
        Expr::Call(name, args) => eval_call_lifted(view, name, args, ctx, pred),
        Expr::Path(p) => eval_path_lifted(view, p, ctx, pred),
    }
}

/// Evaluates `expr` over the sub-domain selected by `rows` (indices into
/// the current domain) and returns one boolean per selected row — the
/// restricted loop relation behind per-iteration short-circuiting.
fn eval_on_rows<V: TreeView + ?Sized>(
    view: &V,
    expr: &Expr,
    ctx: &[u64],
    pred: Option<&PredInfo<'_>>,
    rows: &[usize],
) -> Result<Vec<bool>> {
    let sub_ctx: Vec<u64> = rows.iter().map(|&i| ctx[i]).collect();
    let sub_vectors = pred.map(|info| {
        (
            rows.iter().map(|&i| info.pos[i]).collect::<Vec<f64>>(),
            rows.iter().map(|&i| info.last[i]).collect::<Vec<f64>>(),
        )
    });
    let sub_info = sub_vectors
        .as_ref()
        .map(|(pos, last)| PredInfo { pos, last });
    let v = eval_lifted(view, expr, &sub_ctx, sub_info.as_ref())?;
    Ok((0..rows.len())
        .map(|k| v.value_at(k).to_boolean())
        .collect())
}

fn to_booleans(v: Lifted, n: usize) -> Lifted {
    match v {
        Lifted::Const(x) => Lifted::Const(Value::Boolean(x.to_boolean())),
        Lifted::Booleans(b) => Lifted::Booleans(b),
        other => Lifted::Booleans((0..n).map(|i| other.value_at(i).to_boolean()).collect()),
    }
}

/// Lifted path evaluation. Absolute paths are loop-invariant — they
/// evaluate once against the document and broadcast. Relative paths
/// start from each iteration's context node and run every step through
/// [`lifted_tree_step`].
fn eval_path_lifted<V: TreeView + ?Sized>(
    view: &V,
    path: &PathExpr,
    ctx: &[u64],
    pred: Option<&PredInfo<'_>>,
) -> Result<Lifted> {
    let n = ctx.len();
    if path.start.is_none() && path.absolute {
        return Ok(Lifted::Const(eval_path(view, path, &[])?));
    }
    let mut current: ContextSeq = match &path.start {
        Some(start) => {
            let mut v = eval_lifted(view, start, ctx, pred)?;
            if !path.start_predicates.is_empty() {
                // Filter predicates see each iteration's whole node-set
                // as one context sequence; an invariant set stays
                // invariant (the predicate only reads the candidates).
                v = match v {
                    Lifted::Const(flat) => {
                        Lifted::Const(apply_filter_predicates(view, flat, &path.start_predicates)?)
                    }
                    Lifted::Nodes(mut cs) => {
                        for p in &path.start_predicates {
                            cs = filter_predicate_lifted(view, cs, p, false)?;
                        }
                        Lifted::Nodes(cs)
                    }
                    other => {
                        return Err(XPathError::Eval {
                            message: format!("cannot filter a {}", lifted_type_name(&other)),
                        })
                    }
                };
            }
            if path.steps.is_empty() {
                return Ok(v);
            }
            match v {
                Lifted::Nodes(cs) => cs,
                Lifted::Const(Value::Nodes(ns)) => {
                    // Broadcast the invariant set into every iteration.
                    let mut cs = ContextSeq::new();
                    for i in 0..n {
                        for &p in &ns {
                            cs.push(i as u32, p);
                        }
                    }
                    cs
                }
                other => {
                    return Err(XPathError::Eval {
                        message: format!(
                            "cannot apply a location step to a {}",
                            lifted_type_name(&other)
                        ),
                    })
                }
            }
        }
        None => {
            // Relative path: iteration i starts at its context node.
            let mut cs = ContextSeq::new();
            for (i, &p) in ctx.iter().enumerate() {
                cs.push(i as u32, p);
            }
            cs
        }
    };
    let mut attrs: Option<AttrSeq> = None;
    for step in &path.steps {
        if attrs.is_some() {
            return Err(XPathError::Eval {
                message: "cannot apply a location step to a attribute-set".into(),
            });
        }
        match &step.test {
            StepTest::Attribute(name) => {
                if !step.predicates.is_empty() {
                    return Err(XPathError::Eval {
                        message: "predicates on attribute steps are not supported".into(),
                    });
                }
                attrs = Some(lifted_attributes(view, &current, name.as_ref()));
            }
            StepTest::Tree(axis, test) => {
                current = lifted_tree_step(view, &current, *axis, test, &step.predicates)?;
            }
        }
    }
    Ok(match attrs {
        Some(a) => Lifted::Attrs(a),
        None => Lifted::Nodes(current),
    })
}

fn lifted_type_name(v: &Lifted) -> &'static str {
    match v {
        Lifted::Const(x) => x.type_name(),
        Lifted::Nodes(_) => "node-set",
        Lifted::Attrs(_) => "attribute-set",
        Lifted::Numbers(_) => "number",
        Lifted::Booleans(_) => "boolean",
        Lifted::Strs(_) => "string",
    }
}

/// The lifted attribute step: one pass over the `(iter, owner)` relation
/// collecting (optionally name-filtered) attributes, tags preserved.
fn lifted_attributes<V: TreeView + ?Sized>(
    view: &V,
    input: &ContextSeq,
    name: Option<&mbxq_xml::QName>,
) -> AttrSeq {
    let mut out = AttrSeq {
        iters: Vec::new(),
        attrs: Vec::new(),
    };
    for (iter, owner) in input.iter() {
        for (qn, _) in view.attributes(owner) {
            let keep = match name {
                Some(want) => view.pool().qname(qn).is_some_and(|q| q == want),
                None => true,
            };
            if keep {
                out.iters.push(iter);
                out.attrs.push((owner, qn));
            }
        }
    }
    out
}

/// Lifted function application. `position()`/`last()` read the predicate
/// vectors; every other function with loop-invariant arguments is hoisted
/// and computed once; the rest apply element-wise across the domain.
fn eval_call_lifted<V: TreeView + ?Sized>(
    view: &V,
    name: &str,
    args: &[Expr],
    ctx: &[u64],
    pred: Option<&PredInfo<'_>>,
) -> Result<Lifted> {
    match name {
        "position" => {
            let info = pred.ok_or(XPathError::Eval {
                message: "position() outside a predicate".into(),
            })?;
            if !args.is_empty() {
                return Err(XPathError::Eval {
                    message: format!("position() expects 0 argument(s), got {}", args.len()),
                });
            }
            Ok(Lifted::Numbers(info.pos.to_vec()))
        }
        "last" => {
            let info = pred.ok_or(XPathError::Eval {
                message: "last() outside a predicate".into(),
            })?;
            if !args.is_empty() {
                return Err(XPathError::Eval {
                    message: format!("last() expects 0 argument(s), got {}", args.len()),
                });
            }
            Ok(Lifted::Numbers(info.last.to_vec()))
        }
        _ => {
            let mut largs = Vec::with_capacity(args.len());
            for a in args {
                largs.push(eval_lifted(view, a, ctx, pred)?);
            }
            // `string()` / `number()` / `name()` / `local-name()` with no
            // arguments read the context node, so they cannot be hoisted.
            let context_free =
                !(args.is_empty() && matches!(name, "string" | "number" | "name" | "local-name"));
            if context_free && largs.iter().all(Lifted::is_const) {
                let flat: Vec<Value> = largs.iter().map(|a| a.value_at(0)).collect();
                return Ok(Lifted::Const(apply_fn(view, name, &flat, None)?));
            }
            let mut vals = Vec::with_capacity(ctx.len());
            for (i, &node) in ctx.iter().enumerate() {
                let argv: Vec<Value> = largs.iter().map(|a| a.value_at(i)).collect();
                vals.push(apply_fn(view, name, &argv, Some(node))?);
            }
            Ok(pack_values(vals))
        }
    }
}

/// Packs per-iteration scalar results into a columnar [`Lifted`]. All
/// entries share one kind (each function has a fixed return type).
fn pack_values(vals: Vec<Value>) -> Lifted {
    match vals.first() {
        None => Lifted::Booleans(Vec::new()),
        Some(Value::Number(_)) => Lifted::Numbers(
            vals.into_iter()
                .map(|v| match v {
                    Value::Number(x) => x,
                    _ => f64::NAN,
                })
                .collect(),
        ),
        Some(Value::Boolean(_)) => Lifted::Booleans(
            vals.into_iter()
                .map(|v| matches!(v, Value::Boolean(true)))
                .collect(),
        ),
        _ => Lifted::Strs(
            vals.into_iter()
                .map(|v| match v {
                    Value::Str(s) => s,
                    other => other.type_name().to_string(),
                })
                .collect(),
        ),
    }
}

/// The core function library on already-evaluated arguments.
/// `position()` and `last()` never reach here — both call sites resolve
/// them against the predicate scope first.
fn apply_fn<V: TreeView + ?Sized>(
    view: &V,
    name: &str,
    args: &[Value],
    ctx_node: Option<u64>,
) -> Result<Value> {
    let arity = |want: usize| -> Result<()> {
        if args.len() == want {
            Ok(())
        } else {
            Err(XPathError::Eval {
                message: format!("{name}() expects {want} argument(s), got {}", args.len()),
            })
        }
    };
    match name {
        "count" => {
            arity(1)?;
            match &args[0] {
                Value::Nodes(ns) => Ok(Value::Number(ns.len() as f64)),
                Value::Attrs(a) => Ok(Value::Number(a.len() as f64)),
                other => Err(XPathError::Eval {
                    message: format!("count() needs a node set, got {}", other.type_name()),
                }),
            }
        }
        "sum" => {
            arity(1)?;
            let total: f64 = args[0]
                .string_values(view)
                .iter()
                .map(|s| str_to_number(s))
                .sum();
            Ok(Value::Number(total))
        }
        "string" => {
            if args.is_empty() {
                return Ok(Value::Str(
                    ctx_node.map_or(String::new(), |p| view.string_value(p)),
                ));
            }
            arity(1)?;
            Ok(Value::Str(args[0].to_str(view)))
        }
        "number" => {
            if args.is_empty() {
                return Ok(Value::Number(
                    ctx_node.map_or(f64::NAN, |p| str_to_number(&view.string_value(p))),
                ));
            }
            arity(1)?;
            Ok(Value::Number(args[0].to_number(view)))
        }
        "boolean" => {
            arity(1)?;
            Ok(Value::Boolean(args[0].to_boolean()))
        }
        "not" => {
            arity(1)?;
            Ok(Value::Boolean(!args[0].to_boolean()))
        }
        "true" => {
            arity(0)?;
            Ok(Value::Boolean(true))
        }
        "false" => {
            arity(0)?;
            Ok(Value::Boolean(false))
        }
        "contains" => {
            arity(2)?;
            let a = args[0].to_str(view);
            let b = args[1].to_str(view);
            Ok(Value::Boolean(a.contains(&b)))
        }
        "starts-with" => {
            arity(2)?;
            let a = args[0].to_str(view);
            let b = args[1].to_str(view);
            Ok(Value::Boolean(a.starts_with(&b)))
        }
        "string-length" => {
            arity(1)?;
            Ok(Value::Number(args[0].to_str(view).chars().count() as f64))
        }
        "normalize-space" => {
            arity(1)?;
            let s = args[0].to_str(view);
            Ok(Value::Str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        "concat" => {
            if args.len() < 2 {
                return Err(XPathError::Eval {
                    message: "concat() needs at least two arguments".into(),
                });
            }
            let mut out = String::new();
            for a in args {
                out.push_str(&a.to_str(view));
            }
            Ok(Value::Str(out))
        }
        "substring" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(XPathError::Eval {
                    message: "substring() takes 2 or 3 arguments".into(),
                });
            }
            let s = args[0].to_str(view);
            let start = args[1].to_number(view).round() as i64;
            let chars: Vec<char> = s.chars().collect();
            let from = (start - 1).max(0) as usize;
            let to = if args.len() == 3 {
                let len = args[2].to_number(view).round() as i64;
                ((start - 1 + len).max(0) as usize).min(chars.len())
            } else {
                chars.len()
            };
            Ok(Value::Str(
                chars[from.min(chars.len())..to].iter().collect(),
            ))
        }
        "substring-before" => {
            arity(2)?;
            let a = args[0].to_str(view);
            let b = args[1].to_str(view);
            Ok(Value::Str(
                a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default(),
            ))
        }
        "substring-after" => {
            arity(2)?;
            let a = args[0].to_str(view);
            let b = args[1].to_str(view);
            Ok(Value::Str(
                a.find(&b)
                    .map(|i| a[i + b.len()..].to_string())
                    .unwrap_or_default(),
            ))
        }
        "translate" => {
            arity(3)?;
            let s = args[0].to_str(view);
            let from: Vec<char> = args[1].to_str(view).chars().collect();
            let to: Vec<char> = args[2].to_str(view).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Value::Str(out))
        }
        "floor" => {
            arity(1)?;
            Ok(Value::Number(args[0].to_number(view).floor()))
        }
        "ceiling" => {
            arity(1)?;
            Ok(Value::Number(args[0].to_number(view).ceil()))
        }
        "round" => {
            arity(1)?;
            Ok(Value::Number(args[0].to_number(view).round()))
        }
        "name" | "local-name" => {
            let target = if args.is_empty() {
                ctx_node
            } else {
                arity(1)?;
                match &args[0] {
                    Value::Nodes(ns) => ns.first().copied(),
                    other => {
                        return Err(XPathError::Eval {
                            message: format!(
                                "{name}() needs a node set, got {}",
                                other.type_name()
                            ),
                        })
                    }
                }
            };
            let s = target
                .and_then(|p| view.name_id(p))
                .and_then(|q| view.pool().qname(q))
                .map(|q| {
                    if name == "local-name" {
                        q.local.clone()
                    } else {
                        q.to_string()
                    }
                })
                .unwrap_or_default();
            Ok(Value::Str(s))
        }
        other => Err(XPathError::Eval {
            message: format!("unknown function '{other}'"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_number_integers_without_point() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-17.0), "-17");
        assert_eq!(format_number(1e14), "100000000000000");
    }

    #[test]
    fn format_number_special_values() {
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
        assert_eq!(format_number(f64::NEG_INFINITY), "-Infinity");
        assert_eq!(format_number(-0.0), "0", "negative zero renders as 0");
    }

    #[test]
    fn format_number_decimals() {
        assert_eq!(format_number(1.5), "1.5");
        assert_eq!(format_number(-0.25), "-0.25");
    }

    #[test]
    fn str_to_number_rejects_rusty_spellings() {
        assert!(str_to_number("inf").is_nan());
        assert!(str_to_number("NaN").is_nan());
        assert!(str_to_number("1e3").is_nan());
        assert!(str_to_number("").is_nan());
        assert_eq!(str_to_number(" 42 "), 42.0);
        assert_eq!(str_to_number("-1.5"), -1.5);
        assert!(str_to_number("1-2").is_nan());
    }
}
