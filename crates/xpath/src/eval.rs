//! Evaluator: compiles the AST onto the staircase-join engine.

use crate::ast::{ArithOp, CmpOp, Expr, PathExpr, Step, StepTest};
use crate::{Result, XPathError};
use mbxq_axes::{step as axis_step, Axis};
use mbxq_storage::{QnId, TreeView};

/// An XPath 1.0 value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Tree nodes in document order (pre ranks).
    Nodes(Vec<u64>),
    /// Attribute nodes as `(owner pre, attribute name id)` pairs.
    Attrs(Vec<(u64, QnId)>),
    /// A number.
    Number(f64),
    /// A boolean.
    Boolean(bool),
    /// A string.
    Str(String),
}

impl Value {
    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nodes(_) => "node-set",
            Value::Attrs(_) => "attribute-set",
            Value::Number(_) => "number",
            Value::Boolean(_) => "boolean",
            Value::Str(_) => "string",
        }
    }

    /// XPath boolean coercion.
    pub fn to_boolean(&self) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Attrs(a) => !a.is_empty(),
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Boolean(b) => *b,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// XPath string coercion (first node's string value for node sets).
    pub fn to_str<V: TreeView + ?Sized>(&self, view: &V) -> String {
        match self {
            Value::Nodes(ns) => ns.first().map_or(String::new(), |&p| view.string_value(p)),
            Value::Attrs(a) => a
                .first()
                .and_then(|&(owner, qn)| attr_value(view, owner, qn))
                .unwrap_or_default(),
            Value::Number(n) => format_number(*n),
            Value::Boolean(b) => b.to_string(),
            Value::Str(s) => s.clone(),
        }
    }

    /// XPath number coercion.
    pub fn to_number<V: TreeView + ?Sized>(&self, view: &V) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => str_to_number(&other.to_str(view)),
        }
    }

    /// All string values (one per node/attribute; singleton otherwise).
    fn string_values<V: TreeView + ?Sized>(&self, view: &V) -> Vec<String> {
        match self {
            Value::Nodes(ns) => ns.iter().map(|&p| view.string_value(p)).collect(),
            Value::Attrs(a) => a
                .iter()
                .map(|&(owner, qn)| attr_value(view, owner, qn).unwrap_or_default())
                .collect(),
            other => vec![other.to_str(view)],
        }
    }

    fn is_set(&self) -> bool {
        matches!(self, Value::Nodes(_) | Value::Attrs(_))
    }
}

fn attr_value<V: TreeView + ?Sized>(view: &V, owner: u64, qn: QnId) -> Option<String> {
    view.attributes(owner)
        .into_iter()
        .find(|&(n, _)| n == qn)
        .and_then(|(_, p)| view.pool().prop(p).map(str::to_string))
}

fn str_to_number(s: &str) -> f64 {
    s.trim().parse::<f64>().unwrap_or(f64::NAN)
}

fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Evaluates `expr` with `context` as the context node set.
pub(crate) fn eval_expr<V: TreeView + ?Sized>(
    view: &V,
    expr: &Expr,
    context: &[u64],
) -> Result<Value> {
    match expr {
        Expr::Or(a, b) => {
            let va = eval_expr(view, a, context)?;
            if va.to_boolean() {
                return Ok(Value::Boolean(true));
            }
            Ok(Value::Boolean(eval_expr(view, b, context)?.to_boolean()))
        }
        Expr::And(a, b) => {
            let va = eval_expr(view, a, context)?;
            if !va.to_boolean() {
                return Ok(Value::Boolean(false));
            }
            Ok(Value::Boolean(eval_expr(view, b, context)?.to_boolean()))
        }
        Expr::Compare(op, a, b) => {
            let va = eval_expr(view, a, context)?;
            let vb = eval_expr(view, b, context)?;
            Ok(Value::Boolean(compare(view, *op, &va, &vb)))
        }
        Expr::Arith(op, a, b) => {
            let x = eval_expr(view, a, context)?.to_number(view);
            let y = eval_expr(view, b, context)?.to_number(view);
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x % y,
            };
            Ok(Value::Number(r))
        }
        Expr::Neg(e) => Ok(Value::Number(-eval_expr(view, e, context)?.to_number(view))),
        Expr::Union(a, b) => {
            let va = eval_expr(view, a, context)?;
            let vb = eval_expr(view, b, context)?;
            match (va, vb) {
                (Value::Nodes(mut x), Value::Nodes(y)) => {
                    x.extend(y);
                    x.sort_unstable();
                    x.dedup();
                    Ok(Value::Nodes(x))
                }
                (Value::Attrs(mut x), Value::Attrs(y)) => {
                    x.extend(y);
                    x.sort_unstable_by_key(|&(p, q)| (p, q.0));
                    x.dedup();
                    Ok(Value::Attrs(x))
                }
                (a, b) => Err(XPathError::Eval {
                    message: format!(
                        "union requires node sets, got {} and {}",
                        a.type_name(),
                        b.type_name()
                    ),
                }),
            }
        }
        Expr::Literal(s) => Ok(Value::Str(s.clone())),
        Expr::Number(n) => Ok(Value::Number(*n)),
        Expr::Call(name, args) => eval_call(view, name, args, context, None),
        Expr::Path(p) => eval_path(view, p, context),
    }
}

/// XPath 1.0 comparison semantics: if either side is a set, the
/// comparison existentially quantifies over its string values.
fn compare<V: TreeView + ?Sized>(view: &V, op: CmpOp, a: &Value, b: &Value) -> bool {
    let num_cmp = |x: f64, y: f64| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    let str_cmp = |x: &str, y: &str| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        // Order comparisons always go through numbers in XPath 1.0.
        _ => num_cmp(str_to_number(x), str_to_number(y)),
    };
    match (a.is_set(), b.is_set()) {
        (true, true) => {
            let xs = a.string_values(view);
            let ys = b.string_values(view);
            xs.iter().any(|x| ys.iter().any(|y| str_cmp(x, y)))
        }
        (true, false) => {
            let xs = a.string_values(view);
            match b {
                Value::Number(n) => xs.iter().any(|x| num_cmp(str_to_number(x), *n)),
                Value::Boolean(bb) => {
                    let ab = a.to_boolean();
                    num_cmp(ab as u8 as f64, *bb as u8 as f64)
                }
                _ => {
                    let y = b.to_str(view);
                    xs.iter().any(|x| str_cmp(x, &y))
                }
            }
        }
        (false, true) => {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
            };
            compare(view, flipped, b, a)
        }
        (false, false) => match (a, b) {
            (Value::Boolean(_), _) | (_, Value::Boolean(_)) => {
                num_cmp(a.to_boolean() as u8 as f64, b.to_boolean() as u8 as f64)
            }
            (Value::Number(_), _) | (_, Value::Number(_)) => {
                num_cmp(a.to_number(view), b.to_number(view))
            }
            _ => str_cmp(&a.to_str(view), &b.to_str(view)),
        },
    }
}

/// Position info available inside a predicate.
struct PredicateCtx {
    position: usize,
    last: usize,
}

fn eval_path<V: TreeView + ?Sized>(view: &V, path: &PathExpr, context: &[u64]) -> Result<Value> {
    let mut steps = path.steps.iter();
    let mut current: Value = if let Some(start) = &path.start {
        eval_expr(view, start, context)?
    } else if path.absolute {
        // Absolute paths start at the (virtual) *document node*, whose
        // only tree child is the root element: `/site` matches the root
        // element named `site`, and a bare `/` denotes the document node
        // itself (approximated by the root element here, since the
        // storage schema has no document-node tuple).
        match steps.next() {
            None => Value::Nodes(view.root_pre().into_iter().collect()),
            Some(first) => eval_step_from_document(view, first)?,
        }
    } else {
        Value::Nodes(context.to_vec())
    };
    for step in steps {
        current = eval_step(view, &current, step)?;
    }
    Ok(current)
}

/// Evaluates the first step of an absolute path against the virtual
/// document node.
fn eval_step_from_document<V: TreeView + ?Sized>(view: &V, step: &Step) -> Result<Value> {
    let root: Vec<u64> = view.root_pre().into_iter().collect();
    match &step.test {
        StepTest::Tree(Axis::Child | Axis::SelfAxis, test) => {
            // The document node's only child is the root element; `/self`
            // degenerates to the same singleton.
            let mut cands: Vec<u64> = root
                .into_iter()
                .filter(|&r| test.matches(view, r))
                .collect();
            for pred in &step.predicates {
                cands = filter_predicate(view, &cands, pred)?;
            }
            Ok(Value::Nodes(cands))
        }
        StepTest::Tree(Axis::Descendant | Axis::DescendantOrSelf, test) => {
            // Every tree node descends from the document node.
            let mut cands = axis_step(view, &root, Axis::DescendantOrSelf, test);
            for pred in &step.predicates {
                cands = filter_predicate(view, &cands, pred)?;
            }
            Ok(Value::Nodes(cands))
        }
        StepTest::Tree(axis, _) => Err(XPathError::Eval {
            message: format!("axis {axis:?} cannot start from the document node"),
        }),
        StepTest::Attribute(_) => Err(XPathError::Eval {
            message: "the document node has no attributes".into(),
        }),
    }
}

fn eval_step<V: TreeView + ?Sized>(view: &V, input: &Value, step: &Step) -> Result<Value> {
    let nodes = match input {
        Value::Nodes(ns) => ns,
        other => {
            return Err(XPathError::Eval {
                message: format!("cannot apply a location step to a {}", other.type_name()),
            })
        }
    };
    match &step.test {
        StepTest::Attribute(name) => {
            if !step.predicates.is_empty() {
                return Err(XPathError::Eval {
                    message: "predicates on attribute steps are not supported".into(),
                });
            }
            let mut out = Vec::new();
            for &n in nodes {
                for (qn, _) in view.attributes(n) {
                    let keep = match name {
                        Some(want) => view.pool().qname(qn).is_some_and(|q| q == want),
                        None => true,
                    };
                    if keep {
                        out.push((n, qn));
                    }
                }
            }
            Ok(Value::Attrs(out))
        }
        StepTest::Tree(axis, test) => {
            // The reverse axes present candidates in document order here;
            // positional predicates on them follow reverse order per the
            // spec — supported by reversing the candidate list first.
            let reverse = matches!(
                axis,
                Axis::Ancestor | Axis::AncestorOrSelf | Axis::Preceding | Axis::PrecedingSibling
            );
            if step.predicates.is_empty() {
                return Ok(Value::Nodes(axis_step(view, nodes, *axis, test)));
            }
            // With predicates, position() is per context node.
            let mut out = Vec::new();
            for &c in nodes {
                let mut cands = axis_step(view, &[c], *axis, test);
                if reverse {
                    cands.reverse();
                }
                for pred in &step.predicates {
                    cands = filter_predicate(view, &cands, pred)?;
                }
                out.extend(cands);
            }
            out.sort_unstable();
            out.dedup();
            Ok(Value::Nodes(out))
        }
    }
}

fn filter_predicate<V: TreeView + ?Sized>(
    view: &V,
    candidates: &[u64],
    pred: &Expr,
) -> Result<Vec<u64>> {
    let last = candidates.len();
    let mut out = Vec::new();
    for (i, &node) in candidates.iter().enumerate() {
        let ctx = PredicateCtx {
            position: i + 1,
            last,
        };
        let v = eval_pred_expr(view, pred, node, &ctx)?;
        let keep = match v {
            // A bare number predicate means position() = n.
            Value::Number(n) => (ctx.position as f64) == n,
            other => other.to_boolean(),
        };
        if keep {
            out.push(node);
        }
    }
    Ok(out)
}

/// Evaluates an expression inside a predicate, where `position()` /
/// `last()` are defined and the context is a single node.
fn eval_pred_expr<V: TreeView + ?Sized>(
    view: &V,
    expr: &Expr,
    node: u64,
    ctx: &PredicateCtx,
) -> Result<Value> {
    match expr {
        Expr::Or(a, b) => {
            if eval_pred_expr(view, a, node, ctx)?.to_boolean() {
                return Ok(Value::Boolean(true));
            }
            Ok(Value::Boolean(
                eval_pred_expr(view, b, node, ctx)?.to_boolean(),
            ))
        }
        Expr::And(a, b) => {
            if !eval_pred_expr(view, a, node, ctx)?.to_boolean() {
                return Ok(Value::Boolean(false));
            }
            Ok(Value::Boolean(
                eval_pred_expr(view, b, node, ctx)?.to_boolean(),
            ))
        }
        Expr::Compare(op, a, b) => {
            let va = eval_pred_expr(view, a, node, ctx)?;
            let vb = eval_pred_expr(view, b, node, ctx)?;
            Ok(Value::Boolean(compare(view, *op, &va, &vb)))
        }
        Expr::Arith(op, a, b) => {
            let x = eval_pred_expr(view, a, node, ctx)?.to_number(view);
            let y = eval_pred_expr(view, b, node, ctx)?.to_number(view);
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x % y,
            };
            Ok(Value::Number(r))
        }
        Expr::Neg(e) => Ok(Value::Number(
            -eval_pred_expr(view, e, node, ctx)?.to_number(view),
        )),
        Expr::Call(name, args) => eval_call(view, name, args, &[node], Some(ctx)),
        _ => eval_expr(view, expr, &[node]),
    }
}

fn eval_call<V: TreeView + ?Sized>(
    view: &V,
    name: &str,
    args: &[Expr],
    context: &[u64],
    pred: Option<&PredicateCtx>,
) -> Result<Value> {
    let eval_arg = |i: usize| -> Result<Value> {
        match pred {
            Some(ctx) if context.len() == 1 => eval_pred_expr(view, &args[i], context[0], ctx),
            _ => eval_expr(view, &args[i], context),
        }
    };
    let arity = |want: usize| -> Result<()> {
        if args.len() == want {
            Ok(())
        } else {
            Err(XPathError::Eval {
                message: format!("{name}() expects {want} argument(s), got {}", args.len()),
            })
        }
    };
    match name {
        "position" => {
            arity(0)?;
            let ctx = pred.ok_or(XPathError::Eval {
                message: "position() outside a predicate".into(),
            })?;
            Ok(Value::Number(ctx.position as f64))
        }
        "last" => {
            arity(0)?;
            let ctx = pred.ok_or(XPathError::Eval {
                message: "last() outside a predicate".into(),
            })?;
            Ok(Value::Number(ctx.last as f64))
        }
        "count" => {
            arity(1)?;
            match eval_arg(0)? {
                Value::Nodes(ns) => Ok(Value::Number(ns.len() as f64)),
                Value::Attrs(a) => Ok(Value::Number(a.len() as f64)),
                other => Err(XPathError::Eval {
                    message: format!("count() needs a node set, got {}", other.type_name()),
                }),
            }
        }
        "sum" => {
            arity(1)?;
            let v = eval_arg(0)?;
            let total: f64 = v
                .string_values(view)
                .iter()
                .map(|s| str_to_number(s))
                .sum();
            Ok(Value::Number(total))
        }
        "string" => {
            if args.is_empty() {
                return Ok(Value::Str(
                    context
                        .first()
                        .map_or(String::new(), |&p| view.string_value(p)),
                ));
            }
            arity(1)?;
            Ok(Value::Str(eval_arg(0)?.to_str(view)))
        }
        "number" => {
            if args.is_empty() {
                return Ok(Value::Number(
                    context
                        .first()
                        .map_or(f64::NAN, |&p| str_to_number(&view.string_value(p))),
                ));
            }
            arity(1)?;
            Ok(Value::Number(eval_arg(0)?.to_number(view)))
        }
        "boolean" => {
            arity(1)?;
            Ok(Value::Boolean(eval_arg(0)?.to_boolean()))
        }
        "not" => {
            arity(1)?;
            Ok(Value::Boolean(!eval_arg(0)?.to_boolean()))
        }
        "true" => {
            arity(0)?;
            Ok(Value::Boolean(true))
        }
        "false" => {
            arity(0)?;
            Ok(Value::Boolean(false))
        }
        "contains" => {
            arity(2)?;
            let a = eval_arg(0)?.to_str(view);
            let b = eval_arg(1)?.to_str(view);
            Ok(Value::Boolean(a.contains(&b)))
        }
        "starts-with" => {
            arity(2)?;
            let a = eval_arg(0)?.to_str(view);
            let b = eval_arg(1)?.to_str(view);
            Ok(Value::Boolean(a.starts_with(&b)))
        }
        "string-length" => {
            arity(1)?;
            Ok(Value::Number(eval_arg(0)?.to_str(view).chars().count() as f64))
        }
        "normalize-space" => {
            arity(1)?;
            let s = eval_arg(0)?.to_str(view);
            Ok(Value::Str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        "concat" => {
            if args.len() < 2 {
                return Err(XPathError::Eval {
                    message: "concat() needs at least two arguments".into(),
                });
            }
            let mut out = String::new();
            for i in 0..args.len() {
                out.push_str(&eval_arg(i)?.to_str(view));
            }
            Ok(Value::Str(out))
        }
        "substring" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(XPathError::Eval {
                    message: "substring() takes 2 or 3 arguments".into(),
                });
            }
            let s = eval_arg(0)?.to_str(view);
            let start = eval_arg(1)?.to_number(view).round() as i64;
            let chars: Vec<char> = s.chars().collect();
            let from = (start - 1).max(0) as usize;
            let to = if args.len() == 3 {
                let len = eval_arg(2)?.to_number(view).round() as i64;
                ((start - 1 + len).max(0) as usize).min(chars.len())
            } else {
                chars.len()
            };
            Ok(Value::Str(chars[from.min(chars.len())..to].iter().collect()))
        }
        "substring-before" => {
            arity(2)?;
            let a = eval_arg(0)?.to_str(view);
            let b = eval_arg(1)?.to_str(view);
            Ok(Value::Str(
                a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default(),
            ))
        }
        "substring-after" => {
            arity(2)?;
            let a = eval_arg(0)?.to_str(view);
            let b = eval_arg(1)?.to_str(view);
            Ok(Value::Str(
                a.find(&b)
                    .map(|i| a[i + b.len()..].to_string())
                    .unwrap_or_default(),
            ))
        }
        "translate" => {
            arity(3)?;
            let s = eval_arg(0)?.to_str(view);
            let from: Vec<char> = eval_arg(1)?.to_str(view).chars().collect();
            let to: Vec<char> = eval_arg(2)?.to_str(view).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Value::Str(out))
        }
        "floor" => {
            arity(1)?;
            Ok(Value::Number(eval_arg(0)?.to_number(view).floor()))
        }
        "ceiling" => {
            arity(1)?;
            Ok(Value::Number(eval_arg(0)?.to_number(view).ceil()))
        }
        "round" => {
            arity(1)?;
            Ok(Value::Number(eval_arg(0)?.to_number(view).round()))
        }
        "name" | "local-name" => {
            let target = if args.is_empty() {
                context.first().copied()
            } else {
                arity(1)?;
                match eval_arg(0)? {
                    Value::Nodes(ns) => ns.first().copied(),
                    other => {
                        return Err(XPathError::Eval {
                            message: format!("{name}() needs a node set, got {}", other.type_name()),
                        })
                    }
                }
            };
            let s = target
                .and_then(|p| view.name_id(p))
                .and_then(|q| view.pool().qname(q))
                .map(|q| {
                    if name == "local-name" {
                        q.local.clone()
                    } else {
                        q.to_string()
                    }
                })
                .unwrap_or_default();
            Ok(Value::Str(s))
        }
        other => Err(XPathError::Eval {
            message: format!("unknown function '{other}'"),
        }),
    }
}
