//! Shared evaluation runtime and the physical-plan **executor**.
//!
//! The first half of this module is the XPath 1.0 value model — [`Value`]
//! with its coercions, the comparison/arithmetic semantics, the core
//! function library — shared by the plan executor and by the reference
//! interpreter ([`crate::interp`]). The second half is the executor: a
//! small virtual machine over [`crate::physical`] plans that keeps the
//! loop-lifted discipline of the interpreter (whole `(iter, pre)`
//! relations per operator invocation, per-iteration short-circuiting,
//! explicit [`Lifted::Const`] broadcasting for hoisted subplans) while
//! adding what only a plan layer can offer: per-step **cost-driven
//! choice** between the staircase join and an element-name-index
//! probe-plus-semijoin, first/last positional picks without position
//! vectors, and early-exit existence aggregation.

use crate::ast::{ArithOp, CmpOp};
use crate::par::{self, ParChoice, WorkerPool};
use crate::physical::{PhysPred, PhysRel, PhysScalar, StepStrategy};
use crate::plan::{ValueCmp, ValuePred, ValueSource};
use crate::{
    AxisChoice, Bindings, EvalStats, MultiChoice, MultiStrategy, PlanFeedback, ReplanMode, Result,
    StepFeedback, ValueChoice, XPathError,
};
use mbxq_axes::{
    descendant_scan_ranges, exists_step, in_range_mask, intersect_sorted, range_semijoin,
    scan_ranges_arm, simd_compiled, step_lifted_with, Axis, ContextSeq, KernelArm, NodeTest,
};
use mbxq_storage::{DegreeStats, QnId, TreeView};
use std::cell::Cell;
use std::sync::Mutex;

/// An XPath 1.0 value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Tree nodes in document order (pre ranks).
    Nodes(Vec<u64>),
    /// Attribute nodes as `(owner pre, attribute name id)` pairs.
    Attrs(Vec<(u64, QnId)>),
    /// A number.
    Number(f64),
    /// A boolean.
    Boolean(bool),
    /// A string.
    Str(String),
}

impl Value {
    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nodes(_) => "node-set",
            Value::Attrs(_) => "attribute-set",
            Value::Number(_) => "number",
            Value::Boolean(_) => "boolean",
            Value::Str(_) => "string",
        }
    }

    /// XPath boolean coercion.
    pub fn to_boolean(&self) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Attrs(a) => !a.is_empty(),
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Boolean(b) => *b,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// XPath string coercion (first node's string value for node sets).
    pub fn to_str<V: TreeView + ?Sized>(&self, view: &V) -> String {
        match self {
            Value::Nodes(ns) => ns.first().map_or(String::new(), |&p| view.string_value(p)),
            Value::Attrs(a) => a
                .first()
                .and_then(|&(owner, qn)| attr_value(view, owner, qn))
                .unwrap_or_default(),
            Value::Number(n) => format_number(*n),
            Value::Boolean(b) => b.to_string(),
            Value::Str(s) => s.clone(),
        }
    }

    /// XPath number coercion.
    pub fn to_number<V: TreeView + ?Sized>(&self, view: &V) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => str_to_number(&other.to_str(view)),
        }
    }

    /// All string values (one per node/attribute; singleton otherwise).
    pub(crate) fn string_values<V: TreeView + ?Sized>(&self, view: &V) -> Vec<String> {
        match self {
            Value::Nodes(ns) => ns.iter().map(|&p| view.string_value(p)).collect(),
            Value::Attrs(a) => a
                .iter()
                .map(|&(owner, qn)| attr_value(view, owner, qn).unwrap_or_default())
                .collect(),
            other => vec![other.to_str(view)],
        }
    }

    fn is_set(&self) -> bool {
        matches!(self, Value::Nodes(_) | Value::Attrs(_))
    }
}

pub(crate) fn attr_value<V: TreeView + ?Sized>(view: &V, owner: u64, qn: QnId) -> Option<String> {
    view.attributes(owner)
        .into_iter()
        .find(|&(n, _)| n == qn)
        .and_then(|(_, p)| view.pool().prop(p).map(str::to_string))
}

/// XPath 1.0 string→number coercion. Delegates to the storage crate's
/// [`mbxq_storage::xpath_number`] — the content index's sorted numeric
/// arm parses with the same function, so range probes and scalar scans
/// agree on which strings are numbers by construction.
pub(crate) fn str_to_number(s: &str) -> f64 {
    mbxq_storage::xpath_number(s)
}

/// XPath 1.0 `string()` rendering of a number (§4.4 of the spec): `NaN`,
/// signed `Infinity`, integers without a decimal point (negative zero
/// renders as `0`), everything else in decimal form.
pub(crate) fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else if n == 0.0 {
        // Covers -0.0: XPath renders both zeros as "0".
        "0".to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

pub(crate) fn apply_arith(op: ArithOp, x: f64, y: f64) -> f64 {
    match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
        ArithOp::Mod => x % y,
    }
}

/// The `|` operator on already-evaluated operands.
pub(crate) fn union_values(a: Value, b: Value) -> Result<Value> {
    match (a, b) {
        (Value::Nodes(mut x), Value::Nodes(y)) => {
            x.extend(y);
            x.sort_unstable();
            x.dedup();
            Ok(Value::Nodes(x))
        }
        (Value::Attrs(mut x), Value::Attrs(y)) => {
            x.extend(y);
            x.sort_unstable_by_key(|&(p, q)| (p, q.0));
            x.dedup();
            Ok(Value::Attrs(x))
        }
        (a, b) => Err(XPathError::Eval {
            message: format!(
                "union requires node sets, got {} and {}",
                a.type_name(),
                b.type_name()
            ),
        }),
    }
}

/// XPath 1.0 comparison semantics: if either side is a set, the
/// comparison existentially quantifies over its string values.
pub(crate) fn compare<V: TreeView + ?Sized>(view: &V, op: CmpOp, a: &Value, b: &Value) -> bool {
    let num_cmp = |x: f64, y: f64| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    let str_cmp = |x: &str, y: &str| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        // Order comparisons always go through numbers in XPath 1.0.
        _ => num_cmp(str_to_number(x), str_to_number(y)),
    };
    match (a.is_set(), b.is_set()) {
        (true, true) => {
            let xs = a.string_values(view);
            let ys = b.string_values(view);
            xs.iter().any(|x| ys.iter().any(|y| str_cmp(x, y)))
        }
        (true, false) => {
            let xs = a.string_values(view);
            match b {
                Value::Number(n) => xs.iter().any(|x| num_cmp(str_to_number(x), *n)),
                Value::Boolean(bb) => {
                    let ab = a.to_boolean();
                    num_cmp(ab as u8 as f64, *bb as u8 as f64)
                }
                _ => {
                    let y = b.to_str(view);
                    xs.iter().any(|x| str_cmp(x, &y))
                }
            }
        }
        (false, true) => {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
            };
            compare(view, flipped, b, a)
        }
        (false, false) => match (a, b) {
            (Value::Boolean(_), _) | (_, Value::Boolean(_)) => {
                num_cmp(a.to_boolean() as u8 as f64, b.to_boolean() as u8 as f64)
            }
            (Value::Number(_), _) | (_, Value::Number(_)) => {
                num_cmp(a.to_number(view), b.to_number(view))
            }
            _ => str_cmp(&a.to_str(view), &b.to_str(view)),
        },
    }
}

// ---------------------------------------------------------------------
// Lifted values
// ---------------------------------------------------------------------

/// `position()` / `last()` vectors for the current predicate scope, one
/// entry per iteration.
pub(crate) struct PredInfo<'a> {
    pub(crate) pos: &'a [f64],
    pub(crate) last: &'a [f64],
}

/// Iteration-tagged attribute relation (`iter, owner pre, name id`).
pub(crate) struct AttrSeq {
    pub(crate) iters: Vec<u32>,
    pub(crate) attrs: Vec<(u64, QnId)>,
}

impl AttrSeq {
    pub(crate) fn new() -> AttrSeq {
        AttrSeq {
            iters: Vec::new(),
            attrs: Vec::new(),
        }
    }

    pub(crate) fn of_iter(&self, iter: u32) -> Vec<(u64, QnId)> {
        let lo = self.iters.partition_point(|&i| i < iter);
        let hi = self.iters.partition_point(|&i| i <= iter);
        self.attrs[lo..hi].to_vec()
    }
}

/// The result of evaluating an expression over a whole iteration domain
/// at once — one logical value per iteration.
pub(crate) enum Lifted {
    /// Loop-invariant: the same value in every iteration (computed once).
    Const(Value),
    /// Per-iteration node sets.
    Nodes(ContextSeq),
    /// Per-iteration attribute sets.
    Attrs(AttrSeq),
    /// One number per iteration.
    Numbers(Vec<f64>),
    /// One boolean per iteration.
    Booleans(Vec<bool>),
    /// One string per iteration.
    Strs(Vec<String>),
}

impl Lifted {
    /// Materializes iteration `i`'s value.
    pub(crate) fn value_at(&self, i: usize) -> Value {
        match self {
            Lifted::Const(v) => v.clone(),
            Lifted::Nodes(cs) => Value::Nodes(cs.pres_of_iter(i as u32).to_vec()),
            Lifted::Attrs(a) => Value::Attrs(a.of_iter(i as u32)),
            Lifted::Numbers(v) => Value::Number(v[i]),
            Lifted::Booleans(v) => Value::Boolean(v[i]),
            Lifted::Strs(v) => Value::Str(v[i].clone()),
        }
    }

    pub(crate) fn is_const(&self) -> bool {
        matches!(self, Lifted::Const(_))
    }

    /// Type name for error messages (per-iteration kind).
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Lifted::Const(x) => x.type_name(),
            Lifted::Nodes(_) => "node-set",
            Lifted::Attrs(_) => "attribute-set",
            Lifted::Numbers(_) => "number",
            Lifted::Booleans(_) => "boolean",
            Lifted::Strs(_) => "string",
        }
    }
}

pub(crate) fn to_booleans(v: Lifted, n: usize) -> Lifted {
    match v {
        Lifted::Const(x) => Lifted::Const(Value::Boolean(x.to_boolean())),
        Lifted::Booleans(b) => Lifted::Booleans(b),
        other => Lifted::Booleans((0..n).map(|i| other.value_at(i).to_boolean()).collect()),
    }
}

/// The lifted attribute step: one pass over the `(iter, owner)` relation
/// collecting (optionally name-filtered) attributes, tags preserved.
pub(crate) fn lifted_attributes<V: TreeView + ?Sized>(
    view: &V,
    input: &ContextSeq,
    name: Option<&mbxq_xml::QName>,
) -> AttrSeq {
    let mut out = AttrSeq::new();
    for (iter, owner) in input.iter() {
        for (qn, _) in view.attributes(owner) {
            let keep = match name {
                Some(want) => view.pool().qname(qn).is_some_and(|q| q == want),
                None => true,
            };
            if keep {
                out.iters.push(iter);
                out.attrs.push((owner, qn));
            }
        }
    }
    out
}

/// Packs per-iteration scalar results into a columnar [`Lifted`]. All
/// entries share one kind (each function has a fixed return type).
pub(crate) fn pack_values(vals: Vec<Value>) -> Lifted {
    match vals.first() {
        None => Lifted::Booleans(Vec::new()),
        Some(Value::Number(_)) => Lifted::Numbers(
            vals.into_iter()
                .map(|v| match v {
                    Value::Number(x) => x,
                    _ => f64::NAN,
                })
                .collect(),
        ),
        Some(Value::Boolean(_)) => Lifted::Booleans(
            vals.into_iter()
                .map(|v| matches!(v, Value::Boolean(true)))
                .collect(),
        ),
        _ => Lifted::Strs(
            vals.into_iter()
                .map(|v| match v {
                    Value::Str(s) => s,
                    other => other.type_name().to_string(),
                })
                .collect(),
        ),
    }
}

/// The core function library on already-evaluated arguments.
/// `position()` and `last()` never reach here — both call sites resolve
/// them against the predicate scope first.
pub(crate) fn apply_fn<V: TreeView + ?Sized>(
    view: &V,
    name: &str,
    args: &[Value],
    ctx_node: Option<u64>,
) -> Result<Value> {
    let arity = |want: usize| -> Result<()> {
        if args.len() == want {
            Ok(())
        } else {
            Err(XPathError::Eval {
                message: format!("{name}() expects {want} argument(s), got {}", args.len()),
            })
        }
    };
    match name {
        "count" => {
            arity(1)?;
            match &args[0] {
                Value::Nodes(ns) => Ok(Value::Number(ns.len() as f64)),
                Value::Attrs(a) => Ok(Value::Number(a.len() as f64)),
                other => Err(XPathError::Eval {
                    message: format!("count() needs a node set, got {}", other.type_name()),
                }),
            }
        }
        "sum" => {
            arity(1)?;
            let total: f64 = args[0]
                .string_values(view)
                .iter()
                .map(|s| str_to_number(s))
                .sum();
            Ok(Value::Number(total))
        }
        "string" => {
            if args.is_empty() {
                return Ok(Value::Str(
                    ctx_node.map_or(String::new(), |p| view.string_value(p)),
                ));
            }
            arity(1)?;
            Ok(Value::Str(args[0].to_str(view)))
        }
        "number" => {
            if args.is_empty() {
                return Ok(Value::Number(
                    ctx_node.map_or(f64::NAN, |p| str_to_number(&view.string_value(p))),
                ));
            }
            arity(1)?;
            Ok(Value::Number(args[0].to_number(view)))
        }
        "boolean" => {
            arity(1)?;
            Ok(Value::Boolean(args[0].to_boolean()))
        }
        "not" => {
            arity(1)?;
            Ok(Value::Boolean(!args[0].to_boolean()))
        }
        "true" => {
            arity(0)?;
            Ok(Value::Boolean(true))
        }
        "false" => {
            arity(0)?;
            Ok(Value::Boolean(false))
        }
        "contains" => {
            arity(2)?;
            let a = args[0].to_str(view);
            let b = args[1].to_str(view);
            Ok(Value::Boolean(a.contains(&b)))
        }
        "starts-with" => {
            arity(2)?;
            let a = args[0].to_str(view);
            let b = args[1].to_str(view);
            Ok(Value::Boolean(a.starts_with(&b)))
        }
        "string-length" => {
            // Zero-arg form: the context node's string value (§4.2).
            let s = if args.is_empty() {
                ctx_node.map_or(String::new(), |p| view.string_value(p))
            } else {
                arity(1)?;
                args[0].to_str(view)
            };
            Ok(Value::Number(s.chars().count() as f64))
        }
        "normalize-space" => {
            // Zero-arg form: the context node's string value (§4.2).
            let s = if args.is_empty() {
                ctx_node.map_or(String::new(), |p| view.string_value(p))
            } else {
                arity(1)?;
                args[0].to_str(view)
            };
            Ok(Value::Str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        "concat" => {
            if args.len() < 2 {
                return Err(XPathError::Eval {
                    message: "concat() needs at least two arguments".into(),
                });
            }
            let mut out = String::new();
            for a in args {
                out.push_str(&a.to_str(view));
            }
            Ok(Value::Str(out))
        }
        "substring" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(XPathError::Eval {
                    message: "substring() takes 2 or 3 arguments".into(),
                });
            }
            let s = args[0].to_str(view);
            let start = args[1].to_number(view).round() as i64;
            let chars: Vec<char> = s.chars().collect();
            let from = (start - 1).max(0) as usize;
            let to = if args.len() == 3 {
                let len = args[2].to_number(view).round() as i64;
                ((start - 1 + len).max(0) as usize).min(chars.len())
            } else {
                chars.len()
            };
            Ok(Value::Str(
                chars[from.min(chars.len())..to].iter().collect(),
            ))
        }
        "substring-before" => {
            arity(2)?;
            let a = args[0].to_str(view);
            let b = args[1].to_str(view);
            Ok(Value::Str(
                a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default(),
            ))
        }
        "substring-after" => {
            arity(2)?;
            let a = args[0].to_str(view);
            let b = args[1].to_str(view);
            Ok(Value::Str(
                a.find(&b)
                    .map(|i| a[i + b.len()..].to_string())
                    .unwrap_or_default(),
            ))
        }
        "translate" => {
            arity(3)?;
            let s = args[0].to_str(view);
            let from: Vec<char> = args[1].to_str(view).chars().collect();
            let to: Vec<char> = args[2].to_str(view).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Value::Str(out))
        }
        "floor" => {
            arity(1)?;
            Ok(Value::Number(args[0].to_number(view).floor()))
        }
        "ceiling" => {
            arity(1)?;
            Ok(Value::Number(args[0].to_number(view).ceil()))
        }
        "round" => {
            arity(1)?;
            Ok(Value::Number(args[0].to_number(view).round()))
        }
        "name" | "local-name" => {
            let target = if args.is_empty() {
                ctx_node
            } else {
                arity(1)?;
                match &args[0] {
                    Value::Nodes(ns) => ns.first().copied(),
                    other => {
                        return Err(XPathError::Eval {
                            message: format!(
                                "{name}() needs a node set, got {}",
                                other.type_name()
                            ),
                        })
                    }
                }
            };
            let s = target
                .and_then(|p| view.name_id(p))
                .and_then(|q| view.pool().qname(q))
                .map(|q| {
                    if name == "local-name" {
                        q.local.clone()
                    } else {
                        q.to_string()
                    }
                })
                .unwrap_or_default();
            Ok(Value::Str(s))
        }
        other => Err(XPathError::Eval {
            message: format!("unknown function '{other}'"),
        }),
    }
}

// ---------------------------------------------------------------------
// The physical-plan executor
// ---------------------------------------------------------------------

/// The iteration domain an executor invocation runs over.
pub(crate) enum Domain<'a> {
    /// One iteration holding the whole context set — the top level of a
    /// query, and the domain hoisted `Const` subplans evaluate in.
    Whole(&'a [u64]),
    /// One context node per iteration — predicate and filter scopes
    /// (Pathfinder's loop-lifting of the implicit `for` over the
    /// candidates), with the scope's `position()`/`last()` vectors.
    Rows {
        /// Iteration `i`'s context node.
        nodes: &'a [u64],
        /// Positional vectors when inside a predicate.
        pred: Option<&'a PredInfo<'a>>,
    },
}

impl Domain<'_> {
    /// Number of iterations.
    fn n(&self) -> usize {
        match self {
            Domain::Whole(_) => 1,
            Domain::Rows { nodes, .. } => nodes.len(),
        }
    }

    /// Iteration `i`'s context *node* (first of the group at the top
    /// level — the interpreter's convention for context-node functions).
    fn node(&self, i: usize) -> Option<u64> {
        match self {
            Domain::Whole(c) => c.first().copied(),
            Domain::Rows { nodes, .. } => nodes.get(i).copied(),
        }
    }

    fn pred(&self) -> Option<&PredInfo<'_>> {
        match self {
            Domain::Whole(_) => None,
            Domain::Rows { pred, .. } => *pred,
        }
    }

    /// The context as an `(iter, pre)` relation.
    fn relation(&self) -> ContextSeq {
        match self {
            Domain::Whole(c) => ContextSeq::single_iter(c.to_vec()),
            Domain::Rows { nodes, .. } => ContextSeq {
                iters: (0..nodes.len() as u32).collect(),
                pres: nodes.to_vec(),
            },
        }
    }
}

/// A relation produced by a relational plan node.
pub(crate) enum RelOut {
    /// Tree nodes, iteration-tagged.
    Nodes(ContextSeq),
    /// Attribute nodes, iteration-tagged.
    Attrs(AttrSeq),
}

/// One plan execution: the view, the bindings, the axis-strategy
/// override, the optional decision counters, and the parallel-execution
/// configuration (pool + policy).
pub(crate) struct Exec<'a, V: TreeView + ?Sized> {
    pub(crate) view: &'a V,
    pub(crate) bindings: Option<&'a Bindings>,
    pub(crate) choice: AxisChoice,
    pub(crate) value_choice: ValueChoice,
    pub(crate) stats: Option<&'a EvalStats>,
    pub(crate) pool: Option<&'a WorkerPool>,
    pub(crate) par: ParChoice,
    pub(crate) threads: usize,
    pub(crate) morsel_rows: usize,
    pub(crate) kernel: KernelArm,
    pub(crate) multi_choice: MultiChoice,
    pub(crate) replan: ReplanMode,
    pub(crate) feedback: Option<&'a PlanFeedback>,
    /// Execution-order index of the next multi-predicate step — the
    /// key into the [`PlanFeedback`] store.
    pub(crate) multi_seq: Cell<usize>,
}

impl<V: TreeView + ?Sized> Exec<'_, V> {
    /// Entry point: evaluates the plan with `context` as the context
    /// node set (one whole-set iteration, like the interpreter's top
    /// level).
    pub(crate) fn run(&self, plan: &PhysScalar, context: &[u64]) -> Result<Value> {
        let d = Domain::Whole(context);
        let l = self.scalar(plan, &d)?;
        Ok(l.value_at(0))
    }

    // -- scalars -------------------------------------------------------

    fn scalar(&self, s: &PhysScalar, d: &Domain<'_>) -> Result<Lifted> {
        let n = d.n();
        match s {
            PhysScalar::Literal(v) => Ok(Lifted::Const(Value::Str(v.clone()))),
            PhysScalar::Number(x) => Ok(Lifted::Const(Value::Number(*x))),
            PhysScalar::Var(name) => Ok(Lifted::Const(crate::interp::lookup_var(
                name,
                self.bindings,
            )?)),
            PhysScalar::Const(inner) => {
                // Loop-invariant hoisting, now an explicit plan marker:
                // evaluate once in a context-free domain, broadcast.
                let d0 = Domain::Whole(&[]);
                let l = self.scalar(inner, &d0)?;
                Ok(Lifted::Const(l.value_at(0)))
            }
            PhysScalar::Or(a, b) => {
                let va = self.scalar(a, d)?;
                if let Lifted::Const(v) = &va {
                    if v.to_boolean() {
                        return Ok(Lifted::Const(Value::Boolean(true)));
                    }
                    let vb = self.scalar(b, d)?;
                    return Ok(to_booleans(vb, n));
                }
                // Per-iteration short-circuit: the right operand runs
                // only over the undecided sub-domain.
                let mut out: Vec<bool> = (0..n).map(|i| va.value_at(i).to_boolean()).collect();
                let undecided: Vec<usize> = (0..n).filter(|&i| !out[i]).collect();
                if !undecided.is_empty() {
                    let vb = self.scalar_on_rows(b, d, &undecided)?;
                    for (k, &i) in undecided.iter().enumerate() {
                        out[i] = vb[k];
                    }
                }
                Ok(Lifted::Booleans(out))
            }
            PhysScalar::And(a, b) => {
                let va = self.scalar(a, d)?;
                if let Lifted::Const(v) = &va {
                    if !v.to_boolean() {
                        return Ok(Lifted::Const(Value::Boolean(false)));
                    }
                    let vb = self.scalar(b, d)?;
                    return Ok(to_booleans(vb, n));
                }
                let mut out: Vec<bool> = (0..n).map(|i| va.value_at(i).to_boolean()).collect();
                let undecided: Vec<usize> = (0..n).filter(|&i| out[i]).collect();
                if !undecided.is_empty() {
                    let vb = self.scalar_on_rows(b, d, &undecided)?;
                    for (k, &i) in undecided.iter().enumerate() {
                        out[i] = vb[k];
                    }
                }
                Ok(Lifted::Booleans(out))
            }
            PhysScalar::Compare(op, a, b) => {
                let va = self.scalar(a, d)?;
                let vb = self.scalar(b, d)?;
                if let (Lifted::Const(x), Lifted::Const(y)) = (&va, &vb) {
                    return Ok(Lifted::Const(Value::Boolean(compare(self.view, *op, x, y))));
                }
                Ok(Lifted::Booleans(
                    (0..n)
                        .map(|i| compare(self.view, *op, &va.value_at(i), &vb.value_at(i)))
                        .collect(),
                ))
            }
            PhysScalar::Arith(op, a, b) => {
                let va = self.scalar(a, d)?;
                let vb = self.scalar(b, d)?;
                if let (Lifted::Const(x), Lifted::Const(y)) = (&va, &vb) {
                    return Ok(Lifted::Const(Value::Number(apply_arith(
                        *op,
                        x.to_number(self.view),
                        y.to_number(self.view),
                    ))));
                }
                Ok(Lifted::Numbers(
                    (0..n)
                        .map(|i| {
                            apply_arith(
                                *op,
                                va.value_at(i).to_number(self.view),
                                vb.value_at(i).to_number(self.view),
                            )
                        })
                        .collect(),
                ))
            }
            PhysScalar::Neg(e) => {
                let v = self.scalar(e, d)?;
                if let Lifted::Const(x) = &v {
                    return Ok(Lifted::Const(Value::Number(-x.to_number(self.view))));
                }
                Ok(Lifted::Numbers(
                    (0..n)
                        .map(|i| -v.value_at(i).to_number(self.view))
                        .collect(),
                ))
            }
            PhysScalar::Nodes(rel) => Ok(match self.rel(rel, d)? {
                RelOut::Nodes(cs) => Lifted::Nodes(cs),
                RelOut::Attrs(a) => Lifted::Attrs(a),
            }),
            PhysScalar::Count(rel) => {
                let out = self.rel(rel, d)?;
                Ok(Lifted::Numbers(
                    (0..n)
                        .map(|i| match &out {
                            RelOut::Nodes(cs) => cs.pres_of_iter(i as u32).len() as f64,
                            RelOut::Attrs(a) => a.of_iter(i as u32).len() as f64,
                        })
                        .collect(),
                ))
            }
            PhysScalar::Sum(rel) => {
                let out = self.rel(rel, d)?;
                Ok(Lifted::Numbers(
                    (0..n)
                        .map(|i| match &out {
                            RelOut::Nodes(cs) => cs
                                .pres_of_iter(i as u32)
                                .iter()
                                .map(|&p| str_to_number(&self.view.string_value(p)))
                                .sum(),
                            RelOut::Attrs(a) => a
                                .of_iter(i as u32)
                                .iter()
                                .map(|&(owner, qn)| {
                                    str_to_number(
                                        &attr_value(self.view, owner, qn).unwrap_or_default(),
                                    )
                                })
                                .sum(),
                        })
                        .collect(),
                ))
            }
            PhysScalar::Exists(rel) => self.exists(rel, d),
            PhysScalar::Call(name, args) => self.call(name, args, d),
        }
    }

    /// Evaluates `s` over the sub-domain selected by `rows`, one boolean
    /// per selected row — the restricted loop relation behind
    /// per-iteration short-circuiting.
    fn scalar_on_rows(&self, s: &PhysScalar, d: &Domain<'_>, rows: &[usize]) -> Result<Vec<bool>> {
        match d {
            Domain::Whole(_) => {
                // n = 1: `rows` can only be [0] — same domain.
                let v = self.scalar(s, d)?;
                Ok(rows.iter().map(|&i| v.value_at(i).to_boolean()).collect())
            }
            Domain::Rows { nodes, pred } => {
                let sub_nodes: Vec<u64> = rows.iter().map(|&i| nodes[i]).collect();
                let sub_vectors = pred.map(|info| {
                    (
                        rows.iter().map(|&i| info.pos[i]).collect::<Vec<f64>>(),
                        rows.iter().map(|&i| info.last[i]).collect::<Vec<f64>>(),
                    )
                });
                let sub_info = sub_vectors
                    .as_ref()
                    .map(|(pos, last)| PredInfo { pos, last });
                let sub = Domain::Rows {
                    nodes: &sub_nodes,
                    pred: sub_info.as_ref(),
                };
                let v = self.scalar(s, &sub)?;
                Ok((0..rows.len())
                    .map(|k| v.value_at(k).to_boolean())
                    .collect())
            }
        }
    }

    /// `Agg(exists)` — with the early-exit probe when the subplan is a
    /// bare context step.
    fn exists(&self, rel: &PhysRel, d: &Domain<'_>) -> Result<Lifted> {
        // Early-exit arm: `exists(context/axis::test)` stops each
        // iteration's scan at the first hit.
        if let PhysRel::Step {
            input,
            axis,
            test,
            preds,
            ..
        } = rel
        {
            if preds.is_empty() && matches!(**input, PhysRel::Context) {
                return Ok(match d {
                    Domain::Whole(c) => {
                        let mut any = false;
                        for &node in c.iter() {
                            if exists_step(self.view, &[node], *axis, test)[0] {
                                any = true;
                                break;
                            }
                        }
                        Lifted::Const(Value::Boolean(any))
                    }
                    Domain::Rows { nodes, .. } => {
                        Lifted::Booleans(exists_step(self.view, nodes, *axis, test))
                    }
                });
            }
        }
        let n = d.n();
        let out = self.rel(rel, d)?;
        Ok(Lifted::Booleans(
            (0..n)
                .map(|i| match &out {
                    RelOut::Nodes(cs) => !cs.pres_of_iter(i as u32).is_empty(),
                    RelOut::Attrs(a) => !a.of_iter(i as u32).is_empty(),
                })
                .collect(),
        ))
    }

    fn call(&self, name: &str, args: &[PhysScalar], d: &Domain<'_>) -> Result<Lifted> {
        match name {
            "position" => {
                let info = d.pred().ok_or(XPathError::Eval {
                    message: "position() outside a predicate".into(),
                })?;
                if !args.is_empty() {
                    return Err(XPathError::Eval {
                        message: format!("position() expects 0 argument(s), got {}", args.len()),
                    });
                }
                Ok(Lifted::Numbers(info.pos.to_vec()))
            }
            "last" => {
                let info = d.pred().ok_or(XPathError::Eval {
                    message: "last() outside a predicate".into(),
                })?;
                if !args.is_empty() {
                    return Err(XPathError::Eval {
                        message: format!("last() expects 0 argument(s), got {}", args.len()),
                    });
                }
                Ok(Lifted::Numbers(info.last.to_vec()))
            }
            _ => {
                let mut largs = Vec::with_capacity(args.len());
                for a in args {
                    largs.push(self.scalar(a, d)?);
                }
                // Context-node functions cannot be hoisted.
                let context_free = !(args.is_empty()
                    && matches!(
                        name,
                        "string"
                            | "number"
                            | "name"
                            | "local-name"
                            | "normalize-space"
                            | "string-length"
                    ));
                if context_free && largs.iter().all(Lifted::is_const) {
                    let flat: Vec<Value> = largs.iter().map(|a| a.value_at(0)).collect();
                    return Ok(Lifted::Const(apply_fn(self.view, name, &flat, None)?));
                }
                let mut vals = Vec::with_capacity(d.n());
                for i in 0..d.n() {
                    let argv: Vec<Value> = largs.iter().map(|a| a.value_at(i)).collect();
                    vals.push(apply_fn(self.view, name, &argv, d.node(i))?);
                }
                Ok(pack_values(vals))
            }
        }
    }

    // -- relations -----------------------------------------------------

    fn rel(&self, r: &PhysRel, d: &Domain<'_>) -> Result<RelOut> {
        match r {
            PhysRel::Context => Ok(RelOut::Nodes(d.relation())),
            PhysRel::Root => {
                // Invariant; broadcast defensively into every iteration.
                let root: Vec<u64> = self.view.root_pre().into_iter().collect();
                let mut cs = ContextSeq::new();
                for i in 0..d.n() {
                    for &p in &root {
                        cs.push(i as u32, p);
                    }
                }
                Ok(RelOut::Nodes(cs))
            }
            PhysRel::Const(rel) => {
                let d0 = Domain::Whole(&[]);
                let once = self.rel(rel, &d0)?;
                // Broadcast the single-iteration result into every
                // iteration of the current domain.
                Ok(match once {
                    RelOut::Nodes(cs) => {
                        let mut out = ContextSeq::new();
                        for i in 0..d.n() {
                            for &p in &cs.pres {
                                out.push(i as u32, p);
                            }
                        }
                        RelOut::Nodes(out)
                    }
                    RelOut::Attrs(a) => {
                        let mut out = AttrSeq::new();
                        for i in 0..d.n() {
                            for &at in &a.attrs {
                                out.iters.push(i as u32);
                                out.attrs.push(at);
                            }
                        }
                        RelOut::Attrs(out)
                    }
                })
            }
            PhysRel::Step {
                input,
                axis,
                test,
                preds,
                strategy,
            } => {
                let cs = self.rel_nodes(input, d)?;
                self.step(&cs, *axis, test, preds, strategy, d)
                    .map(RelOut::Nodes)
            }
            PhysRel::AttrStep {
                input,
                name,
                has_preds,
            } => {
                if *has_preds {
                    return Err(XPathError::Eval {
                        message: "predicates on attribute steps are not supported".into(),
                    });
                }
                let cs = self.rel_nodes(input, d)?;
                Ok(RelOut::Attrs(lifted_attributes(
                    self.view,
                    &cs,
                    name.as_ref(),
                )))
            }
            PhysRel::Filter { input, pred } => {
                let cs = self.rel_nodes(input, d)?;
                if cs.is_empty() {
                    return Ok(RelOut::Nodes(cs));
                }
                // Pushed-down predicate: provably non-positional, so no
                // position vectors and no per-context-node expansion —
                // each candidate row is its own iteration.
                let keep = self.pred_flags(pred, &cs.pres, &cs.iters, None)?;
                Ok(RelOut::Nodes(cs.retain_rows(&keep)))
            }
            PhysRel::GroupFilter { input, preds } => {
                let mut cs = self.rel_nodes(input, d)?;
                for pred in preds {
                    cs = self.apply_pred(cs, pred, false)?;
                }
                Ok(RelOut::Nodes(cs))
            }
            PhysRel::NameProbe { name } => {
                let pres = self.probe(name).unwrap_or_else(|| {
                    // No index on this view: fall back to a document
                    // scan (region-splittable on the pool).
                    let root: Vec<u64> = self.view.root_pre().into_iter().collect();
                    self.staircase_step(
                        &ContextSeq::single_iter(root),
                        Axis::DescendantOrSelf,
                        &NodeTest::Name(name.clone()),
                    )
                    .pres
                });
                let mut cs = ContextSeq::new();
                for i in 0..d.n() {
                    for &p in &pres {
                        cs.push(i as u32, p);
                    }
                }
                Ok(RelOut::Nodes(cs))
            }
            PhysRel::Semijoin { input, probe, axis } => {
                let ctx = self.rel_nodes(input, d)?;
                let cands = self.rel_nodes(probe, d)?.merged_pres();
                Ok(RelOut::Nodes(self.semijoin_rel(&ctx, &cands, *axis)))
            }
            PhysRel::ValueProbe {
                input,
                axis,
                test,
                pred,
            } => {
                let ctx = self.rel_nodes(input, d)?;
                self.value_probe_step(&ctx, *axis, test, pred)
                    .map(RelOut::Nodes)
            }
            PhysRel::MultiProbe {
                input,
                axis,
                test,
                preds,
            } => {
                let ctx = self.rel_nodes(input, d)?;
                self.multi_probe_step(&ctx, *axis, test, preds)
                    .map(RelOut::Nodes)
            }
            PhysRel::Union { left, right } => {
                let l = self.rel(left, d)?;
                let r = self.rel(right, d)?;
                match (l, r) {
                    (RelOut::Nodes(a), RelOut::Nodes(b)) => {
                        Ok(RelOut::Nodes(union_relations(&a, &b)))
                    }
                    (RelOut::Attrs(a), RelOut::Attrs(b)) => {
                        Ok(RelOut::Attrs(union_attr_relations(d.n(), &a, &b)))
                    }
                    (a, b) => Err(XPathError::Eval {
                        message: format!(
                            "union requires node sets, got {} and {}",
                            rel_out_type(&a),
                            rel_out_type(&b)
                        ),
                    }),
                }
            }
            PhysRel::FromValue { value } => {
                let v = self.scalar(value, d)?;
                match v {
                    Lifted::Nodes(cs) => Ok(RelOut::Nodes(cs)),
                    Lifted::Attrs(a) => Ok(RelOut::Attrs(a)),
                    Lifted::Const(Value::Nodes(ns)) => {
                        let mut cs = ContextSeq::new();
                        for i in 0..d.n() {
                            for &p in &ns {
                                cs.push(i as u32, p);
                            }
                        }
                        Ok(RelOut::Nodes(cs))
                    }
                    Lifted::Const(Value::Attrs(ats)) => {
                        let mut out = AttrSeq::new();
                        for i in 0..d.n() {
                            for &at in &ats {
                                out.iters.push(i as u32);
                                out.attrs.push(at);
                            }
                        }
                        Ok(RelOut::Attrs(out))
                    }
                    other => Err(XPathError::Eval {
                        message: format!("cannot use a {} as a node sequence", other.type_name()),
                    }),
                }
            }
            PhysRel::Unsupported { message } => Err(XPathError::Eval {
                message: message.clone(),
            }),
        }
    }

    /// A relational input that must be a *tree-node* relation.
    fn rel_nodes(&self, r: &PhysRel, d: &Domain<'_>) -> Result<ContextSeq> {
        match self.rel(r, d)? {
            RelOut::Nodes(cs) => Ok(cs),
            RelOut::Attrs(_) => Err(XPathError::Eval {
                message: "cannot apply a location step to a attribute-set".into(),
            }),
        }
    }

    /// One axis step, strategy-chosen, predicates included (mirrors the
    /// interpreter's `lifted_tree_step`).
    fn step(
        &self,
        input: &ContextSeq,
        axis: Axis,
        test: &NodeTest,
        preds: &[PhysPred],
        strategy: &StepStrategy,
        _d: &Domain<'_>,
    ) -> Result<ContextSeq> {
        if preds.is_empty() {
            return Ok(self.step_relation(input, axis, test, strategy));
        }
        let reverse = matches!(
            axis,
            Axis::Ancestor | Axis::AncestorOrSelf | Axis::Preceding | Axis::PrecedingSibling
        );
        // Expand each input row into its own iteration: the XPath
        // `position()` scope is per context node.
        let expanded = ContextSeq::lift(&input.pres);
        let mut cands = self.step_relation(&expanded, axis, test, strategy);
        for pred in preds {
            cands = self.apply_pred(cands, pred, reverse)?;
        }
        let row_tags: Vec<u32> = cands
            .iters
            .iter()
            .map(|&row| input.iters[row as usize])
            .collect();
        Ok(cands.regroup(&row_tags))
    }

    /// The strategy-dispatched axis-step kernel.
    fn step_relation(
        &self,
        ctx: &ContextSeq,
        axis: Axis,
        test: &NodeTest,
        strategy: &StepStrategy,
    ) -> ContextSeq {
        let name = match strategy {
            StepStrategy::Staircase => None,
            StepStrategy::NameIndex(name) | StepStrategy::Cost(name) => Some(name),
        };
        let Some(name) = name else {
            self.count_step(false);
            return self.staircase_step(ctx, axis, test);
        };
        // The index arm needs an interned name and an index-bearing
        // view; without either, the staircase is the only path.
        let probe_available = self
            .view
            .pool()
            .lookup_qname(name)
            .map(|qn| (qn, self.view.elements_named_count(qn)));
        let use_index = match (&strategy, &self.choice, &probe_available) {
            (_, _, None) => {
                // Name never interned: no element carries it.
                return ContextSeq::new();
            }
            (_, _, Some((_, None))) => false, // no index on this view
            (StepStrategy::NameIndex(_), AxisChoice::Auto, _) => true,
            (_, AxisChoice::ForceIndex, _) => true,
            (_, AxisChoice::ForceStaircase, _) => false,
            (StepStrategy::Cost(_), AxisChoice::Auto, Some((_, Some(k)))) => {
                self.index_cheaper(ctx, axis, *k)
            }
            (StepStrategy::Staircase, _, _) => unreachable!("no name"),
        };
        if !use_index {
            self.count_step(false);
            return self.staircase_step(ctx, axis, test);
        }
        self.count_step(true);
        let (qn, _) = probe_available.expect("checked above");
        let cands: Vec<u64> = self.view.elements_named(qn).unwrap_or_default();
        self.semijoin_rel(ctx, &cands, axis)
    }

    // -- morsel-parallel execution -------------------------------------
    //
    // Auto-mode parallelism gates are **break-even thresholds**, not
    // fixed volumes: splitting a job of `work_ns` sequential nanoseconds
    // over `f` threads saves `work_ns · (1 − 1/f)` but pays a fixed
    // `morsels · overhead + merge` (overhead measured per pool at spawn,
    // see [`WorkerPool::new`]). Solving for the work that breaks even
    // gives, per work-unit class,
    //
    //   threshold_units = (morsels · overhead + merge) · 10 · f
    //                     / (unit_ns_x10 · (f − 1))
    //
    // so the gate adapts to live pool width, this host's measured morsel
    // overhead, and the kernel arm's throughput class — a wide pool with
    // cheap dispatch splits smaller jobs; a simd scan needs more slots
    // than a scalar one before splitting pays (each slot is cheaper, so
    // the same fixed cost amortizes over less saved time).

    /// Estimated sequential cost of one scanned slot under the scalar
    /// chunk kernel, in tenths of a nanosecond.
    const SCALAR_SLOT_NS_X10: u64 = 10;
    /// One scanned slot under the compiled vector kernel (16 byte lanes
    /// per compare), in tenths of a nanosecond.
    const SIMD_SLOT_NS_X10: u64 = 3;
    /// One semijoin context row (two binary searches), x10 ns.
    const SEMIJOIN_ROW_NS_X10: u64 = 600;
    /// One predicate evaluation row (scalar-plan dispatch per row —
    /// far heavier than a scan slot), x10 ns.
    const PRED_ROW_NS_X10: u64 = 1500;
    /// Fixed cost of merging per-morsel results, in nanoseconds.
    const MERGE_NS: u64 = 2_000;

    /// The scan-slot cost class of the active kernel arm. Forcing
    /// [`KernelArm::Simd`] without compiled vector instructions runs
    /// the hand-unrolled scalar twin, which costs like the scalar arm.
    fn scan_slot_ns_x10(&self) -> u64 {
        if self.kernel == KernelArm::Simd && simd_compiled() {
            Self::SIMD_SLOT_NS_X10
        } else {
            Self::SCALAR_SLOT_NS_X10
        }
    }

    /// Minimum work units (of `unit_ns_x10` each) before a parallel
    /// split breaks even on this pool at this fan-out — the formula in
    /// the module comment above. `u64::MAX` when there is no pool to
    /// split on.
    fn par_threshold_units(&self, unit_ns_x10: u64, fanout: usize) -> u64 {
        let Some(pool) = self.pool else {
            return u64::MAX;
        };
        let f = fanout as u64;
        if f < 2 {
            return u64::MAX;
        }
        let morsels = (fanout * 4) as u64;
        let fixed_ns = morsels
            .saturating_mul(pool.morsel_overhead_ns())
            .saturating_add(Self::MERGE_NS);
        fixed_ns
            .saturating_mul(10)
            .saturating_mul(f)
            .div_ceil(unit_ns_x10 * (f - 1))
            .max(1)
    }

    /// Threads a parallel region may occupy: 1 (= stay sequential)
    /// without a pool or under [`ParChoice::ForceSequential`], else the
    /// pool width capped by the `threads` option.
    fn fanout(&self) -> usize {
        let Some(pool) = self.pool else { return 1 };
        if self.par == ParChoice::ForceSequential {
            return 1;
        }
        let cap = pool.threads();
        if self.threads == 0 {
            cap
        } else {
            self.threads.min(cap).max(1)
        }
    }

    /// Morsel-count target for a relation of `rows` rows: a few morsels
    /// per thread so work stealing has slack, unless the `morsel_rows`
    /// option forces a size (tests force tiny morsels).
    fn morsel_parts(&self, rows: usize, fanout: usize) -> usize {
        if self.morsel_rows > 0 {
            rows.div_ceil(self.morsel_rows)
        } else {
            fanout * 4
        }
    }

    /// Whether Σ (context subtree size + 1) reaches `threshold`, with
    /// an early out — the Auto-mode work gate for splitting a scan.
    fn scan_work_clears(&self, ctx: &ContextSeq, threshold: u64) -> bool {
        let mut work = 0u64;
        for &c in &ctx.pres {
            work = work.saturating_add(self.view.size(c) + 1);
            if work >= threshold {
                return true;
            }
        }
        false
    }

    fn note_par(&self, morsels: usize, steals: u64) {
        if let Some(stats) = self.stats {
            stats.par_steps.set(stats.par_steps.get() + 1);
            stats.morsels.set(stats.morsels.get() + morsels as u64);
            stats.steals.set(stats.steals.get() + steals);
        }
    }

    /// Counts one scan-shaped operator dispatched to the vector kernel
    /// arm (whether hardware simd or its scalar twin — the counter
    /// tracks dispatch, [`simd_compiled`] tells which code ran).
    fn note_simd(&self) {
        if self.kernel == KernelArm::Simd {
            if let Some(stats) = self.stats {
                stats.simd_steps.set(stats.simd_steps.get() + 1);
            }
        }
    }

    /// Runs `f` over group-aligned morsels of `ctx` on the pool and
    /// concatenates the per-morsel relations in morsel order — which is
    /// group order, so the merged result is bit-identical to `f(ctx)`
    /// for any per-group operator. Returns `None` when the relation
    /// does not actually split (one group, no pool); the caller falls
    /// back to the sequential kernel.
    fn par_relation(
        &self,
        ctx: &ContextSeq,
        fanout: usize,
        f: &(dyn Fn(&ContextSeq) -> ContextSeq + Sync),
    ) -> Option<ContextSeq> {
        let pool = self.pool?;
        let ranges = par::morsel_ranges(&ctx.iters, self.morsel_parts(ctx.len(), fanout));
        if ranges.len() < 2 {
            return None;
        }
        let results: Mutex<Vec<(usize, ContextSeq)>> = Mutex::new(Vec::with_capacity(ranges.len()));
        let steals = pool.run(ranges.len(), &|m| {
            let (start, end) = ranges[m];
            let sub = ContextSeq {
                iters: ctx.iters[start..end].to_vec(),
                pres: ctx.pres[start..end].to_vec(),
            };
            let out = f(&sub);
            results.lock().unwrap().push((m, out));
        });
        let mut results = results.into_inner().unwrap();
        results.sort_unstable_by_key(|&(m, _)| m);
        let mut merged = ContextSeq::new();
        for (_, part) in results {
            merged.iters.extend_from_slice(&part.iters);
            merged.pres.extend_from_slice(&part.pres);
        }
        self.note_par(ranges.len(), steals);
        Some(merged)
    }

    /// The staircase arm of an axis step, with the two morsel-parallel
    /// fast paths: multi-group contexts split by rows at group
    /// boundaries; single-group descendant steps split by subtree
    /// region (`//desc` from the root is one group and would otherwise
    /// never parallelize).
    fn staircase_step(&self, ctx: &ContextSeq, axis: Axis, test: &NodeTest) -> ContextSeq {
        if matches!(
            axis,
            Axis::Descendant | Axis::DescendantOrSelf | Axis::Following
        ) {
            // Scan-shaped axes route through the chunk kernels.
            self.note_simd();
        }
        let kernel = self.kernel;
        let fanout = self.fanout();
        if fanout >= 2 && !ctx.is_empty() {
            let threshold = self.par_threshold_units(self.scan_slot_ns_x10(), fanout);
            let eligible =
                self.par == ParChoice::ForceParallel || self.scan_work_clears(ctx, threshold);
            if eligible {
                let or_self = match axis {
                    Axis::Descendant => Some(false),
                    Axis::DescendantOrSelf => Some(true),
                    _ => None,
                };
                let single_group = ctx.iters.first() == ctx.iters.last();
                if let (Some(or_self), true) = (or_self, single_group) {
                    if let Some(out) = self.par_descendant_scan(ctx, test, or_self, fanout) {
                        return out;
                    }
                }
                let view = self.view;
                if let Some(out) = self.par_relation(ctx, fanout, &|sub| {
                    step_lifted_with(view, sub, axis, test, kernel)
                }) {
                    return out;
                }
            }
        }
        step_lifted_with(self.view, ctx, axis, test, kernel)
    }

    /// Region-split parallel descendant scan for a single-group
    /// context: partition the horizon-pruned subtree ranges by slot
    /// volume, scan each chunk on the pool, concatenate in chunk order
    /// (= document order — identical to the sequential staircase).
    fn par_descendant_scan(
        &self,
        ctx: &ContextSeq,
        test: &NodeTest,
        or_self: bool,
        fanout: usize,
    ) -> Option<ContextSeq> {
        let pool = self.pool?;
        let ranges = descendant_scan_ranges(self.view, &ctx.pres, or_self);
        let parts = if self.morsel_rows > 0 {
            let total: u64 = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
            total.div_ceil(self.morsel_rows as u64) as usize
        } else {
            fanout * 4
        };
        let chunks = par::range_chunks(&ranges, parts.max(1));
        if chunks.len() < 2 {
            return None;
        }
        let view = self.view;
        let kernel = self.kernel;
        let results: Mutex<Vec<(usize, Vec<u64>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
        let steals = pool.run(chunks.len(), &|m| {
            let mut out = Vec::new();
            scan_ranges_arm(view, &chunks[m], test, kernel, &mut out);
            results.lock().unwrap().push((m, out));
        });
        let mut results = results.into_inner().unwrap();
        results.sort_unstable_by_key(|&(m, _)| m);
        let iter = ctx.iters[0];
        let mut merged = ContextSeq::new();
        for (_, part) in results {
            for p in part {
                merged.push(iter, p);
            }
        }
        self.note_par(chunks.len(), steals);
        Some(merged)
    }

    /// Range semijoin with the morsel-parallel path: large contexts
    /// split by group into morsels probing the shared candidate list.
    fn semijoin_rel(&self, ctx: &ContextSeq, cands: &[u64], axis: Axis) -> ContextSeq {
        let fanout = self.fanout();
        if fanout >= 2
            && !cands.is_empty()
            && (self.par == ParChoice::ForceParallel
                || ctx.len() as u64 >= self.par_threshold_units(Self::SEMIJOIN_ROW_NS_X10, fanout))
        {
            let view = self.view;
            if let Some(out) =
                self.par_relation(ctx, fanout, &|sub| range_semijoin(view, sub, cands, axis))
            {
                return out;
            }
        }
        range_semijoin(self.view, ctx, cands, axis)
    }

    /// The cost model: the staircase arm scans the context regions
    /// (≈ Σ subtree sizes, where every visited slot pays one pass of a
    /// tight chunk-kernel loop); the index arm touches the precomputed
    /// probe list once plus two binary searches per context node.
    /// Statistics come from the live view at execution time, so cached
    /// plans re-cost on every run as the document changes.
    ///
    /// The scan weight is no longer a single constant: the vector
    /// kernel arm discounts the per-slot cost (16 byte lanes per
    /// compare vs one), and when the query pool would split the scan,
    /// its estimate is divided by the live fan-out and charged the
    /// pool's measured per-morsel overhead — so staircase-vs-index
    /// decisions stop assuming a sequential scalar executor. One cost
    /// unit is calibrated at ≈ 0.125 ns (a scalar slot = 8 units ≈
    /// 1 ns; costs run in x4 fixed-point so the vector discount can be
    /// fractional).
    fn index_cheaper(&self, ctx: &ContextSeq, axis: Axis, k: u64) -> bool {
        let _ = axis;
        let fanout = self.fanout() as u64;
        // Both arms pay per-context-node fixed work — the probe its two
        // binary searches, the staircase its horizon/cursor bookkeeping
        // — so both sides carry the same 8-per-node charge and the
        // comparison reduces to posting-list length vs scan volume.
        // (The seed model charged only the index arm, which made tiny
        // staircase steps look free and cost q15_deep_path ~2x.)
        let per_node = (ctx.len() as u64) * 8 * 4;
        let index_cost = k * 4 + per_node;
        // Early-out cap: once the *parallel-adjusted* scan estimate
        // already dwarfs the probe we can stop summing subtree sizes.
        let cap = index_cost.saturating_mul(2).saturating_mul(fanout);
        index_cost < self.scan_units(ctx, cap)
    }

    /// The scan side of the cost model: Σ (context subtree size + 1)
    /// slots at the kernel arm's per-slot weight, plus the per-node
    /// charge, adjusted to the parallel shape when the pool would split
    /// the scan. Summation stops early once the running estimate
    /// clears `cap` — callers only compare against costs at or below
    /// it, so "bigger than cap" is as good as the exact figure.
    fn scan_units(&self, ctx: &ContextSeq, cap: u64) -> u64 {
        // Per-slot scan weight by kernel throughput class, in x4
        // fixed-point. The scalar value keeps the pre-vectorization
        // calibration (8 = the old weight 2: a tight columnar loop
        // over a contiguous page slice); the vector arm discounts
        // 12.5 % — byte compares collapse 16 slots into one compare,
        // but a staircase step's emit, probe-resolution, horizon and
        // tail halves stay scalar, so measured end-to-end step cost
        // drops far less than lane width suggests (plan_cost's
        // auto-vs-best assertion is the empirical guard on this
        // constant).
        let scan_weight: u64 = if self.kernel == KernelArm::Simd && simd_compiled() {
            7
        } else {
            8
        };
        let fanout = self.fanout() as u64;
        let mut scan_cost: u64 = (ctx.len() as u64) * 8 * 4;
        for &c in &ctx.pres {
            scan_cost =
                scan_cost.saturating_add((self.view.size(c) + 1).saturating_mul(scan_weight));
            if scan_cost > cap {
                return scan_cost;
            }
        }
        if fanout >= 2 {
            // Would this scan actually split? Mirror the staircase
            // gate; if it clears, cost the scan at its parallel shape.
            let slots = scan_cost / scan_weight;
            if slots >= self.par_threshold_units(self.scan_slot_ns_x10(), fanout as usize) {
                let overhead_ns = self.pool.map_or(0, |p| p.morsel_overhead_ns());
                let fixed_ns = (fanout * 4)
                    .saturating_mul(overhead_ns)
                    .saturating_add(Self::MERGE_NS);
                // 1 cost unit ≈ 0.125 ns, so fixed ns count 8x.
                scan_cost = scan_cost / fanout + fixed_ns.saturating_mul(8);
            }
        }
        scan_cost
    }

    fn count_step(&self, index: bool) {
        if let Some(stats) = self.stats {
            if index {
                stats.index_steps.set(stats.index_steps.get() + 1);
            } else {
                stats.staircase_steps.set(stats.staircase_steps.get() + 1);
            }
        }
    }

    // -- value-probe steps ---------------------------------------------

    /// One value-predicate step (`PhysRel::ValueProbe`): per execution,
    /// choose between the content-index probe + range semijoin and the
    /// scalar scan from the posting-list estimate vs the context's
    /// region sizes (same model as the element-name index, since the
    /// probe's semijoin half is identical).
    fn value_probe_step(
        &self,
        ctx: &ContextSeq,
        axis: Axis,
        test: &NodeTest,
        pred: &ValuePred,
    ) -> Result<ContextSeq> {
        if ctx.is_empty() {
            return Ok(ContextSeq::new());
        }
        let use_probe = if !self.view.has_content_index() {
            false
        } else {
            match self.value_choice {
                ValueChoice::ForceProbe => true,
                ValueChoice::ForceScan => false,
                ValueChoice::Auto => {
                    self.index_cheaper(ctx, axis, self.value_probe_estimate(test, pred))
                }
            }
        };
        self.count_value_step(use_probe);
        if !use_probe {
            return Ok(self.value_scan(ctx, axis, test, pred));
        }
        let cands = self.value_probe_candidates(test, pred);
        Ok(self.semijoin_rel(ctx, &cands, axis))
    }

    /// Upper-bound match count from the content index's estimators
    /// (complex-content candidates included — each costs a verify).
    /// A name that was never interned matches nothing: estimate 0.
    fn value_probe_estimate(&self, test: &NodeTest, pred: &ValuePred) -> u64 {
        match &pred.source {
            ValueSource::Attr(a) => match self.view.pool().lookup_qname(a) {
                None => 0,
                Some(aqn) => match &pred.cmp {
                    ValueCmp::Eq(v) => self.view.nodes_with_attr_value_count(aqn, v),
                    ValueCmp::InRange(r) => self.view.nodes_with_attr_value_range_count(aqn, r),
                }
                .unwrap_or(0),
            },
            ValueSource::SelfValue => match test {
                NodeTest::Name(t) => self.text_count(t, &pred.cmp),
                _ => 0,
            },
            ValueSource::Child(c) => self.text_count(c, &pred.cmp),
        }
    }

    /// Estimated `text_probe_hits` cardinality for elements named
    /// `name` (exact arm + complex remainder).
    fn text_count(&self, name: &mbxq_xml::QName, cmp: &ValueCmp) -> u64 {
        let Some(qn) = self.view.pool().lookup_qname(name) else {
            return 0;
        };
        match cmp {
            ValueCmp::Eq(v) => self.view.elements_with_text_count(qn, v),
            ValueCmp::InRange(r) => self.view.elements_with_text_range_count(qn, r),
        }
        .unwrap_or(0)
    }

    /// The probe arm's candidate list: document-ordered, deduplicated
    /// pre ranks of elements satisfying `test` + `pred`. Only called
    /// when the view has a content index.
    fn value_probe_candidates(&self, test: &NodeTest, pred: &ValuePred) -> Vec<u64> {
        let pool = self.view.pool();
        match &pred.source {
            ValueSource::Attr(a) => {
                let Some(aqn) = pool.lookup_qname(a) else {
                    return Vec::new();
                };
                let mut hits = match &pred.cmp {
                    ValueCmp::Eq(v) => self.view.nodes_with_attr_value(aqn, v),
                    ValueCmp::InRange(r) => self.view.nodes_with_attr_value_range(aqn, r),
                }
                .unwrap_or_default();
                if let NodeTest::Name(t) = test {
                    match pool.lookup_qname(t) {
                        Some(tqn) => hits.retain(|&p| self.view.name_id(p) == Some(tqn)),
                        None => hits.clear(),
                    }
                }
                hits
            }
            ValueSource::SelfValue => {
                let NodeTest::Name(t) = test else {
                    return Vec::new(); // lowering guarantees a name test
                };
                self.text_probe_hits(t, &pred.cmp)
            }
            ValueSource::Child(c) => {
                let children_with_value = self.text_probe_hits(c, &pred.cmp);
                let mut parents: Vec<u64> = children_with_value
                    .into_iter()
                    .filter_map(|p| self.view.parent_of(p))
                    .collect();
                if let NodeTest::Name(t) = test {
                    match pool.lookup_qname(t) {
                        Some(tqn) => parents.retain(|&p| self.view.name_id(p) == Some(tqn)),
                        None => parents.clear(),
                    }
                }
                parents.sort_unstable();
                parents.dedup();
                parents
            }
        }
    }

    /// Elements named `name` whose string value satisfies `cmp`: the
    /// exact index arm merged with the verified complex-content
    /// remainder (both document-ordered).
    fn text_probe_hits(&self, name: &mbxq_xml::QName, cmp: &ValueCmp) -> Vec<u64> {
        let Some(qn) = self.view.pool().lookup_qname(name) else {
            return Vec::new();
        };
        let probe = match cmp {
            ValueCmp::Eq(v) => self.view.elements_with_text(qn, v),
            ValueCmp::InRange(r) => self.view.elements_with_text_range(qn, r),
        }
        .unwrap_or_default();
        let verified: Vec<u64> = probe
            .unindexed
            .into_iter()
            .filter(|&p| self.string_value_matches(p, cmp))
            .collect();
        merge_sorted(probe.exact, verified)
    }

    /// Whether the string value of the node at `pre` satisfies `cmp`.
    fn string_value_matches(&self, pre: u64, cmp: &ValueCmp) -> bool {
        cmp_value(&self.view.string_value(pre), cmp)
    }

    /// The scan arm: the plain axis step (itself cost-annotated when
    /// the test is a name) followed by direct per-candidate predicate
    /// evaluation — observably the `Step` + `Filter` pair the lowering
    /// replaced.
    fn value_scan(
        &self,
        ctx: &ContextSeq,
        axis: Axis,
        test: &NodeTest,
        pred: &ValuePred,
    ) -> ContextSeq {
        let strategy = match test {
            NodeTest::Name(n) => StepStrategy::Cost(n.clone()),
            _ => StepStrategy::Staircase,
        };
        let cands = self.step_relation(ctx, axis, test, &strategy);
        if cands.is_empty() {
            return cands;
        }
        let keep = self.value_pred_mask(&cands.pres, pred);
        cands.retain_rows(&keep)
    }

    /// Per-candidate verification of one recognized value predicate:
    /// `keep[i]` iff the node at `pres[i]` satisfies `pred`. The
    /// columnar half of the scan arm and the residual-verify pass of
    /// multi-predicate steps.
    fn value_pred_mask(&self, pres: &[u64], pred: &ValuePred) -> Vec<bool> {
        let pool = self.view.pool();
        match (&pred.source, &pred.cmp) {
            // Numeric range tests gather the parsed values into one
            // f64 column and run the chunk kernel's range mask over it
            // (two lanes per compare under the vector arm).
            (ValueSource::SelfValue, ValueCmp::InRange(r)) => {
                let vals: Vec<f64> = pres
                    .iter()
                    .map(|&p| str_to_number(&self.view.string_value(p)))
                    .collect();
                self.note_simd();
                let mut keep = Vec::new();
                in_range_mask(&vals, r, self.kernel, &mut keep);
                keep
            }
            (ValueSource::Attr(a), ValueCmp::InRange(r)) => match pool.lookup_qname(a) {
                None => vec![false; pres.len()],
                Some(aqn) => {
                    // A missing or unparsable attribute becomes NaN,
                    // which fails every range compare — the columnar
                    // twin of "no attribute → no match".
                    let vals: Vec<f64> = pres
                        .iter()
                        .map(|&p| {
                            attr_value(self.view, p, aqn).map_or(f64::NAN, |v| str_to_number(&v))
                        })
                        .collect();
                    self.note_simd();
                    let mut keep = Vec::new();
                    in_range_mask(&vals, r, self.kernel, &mut keep);
                    keep
                }
            },
            (ValueSource::SelfValue, _) => pres
                .iter()
                .map(|&p| self.string_value_matches(p, &pred.cmp))
                .collect(),
            (ValueSource::Attr(a), _) => match pool.lookup_qname(a) {
                None => vec![false; pres.len()],
                Some(aqn) => pres
                    .iter()
                    .map(|&p| {
                        attr_value(self.view, p, aqn).is_some_and(|v| cmp_value(&v, &pred.cmp))
                    })
                    .collect(),
            },
            (ValueSource::Child(c), _) => match pool.lookup_qname(c) {
                None => vec![false; pres.len()],
                Some(cqn) => pres
                    .iter()
                    .map(|&p| {
                        mbxq_axes::children(self.view, p)
                            .filter(|&ch| self.view.name_id(ch) == Some(cqn))
                            .any(|ch| self.string_value_matches(ch, &pred.cmp))
                    })
                    .collect(),
            },
        }
    }

    fn count_value_step(&self, probe: bool) {
        if let Some(stats) = self.stats {
            if probe {
                stats
                    .value_probe_steps
                    .set(stats.value_probe_steps.get() + 1);
            } else {
                stats.value_scan_steps.set(stats.value_scan_steps.get() + 1);
            }
        }
    }

    // -- multi-predicate steps -----------------------------------------

    /// Cost units (0.125 ns each) to verify one residual predicate
    /// against one candidate node: an attribute/child lookup plus a
    /// string or parsed-number compare, ≈ 50 ns. Far below the general
    /// predicate-row charge (`PRED_ROW_NS_X10`) because a recognized
    /// value predicate skips the whole lifted-expression machinery.
    const VERIFY_ROW_UNITS: u64 = 400;

    /// Cost units to materialize one posting row of a candidate list:
    /// the index walk (range gathers touch a key run, point lookups
    /// copy a posting vector, both merge COW deltas) plus the sort
    /// guarantee, ≈ 35 ns measured on the `multi_pred` corpus. Close
    /// enough to [`Exec::VERIFY_ROW_UNITS`] that a list longer than
    /// ~1.4x the running candidate bound stays out of the
    /// intersection prefix — materializing it would cost more than
    /// verifying its predicate per candidate.
    const MATERIALIZE_ROW_UNITS: u64 = 280;

    /// Pessimistic cardinality bound for one recognized predicate: the
    /// content index's posting estimate capped by the per-index degree
    /// statistics — `max_postings` for a point predicate can never be
    /// exceeded by any single key, `total_postings` bounds any range.
    /// Both figures stay upper bounds under COW index deltas, so the
    /// bound errs large, never small (the Sidorenko-style pessimistic
    /// guarantee: a plan ranked safe is safe). An `observed` list
    /// length recorded by a previous execution overrides the
    /// statistics — replans correct from evidence, not re-guesses.
    fn multi_pred_bound(&self, test: &NodeTest, pred: &ValuePred, observed: Option<u64>) -> u64 {
        if let Some(n) = observed {
            return n;
        }
        self.value_probe_estimate(test, pred)
            .min(self.degree_cap(test, pred))
    }

    /// The degree-statistics half of [`Exec::multi_pred_bound`];
    /// `u64::MAX` when the view keeps no statistics for the source.
    fn degree_cap(&self, test: &NodeTest, pred: &ValuePred) -> u64 {
        fn cap_of(stats: DegreeStats, cmp: &ValueCmp) -> u64 {
            match cmp {
                ValueCmp::Eq(_) => stats.max_postings,
                ValueCmp::InRange(_) => stats.total_postings,
            }
        }
        let pool = self.view.pool();
        let name = match &pred.source {
            ValueSource::Attr(a) => {
                return pool
                    .lookup_qname(a)
                    .and_then(|q| self.view.attr_degree_stats(q))
                    .map_or(u64::MAX, |s| cap_of(s, &pred.cmp))
            }
            ValueSource::SelfValue => match test {
                NodeTest::Name(t) => t,
                _ => return u64::MAX,
            },
            ValueSource::Child(c) => c,
        };
        pool.lookup_qname(name)
            .and_then(|q| self.view.text_degree_stats(q))
            .map_or(u64::MAX, |s| cap_of(s, &pred.cmp))
    }

    /// The join-order search for one multi-predicate step. Predicates
    /// are ranked ascending by their pessimistic bound; the
    /// intersection prefix then grows greedily — the next-ranked list
    /// joins while materializing it (its postings plus the galloping
    /// probes into it) costs less than verifying the running candidate
    /// bound against its predicate per node. A hot-key list (skew: one
    /// key holding most postings) ranks last and fails that test, so
    /// the search steers around the bad intersection order by
    /// construction. The winning probe shape then competes with the
    /// scalar scan on the same unit scale as [`Exec::index_cheaper`].
    /// Returns the strategy and the pessimistic bound on candidate
    /// rows (the minimum over every predicate's bound — intersection
    /// and residual verification only shrink the set).
    fn choose_multi(
        &self,
        choice: MultiChoice,
        ctx: &ContextSeq,
        test: &NodeTest,
        preds: &[ValuePred],
        pred_obs: &[Option<u64>],
    ) -> (MultiStrategy, u64) {
        let bounds: Vec<u64> = preds
            .iter()
            .enumerate()
            .map(|(i, p)| self.multi_pred_bound(test, p, pred_obs.get(i).copied().flatten()))
            .collect();
        let mut order: Vec<usize> = (0..preds.len()).collect();
        order.sort_by_key(|&i| bounds[i]);
        let est = bounds[order[0]];
        match choice {
            MultiChoice::ForceScan => return (MultiStrategy::Scan, est),
            MultiChoice::ForceBestProbe => return (MultiStrategy::Probe(vec![order[0]]), est),
            MultiChoice::ForceIntersect => return (MultiStrategy::Probe(order), est),
            MultiChoice::Auto => {}
        }
        let mut prefix = vec![order[0]];
        let mut bound = est;
        let mut probe_cost = est.saturating_mul(Self::MATERIALIZE_ROW_UNITS);
        for &j in &order[1..] {
            let k = bounds[j];
            // Galloping probes: the running candidate set binary-walks
            // the next list, ~log2(k) touches per candidate.
            let gallop = 64 - k.max(2).leading_zeros() as u64;
            let materialize = k
                .saturating_mul(Self::MATERIALIZE_ROW_UNITS)
                .saturating_add(bound.saturating_mul(gallop * 4));
            let verify = bound.saturating_mul(Self::VERIFY_ROW_UNITS);
            if materialize < verify {
                prefix.push(j);
                probe_cost = probe_cost.saturating_add(materialize);
                bound = bound.min(k);
            } else {
                probe_cost = probe_cost.saturating_add(verify);
            }
        }
        let per_node = (ctx.len() as u64) * 8 * 4;
        let index_cost = probe_cost.saturating_add(per_node);
        let cap = index_cost
            .saturating_mul(2)
            .saturating_mul(self.fanout() as u64);
        if index_cost < self.scan_units(ctx, cap) {
            (MultiStrategy::Probe(prefix), bound)
        } else {
            (MultiStrategy::Scan, bound)
        }
    }

    /// One multi-predicate step (`PhysRel::MultiProbe`): decide a
    /// strategy (reused from plan feedback, replanned, or derived
    /// fresh — see [`crate::ReplanMode`]), execute it, and record the
    /// estimated-vs-observed candidate cardinality back into the
    /// feedback store.
    fn multi_probe_step(
        &self,
        ctx: &ContextSeq,
        axis: Axis,
        test: &NodeTest,
        preds: &[ValuePred],
    ) -> Result<ContextSeq> {
        let seq = self.multi_seq.get();
        self.multi_seq.set(seq + 1);
        if ctx.is_empty() {
            return Ok(ContextSeq::new());
        }
        if let Some(stats) = self.stats {
            stats
                .multi_probe_steps
                .set(stats.multi_probe_steps.get() + 1);
        }
        let recorded = self.feedback.and_then(|f| f.step(seq));
        // The per-step value override composes: forcing the scalar scan
        // or the index probe for single-predicate steps forces the
        // matching multi-predicate arm too, so the existing scan/probe
        // ablation harnesses stay meaningful on multi-pred queries.
        let choice = match (self.multi_choice, self.value_choice) {
            (MultiChoice::Auto, ValueChoice::ForceScan) => MultiChoice::ForceScan,
            (MultiChoice::Auto, ValueChoice::ForceProbe) => MultiChoice::ForceIntersect,
            (m, _) => m,
        };
        let mut replanned = false;
        let (strategy, estimated) = if !self.view.has_content_index() {
            // No index: every arm degenerates to the scan.
            (MultiStrategy::Scan, 0)
        } else if choice != MultiChoice::Auto {
            self.choose_multi(choice, ctx, test, preds, &[])
        } else {
            match (&recorded, self.replan) {
                (Some(r), ReplanMode::Skip) => (r.strategy.clone(), r.estimated),
                (Some(r), ReplanMode::Default) if !r.diverged() => {
                    (r.strategy.clone(), r.estimated)
                }
                (Some(r), ReplanMode::Default) => {
                    replanned = true;
                    self.choose_multi(choice, ctx, test, preds, &r.pred_lists)
                }
                (Some(_), ReplanMode::Force) => {
                    replanned = true;
                    self.choose_multi(choice, ctx, test, preds, &[])
                }
                (None, _) => self.choose_multi(choice, ctx, test, preds, &[]),
            }
        };
        if replanned {
            if let Some(stats) = self.stats {
                stats.replans.set(stats.replans.get() + 1);
            }
        }
        let mut pred_lists: Vec<Option<u64>> = vec![None; preds.len()];
        let observed;
        let out = match &strategy {
            MultiStrategy::Scan => {
                let step_strategy = match test {
                    NodeTest::Name(n) => StepStrategy::Cost(n.clone()),
                    _ => StepStrategy::Staircase,
                };
                let mut cands = self.step_relation(ctx, axis, test, &step_strategy);
                for pred in preds {
                    if cands.is_empty() {
                        break;
                    }
                    let keep = self.value_pred_mask(&cands.pres, pred);
                    cands = cands.retain_rows(&keep);
                }
                // The scan produces context-joined rows directly, so
                // "observed" counts result rows here — still a valid
                // lower-bound signal for the document-wide estimate.
                observed = cands.len() as u64;
                cands
            }
            MultiStrategy::Probe(prefix) => {
                let lists: Vec<Vec<u64>> = prefix
                    .iter()
                    .map(|&i| {
                        let l = self.value_probe_candidates(test, &preds[i]);
                        pred_lists[i] = Some(l.len() as u64);
                        l
                    })
                    .collect();
                let mut cands: Vec<u64> = if lists.len() == 1 {
                    lists.into_iter().next().unwrap()
                } else {
                    let refs: Vec<&[u64]> = lists.iter().map(Vec::as_slice).collect();
                    self.note_simd();
                    let inter = intersect_sorted(&refs, self.kernel);
                    if let Some(stats) = self.stats {
                        stats
                            .intersect_rows
                            .set(stats.intersect_rows.get() + inter.len() as u64);
                    }
                    inter
                };
                // Residual verification: predicates outside the
                // intersection prefix, applied per candidate.
                for (i, pred) in preds.iter().enumerate() {
                    if prefix.contains(&i) || cands.is_empty() {
                        continue;
                    }
                    let keep = self.value_pred_mask(&cands, pred);
                    let mut kept = Vec::with_capacity(cands.len());
                    for (idx, &p) in cands.iter().enumerate() {
                        if keep[idx] {
                            kept.push(p);
                        }
                    }
                    cands = kept;
                }
                observed = cands.len() as u64;
                self.semijoin_rel(ctx, &cands, axis)
            }
        };
        if let Some(f) = self.feedback {
            // Forced arms are ablation probes; only Auto executions
            // may teach the cached plan.
            if choice == MultiChoice::Auto {
                if let Some(r) = &recorded {
                    // Keep evidence from earlier runs for lists this
                    // execution did not materialize.
                    for (slot, old) in pred_lists.iter_mut().zip(&r.pred_lists) {
                        if slot.is_none() {
                            *slot = *old;
                        }
                    }
                }
                // A replan that re-derives the same strategy from
                // observed evidence has learned everything the model
                // can offer: the remaining estimate-vs-observed gap is
                // the conjunction's real selectivity, not a
                // mis-estimate. Record the observation as the new
                // estimate so the step stops replanning (and resumes
                // only if the document shifts the observation again).
                let confirmed = replanned
                    && recorded
                        .as_ref()
                        .is_some_and(|r| r.strategy == strategy && r.estimated == estimated);
                f.record(
                    seq,
                    StepFeedback {
                        estimated: if confirmed { observed } else { estimated },
                        observed,
                        strategy,
                        pred_lists,
                    },
                );
            }
        }
        Ok(out)
    }

    fn probe(&self, name: &mbxq_xml::QName) -> Option<Vec<u64>> {
        let qn = self.view.pool().lookup_qname(name)?;
        self.view.elements_named(qn)
    }

    /// One predicate over a candidate relation: positional picks keep
    /// the group's first/last row with **no** position vectors; general
    /// predicates mirror the interpreter's `filter_predicate_lifted`.
    fn apply_pred(&self, cands: ContextSeq, pred: &PhysPred, reverse: bool) -> Result<ContextSeq> {
        if cands.is_empty() {
            return Ok(cands);
        }
        match pred {
            PhysPred::First => Ok(pick_per_group(&cands, !reverse)),
            PhysPred::Last => Ok(pick_per_group(&cands, reverse)),
            PhysPred::Expr(s) => {
                let (pos, last) = cands.positions(reverse);
                let keep = self.pred_flags(s, &cands.pres, &cands.iters, Some((&pos, &last)))?;
                Ok(cands.retain_rows(&keep))
            }
        }
    }

    // -- intra-morsel predicate parallelism ----------------------------

    /// Evaluates a predicate plan over a candidate relation and returns
    /// per-row keep flags, splitting the rows across the pool when the
    /// relation clears the predicate break-even threshold. `groups` are
    /// the rows' iteration tags (morsel cuts stay group-aligned);
    /// `positions` carries the scope's precomputed `(position(),
    /// last())` vectors when the predicate sits in step brackets.
    ///
    /// Safe to parallelize because `Domain::Rows` evaluation is
    /// row-independent — every verdict depends only on the row's own
    /// node and its (already global) position vectors — so slicing the
    /// relation and concatenating flag vectors in morsel order is
    /// bit-identical to one sequential pass.
    fn pred_flags(
        &self,
        pred: &PhysScalar,
        nodes: &[u64],
        groups: &[u32],
        positions: Option<(&[f64], &[f64])>,
    ) -> Result<Vec<bool>> {
        let n = nodes.len();
        let fanout = self.fanout();
        if fanout >= 2 && n > 0 {
            let eligible = self.par == ParChoice::ForceParallel
                || n as u64 >= self.par_threshold_units(Self::PRED_ROW_NS_X10, fanout);
            if eligible {
                if let Some(res) = self.par_pred_flags(pred, nodes, groups, positions, fanout) {
                    return res;
                }
            }
        }
        self.pred_flags_range(pred, nodes, positions, 0, n)
    }

    /// The sequential predicate kernel over one row range `[lo, hi)`:
    /// one scalar-plan evaluation with the sliced rows and positions.
    fn pred_flags_range(
        &self,
        pred: &PhysScalar,
        nodes: &[u64],
        positions: Option<(&[f64], &[f64])>,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<bool>> {
        let nodes = &nodes[lo..hi];
        let sliced = positions.map(|(pos, last)| (&pos[lo..hi], &last[lo..hi]));
        let info = sliced.map(|(pos, last)| PredInfo { pos, last });
        let d = Domain::Rows {
            nodes,
            pred: info.as_ref(),
        };
        let v = self.scalar(pred, &d)?;
        Ok(keep_flags(&v, sliced.map(|(pos, _)| pos), nodes.len()))
    }

    /// The morsel-parallel predicate path: group-aligned morsels, each
    /// evaluated by a worker-private sequential executor (the shared
    /// `EvalStats` cells are not `Sync`, so every morsel counts into a
    /// private sink absorbed afterwards in morsel order). Flag vectors
    /// concatenate in morsel order; on failure the first error in
    /// morsel order wins, matching the sequential pass. Returns `None`
    /// when the relation does not actually split.
    fn par_pred_flags(
        &self,
        pred: &PhysScalar,
        nodes: &[u64],
        groups: &[u32],
        positions: Option<(&[f64], &[f64])>,
        fanout: usize,
    ) -> Option<Result<Vec<bool>>> {
        let pool = self.pool?;
        let ranges = par::morsel_ranges(groups, self.morsel_parts(nodes.len(), fanout));
        if ranges.len() < 2 {
            return None;
        }
        let view = self.view;
        let bindings = self.bindings;
        let choice = self.choice;
        let value_choice = self.value_choice;
        let kernel = self.kernel;
        type MorselOut = (usize, Result<Vec<bool>>, EvalStats);
        let results: Mutex<Vec<MorselOut>> = Mutex::new(Vec::with_capacity(ranges.len()));
        let steals = pool.run(ranges.len(), &|m| {
            let (start, end) = ranges[m];
            let private = EvalStats::default();
            let sub = Exec {
                view,
                bindings,
                choice,
                value_choice,
                stats: Some(&private),
                pool: None,
                par: ParChoice::ForceSequential,
                threads: 1,
                morsel_rows: 0,
                kernel,
                // Morsels evaluate predicate scalars only; a MultiProbe
                // step never nests inside one.
                multi_choice: MultiChoice::Auto,
                replan: ReplanMode::Default,
                feedback: None,
                multi_seq: Cell::new(0),
            };
            let out = sub.pred_flags_range(pred, nodes, positions, start, end);
            results.lock().unwrap().push((m, out, private));
        });
        let mut results = results.into_inner().unwrap();
        results.sort_unstable_by_key(|&(m, _, _)| m);
        let mut flags = Vec::with_capacity(nodes.len());
        let mut first_err = None;
        for (_, out, private) in results {
            if let Some(stats) = self.stats {
                stats.absorb(&private);
            }
            match out {
                Ok(part) => flags.extend_from_slice(&part),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        self.note_par(ranges.len(), steals);
        if let Some(stats) = self.stats {
            stats.pred_par_steps.set(stats.pred_par_steps.get() + 1);
        }
        Some(match first_err {
            Some(e) => Err(e),
            None => Ok(flags),
        })
    }
}

/// Per-row boolean verdicts of a lifted predicate value. With position
/// vectors in scope a bare numeric predicate abbreviates
/// `position() = n` (the XPath rule); everything else takes the
/// effective boolean value.
fn keep_flags(v: &Lifted, pos: Option<&[f64]>, n: usize) -> Vec<bool> {
    match (v, pos) {
        (Lifted::Const(Value::Number(want)), Some(pos)) => {
            pos.iter().map(|&p| p == *want).collect()
        }
        (Lifted::Numbers(ns), Some(pos)) => ns.iter().zip(pos).map(|(&x, &p)| p == x).collect(),
        (other, _) => (0..n).map(|i| other.value_at(i).to_boolean()).collect(),
    }
}

/// Whether a string value satisfies a recognized value comparison —
/// the scalar twin of the content-index probe (`Eq` is XPath string
/// equality; ranges go through [`str_to_number`]).
fn cmp_value(v: &str, cmp: &ValueCmp) -> bool {
    match cmp {
        ValueCmp::Eq(lit) => v == lit,
        ValueCmp::InRange(r) => r.contains(str_to_number(v)),
    }
}

/// Merges two ascending, disjoint pre-rank lists.
fn merge_sorted(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    if b.is_empty() {
        return a;
    }
    if a.is_empty() {
        return b;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Keeps one row per iteration group: the first (`front = true`) or the
/// last. For reverse axes the callers flip `front`, because candidates
/// are stored in document order while positions count from the far end.
fn pick_per_group(cands: &ContextSeq, front: bool) -> ContextSeq {
    let mut out = ContextSeq::new();
    let mut start = 0usize;
    while start < cands.len() {
        let iter = cands.iters[start];
        let mut end = start;
        while end < cands.len() && cands.iters[end] == iter {
            end += 1;
        }
        let row = if front { start } else { end - 1 };
        out.push(iter, cands.pres[row]);
        start = end;
    }
    out
}

/// Merges two `(iter, pre)` relations per iteration (sorted, deduped).
fn union_relations(a: &ContextSeq, b: &ContextSeq) -> ContextSeq {
    let mut rows: Vec<(u32, u64)> = a.iter().chain(b.iter()).collect();
    rows.sort_unstable();
    rows.dedup();
    let mut out = ContextSeq::new();
    for (iter, pre) in rows {
        out.push(iter, pre);
    }
    out
}

/// Merges two attribute relations per iteration, ordered like the
/// interpreter's attribute union (`owner pre`, then name id).
fn union_attr_relations(n: usize, a: &AttrSeq, b: &AttrSeq) -> AttrSeq {
    let mut out = AttrSeq::new();
    for i in 0..n {
        let mut rows: Vec<(u64, QnId)> = a.of_iter(i as u32);
        rows.extend(b.of_iter(i as u32));
        rows.sort_unstable_by_key(|&(p, q)| (p, q.0));
        rows.dedup();
        for at in rows {
            out.iters.push(i as u32);
            out.attrs.push(at);
        }
    }
    out
}

fn rel_out_type(r: &RelOut) -> &'static str {
    match r {
        RelOut::Nodes(_) => "node-set",
        RelOut::Attrs(_) => "attribute-set",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_number_integers_without_point() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-17.0), "-17");
        assert_eq!(format_number(1e14), "100000000000000");
    }

    #[test]
    fn format_number_special_values() {
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
        assert_eq!(format_number(f64::NEG_INFINITY), "-Infinity");
        assert_eq!(format_number(-0.0), "0", "negative zero renders as 0");
    }

    #[test]
    fn format_number_decimals() {
        assert_eq!(format_number(1.5), "1.5");
        assert_eq!(format_number(-0.25), "-0.25");
    }

    #[test]
    fn str_to_number_rejects_rusty_spellings() {
        assert!(str_to_number("inf").is_nan());
        assert!(str_to_number("NaN").is_nan());
        assert!(str_to_number("1e3").is_nan());
        assert!(str_to_number("").is_nan());
        assert_eq!(str_to_number(" 42 "), 42.0);
        assert_eq!(str_to_number("-1.5"), -1.5);
        assert!(str_to_number("1-2").is_nan());
    }
}
