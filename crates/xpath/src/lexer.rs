//! Tokenizer for the XPath subset.

use crate::{Result, XPathError};

/// One token with its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    /// Name or axis/function identifier (may contain `-` and `:` in
    /// qualified names; axis separators `::` are their own token).
    Name(String),
    /// Numeric literal.
    Number(f64),
    /// Quoted string literal.
    Literal(String),
    /// Variable reference (`$name`, without the `$`).
    Var(String),
    Slash,
    DoubleSlash,
    Dot,
    DotDot,
    At,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Pipe,
    Plus,
    Minus,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    DoubleColon,
}

/// Lexes `src` into tokens.
pub(crate) fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    out.push(Token {
                        kind: TokenKind::DoubleSlash,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Slash,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Token {
                        kind: TokenKind::DotDot,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    // .5 style number
                    let (n, len) = lex_number(&src[i..], start)?;
                    out.push(Token {
                        kind: TokenKind::Number(n),
                        offset: start,
                    });
                    i += len;
                } else {
                    out.push(Token {
                        kind: TokenKind::Dot,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'@' => {
                out.push(Token {
                    kind: TokenKind::At,
                    offset: start,
                });
                i += 1;
            }
            b'$' => {
                let rest = &src[i + 1..];
                let len = name_len(rest);
                if len == 0 {
                    return Err(XPathError::Parse {
                        message: "'$' must be followed by a variable name".into(),
                        offset: start,
                    });
                }
                out.push(Token {
                    kind: TokenKind::Var(rest[..len].to_string()),
                    offset: start,
                });
                i += 1 + len;
            }
            b'[' => {
                out.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                i += 1;
            }
            b']' => {
                out.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                i += 1;
            }
            b'(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            b'|' => {
                out.push(Token {
                    kind: TokenKind::Pipe,
                    offset: start,
                });
                i += 1;
            }
            b'+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            b'-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            b'*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            b'=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(XPathError::Parse {
                        message: "'!' must be followed by '='".into(),
                        offset: start,
                    });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b':' => {
                if bytes.get(i + 1) == Some(&b':') {
                    out.push(Token {
                        kind: TokenKind::DoubleColon,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(XPathError::Parse {
                        message: "stray ':'".into(),
                        offset: start,
                    });
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(XPathError::Parse {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                out.push(Token {
                    kind: TokenKind::Literal(src[i + 1..j].to_string()),
                    offset: start,
                });
                i = j + 1;
            }
            b'0'..=b'9' => {
                let (n, len) = lex_number(&src[i..], start)?;
                out.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
                i += len;
            }
            _ => {
                let rest = &src[i..];
                let len = name_len(rest);
                if len == 0 {
                    return Err(XPathError::Parse {
                        message: format!(
                            "unexpected character '{}'",
                            &src[i..].chars().next().unwrap()
                        ),
                        offset: start,
                    });
                }
                out.push(Token {
                    kind: TokenKind::Name(rest[..len].to_string()),
                    offset: start,
                });
                i += len;
            }
        }
    }
    Ok(out)
}

/// Length of the name at the start of `rest`: letters, digits, `-`,
/// `_`, `.`, and `:` inside qualified names (but `::` terminates the
/// name — it is an axis separator). 0 when `rest` starts no name.
fn name_len(rest: &str) -> usize {
    let mut len = 0usize;
    for (ci, c) in rest.char_indices() {
        let ok = if ci == 0 {
            c.is_alphabetic() || c == '_'
        } else if c == ':' {
            // lookahead: '::' ends the name
            !rest[ci + 1..].starts_with(':')
        } else {
            c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
        };
        if ok {
            len = ci + c.len_utf8();
        } else {
            break;
        }
    }
    len
}

fn lex_number(rest: &str, offset: usize) -> Result<(f64, usize)> {
    let mut len = 0;
    let mut seen_dot = false;
    for (i, c) in rest.char_indices() {
        if c.is_ascii_digit() {
            len = i + 1;
        } else if c == '.' && !seen_dot {
            // A trailing ".." must not be consumed.
            if rest[i + 1..].starts_with('.') {
                break;
            }
            seen_dot = true;
            len = i + 1;
        } else {
            break;
        }
    }
    rest[..len]
        .parse::<f64>()
        .map(|n| (n, len))
        .map_err(|_| XPathError::Parse {
            message: format!("bad number '{}'", &rest[..len]),
            offset,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paths() {
        assert_eq!(
            kinds("/site//item"),
            vec![
                TokenKind::Slash,
                TokenKind::Name("site".into()),
                TokenKind::DoubleSlash,
                TokenKind::Name("item".into()),
            ]
        );
    }

    #[test]
    fn lexes_axes_and_predicates() {
        assert_eq!(
            kinds("child::a[@id=\"x\"]"),
            vec![
                TokenKind::Name("child".into()),
                TokenKind::DoubleColon,
                TokenKind::Name("a".into()),
                TokenKind::LBracket,
                TokenKind::At,
                TokenKind::Name("id".into()),
                TokenKind::Eq,
                TokenKind::Literal("x".into()),
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_operators() {
        assert_eq!(
            kinds("1.5 <= 2 != .5"),
            vec![
                TokenKind::Number(1.5),
                TokenKind::Le,
                TokenKind::Number(2.0),
                TokenKind::Ne,
                TokenKind::Number(0.5),
            ]
        );
    }

    #[test]
    fn hyphenated_names_stay_whole() {
        assert_eq!(
            kinds("following-sibling::x"),
            vec![
                TokenKind::Name("following-sibling".into()),
                TokenKind::DoubleColon,
                TokenKind::Name("x".into()),
            ]
        );
    }

    #[test]
    fn qualified_names_keep_single_colon() {
        assert_eq!(
            kinds("xu:remove"),
            vec![TokenKind::Name("xu:remove".into())]
        );
    }

    #[test]
    fn dotdot_is_not_a_number() {
        assert_eq!(kinds(".."), vec![TokenKind::DotDot]);
        assert_eq!(
            kinds("a/.."),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::Slash,
                TokenKind::DotDot
            ]
        );
    }

    #[test]
    fn reports_bad_input() {
        assert!(lex("a ! b").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("#").is_err());
    }
}
