//! Plan renderers: one line per operator, children indented — the
//! `explain()` surface for both plan levels.
//!
//! The logical rendering shows the algebra the rewriter produced
//! (fused steps, pushed-down filters, existence aggregates, `const`
//! hoist markers); the physical rendering additionally shows each axis
//! step's strategy slot (`staircase`, `name-index(n)`, or the
//! cost-chosen pair).

use crate::physical::{PhysPred, PhysRel, PhysScalar, StepStrategy};
use crate::plan::{AggKind, Pred, Rel, Scalar, ValueCmp, ValuePred, ValueSource};
use crate::{MultiStrategy, StepFeedback};
use mbxq_axes::{Axis, NodeTest};
use std::fmt::Write as _;

fn axis_name(axis: Axis) -> &'static str {
    match axis {
        Axis::Child => "child",
        Axis::Descendant => "descendant",
        Axis::DescendantOrSelf => "descendant-or-self",
        Axis::Parent => "parent",
        Axis::Ancestor => "ancestor",
        Axis::AncestorOrSelf => "ancestor-or-self",
        Axis::FollowingSibling => "following-sibling",
        Axis::PrecedingSibling => "preceding-sibling",
        Axis::Following => "following",
        Axis::Preceding => "preceding",
        Axis::SelfAxis => "self",
    }
}

fn test_name(test: &NodeTest) -> String {
    match test {
        NodeTest::AnyNode => "node()".into(),
        NodeTest::AnyElement => "*".into(),
        NodeTest::Name(q) => q.to_string(),
        NodeTest::Text => "text()".into(),
        NodeTest::Comment => "comment()".into(),
        NodeTest::AnyPi => "processing-instruction()".into(),
        NodeTest::PiTarget(t) => format!("processing-instruction('{t}')"),
    }
}

/// `[@id = "x"]` / `[. in (50, +∞)]`-style rendering of a recognized
/// value predicate.
fn value_pred_label(pred: &ValuePred) -> String {
    let source = match &pred.source {
        ValueSource::SelfValue => ".".to_string(),
        ValueSource::Attr(a) => format!("@{a}"),
        ValueSource::Child(c) => c.to_string(),
    };
    match &pred.cmp {
        ValueCmp::Eq(v) => format!("[{source} = {v:?}]"),
        ValueCmp::InRange(r) => {
            let lo = if r.lo_incl { "[" } else { "(" };
            let hi = if r.hi_incl { "]" } else { ")" };
            format!("[{source} in {lo}{}, {}{hi}]", r.lo, r.hi)
        }
    }
}

struct Printer<'a> {
    out: String,
    /// Recorded multi-predicate feedback, indexed by execution order
    /// (set only by [`physical_annotated`]).
    feedback: Option<&'a [StepFeedback]>,
}

impl Printer<'_> {
    fn line(&mut self, depth: usize, label: &str) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
        let _ = writeln!(self.out, "{label}");
    }
}

// ---------------------------------------------------------------------
// Logical
// ---------------------------------------------------------------------

/// Renders a logical plan.
pub fn logical(s: &Scalar) -> String {
    let mut p = Printer {
        out: String::new(),
        feedback: None,
    };
    scalar(&mut p, s, 0);
    p.out
}

fn scalar(p: &mut Printer, s: &Scalar, d: usize) {
    match s {
        Scalar::Literal(v) => p.line(d, &format!("literal {v:?}")),
        Scalar::Number(n) => p.line(d, &format!("number {n}")),
        Scalar::Var(name) => p.line(d, &format!("var ${name}")),
        Scalar::Or(a, b) => {
            p.line(d, "or (short-circuit)");
            scalar(p, a, d + 1);
            scalar(p, b, d + 1);
        }
        Scalar::And(a, b) => {
            p.line(d, "and (short-circuit)");
            scalar(p, a, d + 1);
            scalar(p, b, d + 1);
        }
        Scalar::Compare(op, a, b) => {
            p.line(d, &format!("compare {op:?}"));
            scalar(p, a, d + 1);
            scalar(p, b, d + 1);
        }
        Scalar::Arith(op, a, b) => {
            p.line(d, &format!("arith {op:?}"));
            scalar(p, a, d + 1);
            scalar(p, b, d + 1);
        }
        Scalar::Neg(e) => {
            p.line(d, "neg");
            scalar(p, e, d + 1);
        }
        Scalar::Call(name, args) => {
            p.line(d, &format!("call {name}()"));
            for a in args {
                scalar(p, a, d + 1);
            }
        }
        Scalar::Agg(kind, rel_plan) => {
            let k = match kind {
                AggKind::Count => "count",
                AggKind::Sum => "sum",
                AggKind::Exists => "exists (early-exit)",
            };
            p.line(d, &format!("agg {k}"));
            rel(p, rel_plan, d + 1);
        }
        Scalar::Nodes(rel_plan) => {
            p.line(d, "nodes");
            rel(p, rel_plan, d + 1);
        }
        Scalar::Const(inner) => {
            p.line(d, "const (hoisted: evaluates once)");
            scalar(p, inner, d + 1);
        }
    }
}

fn pred_line(kind: &Pred) -> Option<&'static str> {
    match kind {
        Pred::First => Some("pick first-per-group"),
        Pred::Last => Some("pick last-per-group"),
        Pred::Expr(_) => None,
    }
}

fn rel(p: &mut Printer, r: &Rel, d: usize) {
    match r {
        Rel::Context => p.line(d, "context"),
        Rel::Root => p.line(d, "root"),
        Rel::Step {
            input,
            axis,
            test,
            preds,
        } => {
            p.line(
                d,
                &format!("step {}::{}", axis_name(*axis), test_name(test)),
            );
            for pr in preds {
                match pred_line(pr) {
                    Some(label) => p.line(d + 1, label),
                    None => {
                        let Pred::Expr(s) = pr else { unreachable!() };
                        p.line(d + 1, "pred (position scope)");
                        scalar(p, s, d + 2);
                    }
                }
            }
            rel(p, input, d + 1);
        }
        Rel::AttrStep { input, name, .. } => {
            let label = match name {
                Some(n) => format!("attr-step @{n}"),
                None => "attr-step @*".into(),
            };
            p.line(d, &label);
            rel(p, input, d + 1);
        }
        Rel::Filter { input, pred } => {
            p.line(d, "filter (pushed down, no position scope)");
            scalar(p, pred, d + 1);
            rel(p, input, d + 1);
        }
        Rel::GroupFilter { input, preds } => {
            p.line(d, "group-filter (whole set per iteration)");
            for pr in preds {
                match pred_line(pr) {
                    Some(label) => p.line(d + 1, label),
                    None => {
                        let Pred::Expr(s) = pr else { unreachable!() };
                        p.line(d + 1, "pred");
                        scalar(p, s, d + 2);
                    }
                }
            }
            rel(p, input, d + 1);
        }
        Rel::NameProbe { name } => p.line(d, &format!("name-probe {name}")),
        Rel::ValueProbe {
            input,
            axis,
            test,
            pred,
        } => {
            p.line(
                d,
                &format!(
                    "value-probe {}::{}{}",
                    axis_name(*axis),
                    test_name(test),
                    value_pred_label(pred)
                ),
            );
            rel(p, input, d + 1);
        }
        Rel::MultiProbe {
            input,
            axis,
            test,
            preds,
        } => {
            let labels: String = preds.iter().map(value_pred_label).collect();
            p.line(
                d,
                &format!(
                    "multi-probe {}::{}{labels}",
                    axis_name(*axis),
                    test_name(test),
                ),
            );
            rel(p, input, d + 1);
        }
        Rel::Semijoin { input, probe, axis } => {
            p.line(d, &format!("semijoin {}", axis_name(*axis)));
            rel(p, probe, d + 1);
            rel(p, input, d + 1);
        }
        Rel::Union { left, right } => {
            p.line(d, "union");
            rel(p, left, d + 1);
            rel(p, right, d + 1);
        }
        Rel::FromValue { value } => {
            p.line(d, "from-value");
            scalar(p, value, d + 1);
        }
        Rel::Const { rel: inner } => {
            p.line(d, "const (hoisted: evaluates once)");
            rel(p, inner, d + 1);
        }
        Rel::Unsupported { message } => p.line(d, &format!("unsupported: {message}")),
    }
}

// ---------------------------------------------------------------------
// Physical
// ---------------------------------------------------------------------

/// Renders a physical plan, strategy slots included.
pub fn physical(s: &PhysScalar) -> String {
    let mut p = Printer {
        out: String::new(),
        feedback: None,
    };
    phys_scalar(&mut p, s, 0);
    p.out
}

/// Renders a physical plan with each multi-predicate step annotated by
/// its recorded estimated-vs-observed cardinality and the strategy that
/// ran (from a [`crate::PlanFeedback`] snapshot, indexed by execution
/// order — inputs execute before the steps consuming them, so a step's
/// index is the number of multi-probe operators below it).
pub fn physical_annotated(s: &PhysScalar, feedback: &[StepFeedback]) -> String {
    let mut p = Printer {
        out: String::new(),
        feedback: Some(feedback),
    };
    phys_scalar(&mut p, s, 0);
    p.out
}

/// `scalar-scan` / `probe(#i)` / `intersect(#i ∩ #j …)` rendering of a
/// recorded [`MultiStrategy`].
fn multi_strategy_label(s: &MultiStrategy) -> String {
    match s {
        MultiStrategy::Scan => "scalar-scan".into(),
        MultiStrategy::Probe(order) if order.len() == 1 => format!("probe(#{})", order[0]),
        MultiStrategy::Probe(order) => {
            let joined: Vec<String> = order.iter().map(|i| format!("#{i}")).collect();
            format!("intersect({})", joined.join(" ∩ "))
        }
    }
}

/// Multi-probe operators in the subtree under `r` — the execution-order
/// index of the operator directly above it (every input runs first).
fn count_multi_rel(r: &PhysRel) -> usize {
    match r {
        PhysRel::Context | PhysRel::Root | PhysRel::NameProbe { .. } => 0,
        PhysRel::Step { input, preds, .. } => {
            let nested: usize = preds
                .iter()
                .map(|pr| match pr {
                    PhysPred::Expr(s) => count_multi_scalar(s),
                    _ => 0,
                })
                .sum();
            count_multi_rel(input) + nested
        }
        PhysRel::GroupFilter { input, preds } => {
            let nested: usize = preds
                .iter()
                .map(|pr| match pr {
                    PhysPred::Expr(s) => count_multi_scalar(s),
                    _ => 0,
                })
                .sum();
            count_multi_rel(input) + nested
        }
        PhysRel::AttrStep { input, .. } => count_multi_rel(input),
        PhysRel::Filter { input, pred } => count_multi_rel(input) + count_multi_scalar(pred),
        PhysRel::ValueProbe { input, .. } => count_multi_rel(input),
        PhysRel::MultiProbe { input, .. } => count_multi_rel(input) + 1,
        PhysRel::Semijoin { input, probe, .. } => count_multi_rel(input) + count_multi_rel(probe),
        PhysRel::Union { left, right } => count_multi_rel(left) + count_multi_rel(right),
        PhysRel::FromValue { value } => count_multi_scalar(value),
        PhysRel::Const(inner) => count_multi_rel(inner),
        PhysRel::Unsupported { .. } => 0,
    }
}

fn count_multi_scalar(s: &PhysScalar) -> usize {
    match s {
        PhysScalar::Literal(_) | PhysScalar::Number(_) | PhysScalar::Var(_) => 0,
        PhysScalar::Or(a, b) | PhysScalar::And(a, b) => {
            count_multi_scalar(a) + count_multi_scalar(b)
        }
        PhysScalar::Compare(_, a, b) | PhysScalar::Arith(_, a, b) => {
            count_multi_scalar(a) + count_multi_scalar(b)
        }
        PhysScalar::Neg(e) | PhysScalar::Const(e) => count_multi_scalar(e),
        PhysScalar::Call(_, args) => args.iter().map(count_multi_scalar).sum(),
        PhysScalar::Count(r)
        | PhysScalar::Sum(r)
        | PhysScalar::Exists(r)
        | PhysScalar::Nodes(r) => count_multi_rel(r),
    }
}

fn phys_scalar(p: &mut Printer, s: &PhysScalar, d: usize) {
    match s {
        PhysScalar::Literal(v) => p.line(d, &format!("literal {v:?}")),
        PhysScalar::Number(n) => p.line(d, &format!("number {n}")),
        PhysScalar::Var(name) => p.line(d, &format!("var ${name}")),
        PhysScalar::Or(a, b) => {
            p.line(d, "or (short-circuit)");
            phys_scalar(p, a, d + 1);
            phys_scalar(p, b, d + 1);
        }
        PhysScalar::And(a, b) => {
            p.line(d, "and (short-circuit)");
            phys_scalar(p, a, d + 1);
            phys_scalar(p, b, d + 1);
        }
        PhysScalar::Compare(op, a, b) => {
            p.line(d, &format!("compare {op:?}"));
            phys_scalar(p, a, d + 1);
            phys_scalar(p, b, d + 1);
        }
        PhysScalar::Arith(op, a, b) => {
            p.line(d, &format!("arith {op:?}"));
            phys_scalar(p, a, d + 1);
            phys_scalar(p, b, d + 1);
        }
        PhysScalar::Neg(e) => {
            p.line(d, "neg");
            phys_scalar(p, e, d + 1);
        }
        PhysScalar::Call(name, args) => {
            p.line(d, &format!("call {name}()"));
            for a in args {
                phys_scalar(p, a, d + 1);
            }
        }
        PhysScalar::Count(r) => {
            p.line(d, "agg count");
            phys_rel(p, r, d + 1);
        }
        PhysScalar::Sum(r) => {
            p.line(d, "agg sum");
            phys_rel(p, r, d + 1);
        }
        PhysScalar::Exists(r) => {
            p.line(d, "agg exists (early-exit)");
            phys_rel(p, r, d + 1);
        }
        PhysScalar::Nodes(r) => {
            p.line(d, "nodes");
            phys_rel(p, r, d + 1);
        }
        PhysScalar::Const(inner) => {
            p.line(d, "const (hoisted: evaluates once)");
            phys_scalar(p, inner, d + 1);
        }
    }
}

fn strategy_label(s: &StepStrategy) -> String {
    match s {
        StepStrategy::Staircase => "[staircase]".into(),
        StepStrategy::NameIndex(n) => format!("[name-index({n}) ⋉ context]"),
        StepStrategy::Cost(n) => format!("[cost-chosen: staircase vs name-index({n})]"),
    }
}

fn phys_rel(p: &mut Printer, r: &PhysRel, d: usize) {
    match r {
        PhysRel::Context => p.line(d, "context"),
        PhysRel::Root => p.line(d, "root"),
        PhysRel::Step {
            input,
            axis,
            test,
            preds,
            strategy,
        } => {
            p.line(
                d,
                &format!(
                    "step {}::{} {}",
                    axis_name(*axis),
                    test_name(test),
                    strategy_label(strategy)
                ),
            );
            for pr in preds {
                match pr {
                    PhysPred::First => p.line(d + 1, "pick first-per-group"),
                    PhysPred::Last => p.line(d + 1, "pick last-per-group"),
                    PhysPred::Expr(s) => {
                        p.line(d + 1, "pred (position scope)");
                        phys_scalar(p, s, d + 2);
                    }
                }
            }
            phys_rel(p, input, d + 1);
        }
        PhysRel::AttrStep { input, name, .. } => {
            let label = match name {
                Some(n) => format!("attr-step @{n}"),
                None => "attr-step @*".into(),
            };
            p.line(d, &label);
            phys_rel(p, input, d + 1);
        }
        PhysRel::Filter { input, pred } => {
            p.line(d, "filter (pushed down, no position scope)");
            phys_scalar(p, pred, d + 1);
            phys_rel(p, input, d + 1);
        }
        PhysRel::GroupFilter { input, preds } => {
            p.line(d, "group-filter (whole set per iteration)");
            for pr in preds {
                match pr {
                    PhysPred::First => p.line(d + 1, "pick first-per-group"),
                    PhysPred::Last => p.line(d + 1, "pick last-per-group"),
                    PhysPred::Expr(s) => {
                        p.line(d + 1, "pred");
                        phys_scalar(p, s, d + 2);
                    }
                }
            }
            phys_rel(p, input, d + 1);
        }
        PhysRel::NameProbe { name } => p.line(d, &format!("name-probe {name}")),
        PhysRel::ValueProbe {
            input,
            axis,
            test,
            pred,
        } => {
            p.line(
                d,
                &format!(
                    "value-probe {}::{}{} [cost-chosen: scalar-scan vs content-index ⋉ context]",
                    axis_name(*axis),
                    test_name(test),
                    value_pred_label(pred)
                ),
            );
            phys_rel(p, input, d + 1);
        }
        PhysRel::MultiProbe {
            input,
            axis,
            test,
            preds,
        } => {
            p.line(
                d,
                &format!(
                    "multi-probe {}::{} [cost-chosen: scalar-scan vs best-probe vs intersect]",
                    axis_name(*axis),
                    test_name(test),
                ),
            );
            for (i, pred) in preds.iter().enumerate() {
                let mut label = format!("pred #{i} {}", value_pred_label(pred));
                if let Some(fb) = p.feedback {
                    let seq = count_multi_rel(input);
                    if let Some(Some(n)) = fb.get(seq).and_then(|s| s.pred_lists.get(i)) {
                        let _ = write!(label, " — postings={n}");
                    }
                }
                p.line(d + 1, &label);
            }
            if let Some(fb) = p.feedback {
                let seq = count_multi_rel(input);
                match fb.get(seq) {
                    Some(s) => p.line(
                        d + 1,
                        &format!(
                            "cardinality est≈{} obs={} via {}{}",
                            s.estimated,
                            s.observed,
                            multi_strategy_label(&s.strategy),
                            if s.diverged() { " (diverged)" } else { "" },
                        ),
                    ),
                    None => p.line(d + 1, "cardinality not yet observed"),
                }
            }
            phys_rel(p, input, d + 1);
        }
        PhysRel::Semijoin { input, probe, axis } => {
            p.line(d, &format!("semijoin {}", axis_name(*axis)));
            phys_rel(p, probe, d + 1);
            phys_rel(p, input, d + 1);
        }
        PhysRel::Union { left, right } => {
            p.line(d, "union");
            phys_rel(p, left, d + 1);
            phys_rel(p, right, d + 1);
        }
        PhysRel::FromValue { value } => {
            p.line(d, "from-value");
            phys_scalar(p, value, d + 1);
        }
        PhysRel::Const(inner) => {
            p.line(d, "const (hoisted: evaluates once)");
            phys_rel(p, inner, d + 1);
        }
        PhysRel::Unsupported { message } => p.line(d, &format!("unsupported: {message}")),
    }
}
