//! Logical query plans: a small relational algebra over `(iter, pre)`
//! relations, compiled from the XPath AST.
//!
//! The algebra has two sorts. [`Rel`] nodes produce *relations* —
//! iteration-tagged node (or attribute) sequences, the currency of the
//! loop-lifted engine — via `Step`, `Filter`, `NameProbe`, `Semijoin`,
//! `Union` and `Const` operators. [`Scalar`] nodes produce one *value*
//! per iteration: comparisons, arithmetic, function calls, and the
//! `Agg` operator (count/sum/exists over a relational subplan).
//! Predicates that need XPath's per-context-node `position()` scope
//! stay attached to their `Step` as [`Pred`] slots; the rewriter
//! ([`crate::rewrite`]) pulls provably non-positional ones out into
//! explicit `Filter` operators, fuses `//`-steps, converts
//! `count(e) > 0` into early-exit existence aggregates, replaces
//! `[1]`/`[last()]` with first/last picks, and wraps loop-invariant
//! subtrees in `Const` markers — replacing the interpreter's ad-hoc
//! hoisting with an inspectable plan property.
//!
//! Compilation ([`compile`]) is a direct syntax-directed translation;
//! all optimization lives in the rewriter, all strategy choice in the
//! physical layer ([`crate::physical`]).

use crate::ast::{ArithOp, CmpOp, Expr, PathExpr, StepTest};
use mbxq_axes::{Axis, NodeTest};
use mbxq_storage::NumRange;
use mbxq_xml::QName;

/// What a [`Rel::ValueProbe`] compares — the candidate value source,
/// relative to each candidate element of the probed step.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSource {
    /// The candidate's own string value (`[. = "lit"]`).
    SelfValue,
    /// One of the candidate's attributes (`[@a = "lit"]`).
    Attr(QName),
    /// Any child element of that name (`[child = "lit"]`, existential).
    Child(QName),
}

/// How a [`Rel::ValueProbe`] compares its source against the literal.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueCmp {
    /// String equality (`= "lit"`).
    Eq(String),
    /// Numeric interval membership (`= n`, `<`, `<=`, `>`, `>=`).
    InRange(NumRange),
}

/// A statically recognized value predicate — the argument of the
/// content-index probe operator.
#[derive(Debug, Clone, PartialEq)]
pub struct ValuePred {
    /// Where each candidate's value comes from.
    pub source: ValueSource,
    /// The comparison against the literal.
    pub cmp: ValueCmp,
}

/// Aggregates over a relational subplan (the `Agg` operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `count(e)` — group cardinality.
    Count,
    /// `sum(e)` — numeric sum over the group's string values.
    Sum,
    /// `exists(e)` — group non-emptiness, with early exit. Produced by
    /// the rewriter (XPath 1.0 has no `exists()` syntax).
    Exists,
}

/// One predicate slot of a [`Rel::Step`] / [`Rel::GroupFilter`].
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Keep each group's first row (`[1]`, `[position() = 1]`) without
    /// materializing position vectors.
    First,
    /// Keep each group's last row (`[last()]`, `[position() = last()]`).
    Last,
    /// A general predicate expression with full XPath position
    /// semantics (a numeric value selects by position).
    Expr(Scalar),
}

/// Relational operators over `(iter, pre)` relations.
#[derive(Debug, Clone, PartialEq)]
pub enum Rel {
    /// The evaluation context: the whole context set at the top level,
    /// one context node per iteration inside lifted scopes.
    Context,
    /// The document root element (loop-invariant).
    Root,
    /// One axis step. Predicates in `preds` need the per-context-node
    /// position scope (candidates are expanded into nested iterations
    /// around them); the rewriter moves every provably non-positional
    /// predicate out into a [`Rel::Filter`].
    Step {
        /// Context relation.
        input: Box<Rel>,
        /// The axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
        /// Position-scoped predicates, applied in order.
        preds: Vec<Pred>,
    },
    /// The attribute step (`@name` / `@*`), producing an attribute
    /// relation.
    AttrStep {
        /// Owner relation.
        input: Box<Rel>,
        /// Attribute name (`None` = `@*`).
        name: Option<QName>,
        /// Whether the source step carried predicates (unsupported on
        /// attribute steps; reported at execution time, matching the
        /// interpreter).
        has_preds: bool,
    },
    /// A row filter with **no** position scope — a predicate the
    /// rewriter pushed out of its step (each candidate row is its own
    /// iteration; no expansion, no position vectors, no regrouping).
    Filter {
        /// Input relation.
        input: Box<Rel>,
        /// The (non-positional) predicate.
        pred: Box<Scalar>,
    },
    /// Predicates over the *existing* iteration grouping — the
    /// `(expr)[pred]` filter-expression scope, where each iteration's
    /// whole node-set is one `position()` group.
    GroupFilter {
        /// Input relation.
        input: Box<Rel>,
        /// Whole-group predicates, applied in order.
        preds: Vec<Pred>,
    },
    /// Probe of the element-name index: every element named `name`, in
    /// document order (loop-invariant). The explicit logical form of
    /// the physical index arm; views without an index fall back to a
    /// document scan.
    NameProbe {
        /// The element name.
        name: QName,
    },
    /// Content-index probe: the elements matching `axis::test` from the
    /// context that additionally satisfy a statically recognized value
    /// predicate. Produced by the rewriter from `Filter`-over-`Step`
    /// shapes (`//item[@id = "x"]`, `//price[. > 50]`,
    /// `//person[name = "Alice"]`); executes as either a value-index
    /// probe + range semijoin or the scalar scan it replaced, chosen
    /// per execution ([`crate::physical`]).
    ValueProbe {
        /// Context relation.
        input: Box<Rel>,
        /// `Child`, `Descendant` or `DescendantOrSelf`.
        axis: Axis,
        /// The step's node test (`Name`; `AnyElement` for attribute
        /// sources).
        test: NodeTest,
        /// The recognized predicate.
        pred: ValuePred,
    },
    /// Multi-predicate content-index probe: the elements matching
    /// `axis::test` from the context that satisfy **all** of `preds`
    /// (two or more statically recognized value predicates on one
    /// step, `//person[@id = "x"][profile/age > 30]`-shaped after
    /// pushdown). Produced by the rewriter when a second recognizable
    /// predicate lands on a [`Rel::ValueProbe`]; executes as a ranked
    /// posting-list intersection + range semijoin, a single best probe
    /// with residual verification, or the scalar scan — chosen per
    /// execution from the pessimistic degree-bound estimator.
    MultiProbe {
        /// Context relation.
        input: Box<Rel>,
        /// `Child`, `Descendant` or `DescendantOrSelf`.
        axis: Axis,
        /// The step's node test (`Name`; `AnyElement` for pure
        /// attribute-source predicate sets).
        test: NodeTest,
        /// The recognized predicates (all must hold; order as written,
        /// re-ranked by the estimator at execution time).
        preds: Vec<ValuePred>,
    },
    /// Semijoin of a probe relation back to the context regions: the
    /// probe rows standing in `axis` relation to each context node.
    Semijoin {
        /// Context relation.
        input: Box<Rel>,
        /// Candidate relation (typically a [`Rel::NameProbe`]).
        probe: Box<Rel>,
        /// `Child`, `Descendant` or `DescendantOrSelf`.
        axis: Axis,
    },
    /// Node-set union (`|`), merged per iteration.
    Union {
        /// Left operand.
        left: Box<Rel>,
        /// Right operand.
        right: Box<Rel>,
    },
    /// A scalar value used as a node sequence (`$v/a`, `(expr)/a`).
    FromValue {
        /// The value-producing subplan.
        value: Box<Scalar>,
    },
    /// Loop-invariant subplan: evaluate once, broadcast to every
    /// iteration (the `Const` operator; inserted by the rewriter).
    Const {
        /// The hoisted subplan.
        rel: Box<Rel>,
    },
    /// A construct the plan layer cannot serve (e.g. a reverse axis
    /// from the virtual document node); fails at execution time with
    /// the interpreter's message.
    Unsupported {
        /// The error text.
        message: String,
    },
}

/// Scalar (one value per iteration) expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// Variable reference (resolved against the bindings; always
    /// loop-invariant).
    Var(String),
    /// `or` with per-iteration short-circuit.
    Or(Box<Scalar>, Box<Scalar>),
    /// `and` with per-iteration short-circuit.
    And(Box<Scalar>, Box<Scalar>),
    /// Comparison with XPath 1.0 set semantics.
    Compare(CmpOp, Box<Scalar>, Box<Scalar>),
    /// Arithmetic.
    Arith(ArithOp, Box<Scalar>, Box<Scalar>),
    /// Unary minus.
    Neg(Box<Scalar>),
    /// Core-library function call (`position()`/`last()` included).
    Call(String, Vec<Scalar>),
    /// The `Agg` operator over a relational subplan.
    Agg(AggKind, Box<Rel>),
    /// A relational subplan used as a value (node-set or attribute-set).
    Nodes(Box<Rel>),
    /// Loop-invariant subtree: evaluate once, broadcast (the scalar
    /// `Const` marker; inserted by the rewriter).
    Const(Box<Scalar>),
}

/// Compiles an AST expression into the logical algebra (no rewrites).
pub fn compile(expr: &Expr) -> Scalar {
    match expr {
        Expr::Or(a, b) => Scalar::Or(Box::new(compile(a)), Box::new(compile(b))),
        Expr::And(a, b) => Scalar::And(Box::new(compile(a)), Box::new(compile(b))),
        Expr::Compare(op, a, b) => Scalar::Compare(*op, Box::new(compile(a)), Box::new(compile(b))),
        Expr::Arith(op, a, b) => Scalar::Arith(*op, Box::new(compile(a)), Box::new(compile(b))),
        Expr::Neg(e) => Scalar::Neg(Box::new(compile(e))),
        Expr::Literal(s) => Scalar::Literal(s.clone()),
        Expr::Number(n) => Scalar::Number(*n),
        Expr::Var(name) => Scalar::Var(name.clone()),
        Expr::Union(a, b) => Scalar::Nodes(Box::new(Rel::Union {
            left: Box::new(as_rel(compile(a))),
            right: Box::new(as_rel(compile(b))),
        })),
        Expr::Call(name, args) => {
            let compiled: Vec<Scalar> = args.iter().map(compile).collect();
            // `count`/`sum` over a relational argument become explicit
            // `Agg` operators (the rewriter then turns boolean-context
            // `count(e) > 0` into existence aggregates).
            if compiled.len() == 1 && matches!(name.as_str(), "count" | "sum") {
                if let Scalar::Nodes(_) = &compiled[0] {
                    let Some(Scalar::Nodes(rel)) = compiled.into_iter().next() else {
                        unreachable!("just matched");
                    };
                    let kind = if name == "count" {
                        AggKind::Count
                    } else {
                        AggKind::Sum
                    };
                    return Scalar::Agg(kind, rel);
                }
            }
            Scalar::Call(name.clone(), compiled)
        }
        Expr::Path(p) => Scalar::Nodes(Box::new(compile_path(p))),
    }
}

/// A scalar used where a relation is needed: relational subplans pass
/// through, anything else goes through a runtime-checked [`Rel::FromValue`].
fn as_rel(s: Scalar) -> Rel {
    match s {
        Scalar::Nodes(rel) => *rel,
        other => Rel::FromValue {
            value: Box::new(other),
        },
    }
}

fn compile_path(p: &PathExpr) -> Rel {
    let mut remaining = p.steps.as_slice();
    let mut rel = if let Some(start) = &p.start {
        Rel::FromValue {
            value: Box::new(compile(start)),
        }
    } else if p.absolute {
        // Absolute paths start at the (virtual) document node, whose
        // only tree child is the root element — the first step is
        // compiled against that approximation (see the interpreter's
        // `eval_step_from_document`).
        match remaining.split_first() {
            None => Rel::Root,
            Some((first, rest)) => {
                remaining = rest;
                match &first.test {
                    StepTest::Tree(Axis::Child | Axis::SelfAxis, test) => Rel::Step {
                        input: Box::new(Rel::Root),
                        axis: Axis::SelfAxis,
                        test: test.clone(),
                        preds: first
                            .predicates
                            .iter()
                            .map(|e| Pred::Expr(compile(e)))
                            .collect(),
                    },
                    StepTest::Tree(Axis::Descendant | Axis::DescendantOrSelf, test) => Rel::Step {
                        input: Box::new(Rel::Root),
                        axis: Axis::DescendantOrSelf,
                        test: test.clone(),
                        preds: first
                            .predicates
                            .iter()
                            .map(|e| Pred::Expr(compile(e)))
                            .collect(),
                    },
                    StepTest::Tree(axis, _) => Rel::Unsupported {
                        message: format!("axis {axis:?} cannot start from the document node"),
                    },
                    StepTest::Attribute(_) => Rel::Unsupported {
                        message: "the document node has no attributes".into(),
                    },
                }
            }
        }
    } else {
        Rel::Context
    };
    if !p.start_predicates.is_empty() {
        rel = Rel::GroupFilter {
            input: Box::new(rel),
            preds: p
                .start_predicates
                .iter()
                .map(|e| Pred::Expr(compile(e)))
                .collect(),
        };
    }
    for step in remaining {
        rel = match &step.test {
            StepTest::Tree(axis, test) => Rel::Step {
                input: Box::new(rel),
                axis: *axis,
                test: test.clone(),
                preds: step
                    .predicates
                    .iter()
                    .map(|e| Pred::Expr(compile(e)))
                    .collect(),
            },
            StepTest::Attribute(name) => Rel::AttrStep {
                input: Box::new(rel),
                name: name.clone(),
                has_preds: !step.predicates.is_empty(),
            },
        };
    }
    rel
}

// ---------------------------------------------------------------------
// Static analysis shared by the rewriter and the physical planner
// ---------------------------------------------------------------------

/// Conservative static type of a scalar, used to decide which
/// predicates are provably non-positional (a predicate whose value
/// could be a *number* selects by position and must keep the position
/// scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarType {
    /// Always boolean.
    Bool,
    /// Always a number.
    Num,
    /// Always a string.
    Str,
    /// Always a node/attribute set.
    Set,
    /// Statically unknown (variables, unknown functions).
    Unknown,
}

/// Infers the conservative [`ScalarType`] of `s`.
pub fn scalar_type(s: &Scalar) -> ScalarType {
    match s {
        Scalar::Literal(_) => ScalarType::Str,
        Scalar::Number(_) => ScalarType::Num,
        Scalar::Var(_) => ScalarType::Unknown,
        Scalar::Or(..) | Scalar::And(..) | Scalar::Compare(..) => ScalarType::Bool,
        Scalar::Arith(..) | Scalar::Neg(_) => ScalarType::Num,
        Scalar::Agg(AggKind::Exists, _) => ScalarType::Bool,
        Scalar::Agg(_, _) => ScalarType::Num,
        Scalar::Nodes(_) => ScalarType::Set,
        Scalar::Const(inner) => scalar_type(inner),
        Scalar::Call(name, _) => match name.as_str() {
            "boolean" | "not" | "true" | "false" | "contains" | "starts-with" => ScalarType::Bool,
            "count" | "sum" | "number" | "string-length" | "floor" | "ceiling" | "round"
            | "position" | "last" => ScalarType::Num,
            "string" | "normalize-space" | "concat" | "substring" | "substring-before"
            | "substring-after" | "translate" | "name" | "local-name" => ScalarType::Str,
            _ => ScalarType::Unknown,
        },
    }
}

/// Whether a predicate expression is provably non-positional: it never
/// yields a number (the position-selecting case) and never reads
/// `position()`/`last()`.
pub fn pred_is_non_positional(s: &Scalar) -> bool {
    matches!(
        scalar_type(s),
        ScalarType::Bool | ScalarType::Str | ScalarType::Set
    ) && !reads_position(s)
}

/// Whether `s` contains a `position()`/`last()` call *in the current
/// predicate scope* (nested step predicates re-bind the scope, so their
/// bodies do not count; relational subplans are scanned only through
/// scalar positions that stay in scope — which there are none of, so
/// recursion stops at `Rel` boundaries).
fn reads_position(s: &Scalar) -> bool {
    match s {
        Scalar::Literal(_) | Scalar::Number(_) | Scalar::Var(_) => false,
        Scalar::Or(a, b) | Scalar::And(a, b) => reads_position(a) || reads_position(b),
        Scalar::Compare(_, a, b) | Scalar::Arith(_, a, b) => reads_position(a) || reads_position(b),
        Scalar::Neg(e) | Scalar::Const(e) => reads_position(e),
        Scalar::Call(name, args) => {
            matches!(name.as_str(), "position" | "last") || args.iter().any(reads_position)
        }
        // A relation's internal predicates run in their own scopes.
        Scalar::Agg(_, _) | Scalar::Nodes(_) => false,
    }
}

/// Whether a relational plan is loop-invariant: it never reads the
/// surrounding iteration domain. Predicates are insulated — they
/// evaluate relative to the step's own candidates — so invariance is a
/// property of the context chain alone.
pub fn rel_invariant(r: &Rel) -> bool {
    match r {
        Rel::Context => false,
        Rel::Root | Rel::NameProbe { .. } | Rel::Unsupported { .. } | Rel::Const { .. } => true,
        Rel::Step { input, .. }
        | Rel::AttrStep { input, .. }
        | Rel::Filter { input, .. }
        | Rel::GroupFilter { input, .. }
        | Rel::ValueProbe { input, .. }
        | Rel::MultiProbe { input, .. } => rel_invariant(input),
        Rel::Semijoin { input, probe, .. } => rel_invariant(input) && rel_invariant(probe),
        Rel::Union { left, right } => rel_invariant(left) && rel_invariant(right),
        Rel::FromValue { value } => scalar_invariant(value),
    }
}

/// Whether a scalar is loop-invariant (evaluating it once and
/// broadcasting is observably identical).
pub fn scalar_invariant(s: &Scalar) -> bool {
    match s {
        Scalar::Literal(_) | Scalar::Number(_) | Scalar::Var(_) | Scalar::Const(_) => true,
        Scalar::Or(a, b) | Scalar::And(a, b) => scalar_invariant(a) && scalar_invariant(b),
        Scalar::Compare(_, a, b) | Scalar::Arith(_, a, b) => {
            scalar_invariant(a) && scalar_invariant(b)
        }
        Scalar::Neg(e) => scalar_invariant(e),
        Scalar::Call(name, args) => {
            if matches!(name.as_str(), "position" | "last") {
                return false;
            }
            // Zero-argument context functions read the context node.
            if args.is_empty()
                && matches!(
                    name.as_str(),
                    "string"
                        | "number"
                        | "name"
                        | "local-name"
                        | "normalize-space"
                        | "string-length"
                )
            {
                return false;
            }
            args.iter().all(scalar_invariant)
        }
        Scalar::Agg(_, rel) | Scalar::Nodes(rel) => rel_invariant(rel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;

    fn plan(src: &str) -> Scalar {
        let tokens = lexer::lex(src).unwrap();
        compile(&parser::parse(&tokens, src).unwrap())
    }

    #[test]
    fn paths_compile_to_step_chains() {
        let Scalar::Nodes(rel) = plan("/site/people/person") else {
            panic!("path must compile to a relation");
        };
        // person <- people <- (self-from-root site) <- Root.
        let Rel::Step { input, axis, .. } = *rel else {
            panic!()
        };
        assert_eq!(axis, Axis::Child);
        let Rel::Step { input, axis, .. } = *input else {
            panic!()
        };
        assert_eq!(axis, Axis::Child);
        let Rel::Step { input, axis, .. } = *input else {
            panic!()
        };
        assert_eq!(axis, Axis::SelfAxis, "first absolute step binds the root");
        assert_eq!(*input, Rel::Root);
    }

    #[test]
    fn count_compiles_to_agg() {
        match plan("count(//item)") {
            Scalar::Agg(AggKind::Count, _) => {}
            other => panic!("expected Agg, got {other:?}"),
        }
    }

    #[test]
    fn predicates_stay_attached_at_compile_time() {
        let Scalar::Nodes(rel) = plan("//person[age]") else {
            panic!()
        };
        let Rel::Step { preds, .. } = *rel else {
            panic!()
        };
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn types_are_inferred_conservatively() {
        assert_eq!(scalar_type(&plan("1 + 2")), ScalarType::Num);
        assert_eq!(scalar_type(&plan("\"x\"")), ScalarType::Str);
        assert_eq!(scalar_type(&plan("a = b")), ScalarType::Bool);
        assert_eq!(scalar_type(&plan("a | b")), ScalarType::Set);
        assert_eq!(scalar_type(&plan("$v")), ScalarType::Unknown);
    }

    #[test]
    fn positional_predicates_are_detected() {
        assert!(pred_is_non_positional(&plan("@id = \"x\"")));
        assert!(pred_is_non_positional(&plan("contains(name, \"a\")")));
        assert!(!pred_is_non_positional(&plan("2")));
        assert!(
            !pred_is_non_positional(&plan("position() = 2")) || {
                // position()=2 is boolean-typed but reads the scope.
                false
            }
        );
        assert!(!pred_is_non_positional(&plan("count(x)")));
        assert!(!pred_is_non_positional(&plan("$v")));
    }

    #[test]
    fn invariance_follows_the_context_chain() {
        let abs = plan("//item");
        let Scalar::Nodes(rel) = &abs else { panic!() };
        assert!(rel_invariant(rel));
        let relpath = plan("item/name");
        let Scalar::Nodes(rel) = &relpath else {
            panic!()
        };
        assert!(!rel_invariant(rel));
        assert!(scalar_invariant(&plan("count(//item) > 2")));
        assert!(scalar_invariant(&plan("$v")));
        assert!(!scalar_invariant(&plan("string()")));
        assert!(!scalar_invariant(&plan("position()")));
    }
}
