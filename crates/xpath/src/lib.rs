//! `mbxq-xpath` — an XPath 1.0-subset engine over the pre plane.
//!
//! XUpdate addresses its targets with XPath expressions (`select="expr"`,
//! §2.1), and the paper's whole query story is "XPath axes … expressed as
//! simple comparisons on the pre and post columns" (§2.2). This crate
//! provides the language layer as an **algebraic compiler pipeline**:
//!
//! ```text
//!   source ──lex/parse──▶ AST ──compile──▶ logical plan
//!          ──rewrite──▶ rewritten plan ──lower──▶ physical plan
//!          ──execute──▶ value
//! ```
//!
//! * [`plan`] — the logical algebra over `(iter, pre)` relations
//!   (`Step`, `Filter`, `NameProbe`, `Semijoin`, `Union`, `Agg`,
//!   `Const`), compiled from the AST.
//! * [`rewrite`] — the rule-based rewriter: `//`-step fusion, predicate
//!   pushdown, `count(e) > 0` → early-exit existence, `[1]`/`[last()]`
//!   picks, lowering of literal comparison predicates to content-index
//!   `ValueProbe` operators, and explicit loop-invariant hoisting.
//! * [`physical`] — the lowered plan whose axis steps carry a strategy
//!   slot: staircase join + name filter, element-name-index probe +
//!   range semijoin, or a cost-based choice made per execution from
//!   live statistics; value-probe steps choose the same way between
//!   the scalar scan and the content index ([`ValueChoice`]).
//! * `eval` (internal) — the loop-lifted executor: each operator runs
//!   once per invocation over a whole `(iter, pre)` relation, never per
//!   context node, so every plan enjoys the set-at-a-time evaluation
//!   the paper credits for its interactive XMark times (§1).
//!
//! [`XPath::parse`] runs the full pipeline; [`XPath::eval`] and friends
//! execute the physical plan. The original recursive interpreter is
//! retained as [`XPath::eval_interpreted`] — the independent reference
//! arm the plan-oracle property tests compare against.
//!
//! Supported: absolute/relative location paths, all axes of
//! [`mbxq_axes::Axis`] (by name) plus the abbreviations `//`, `.`, `..`
//! and `@`, name and kind tests, predicates (including positional ones),
//! variable references (`$name`, resolved against [`Bindings`]), the
//! union operator, arithmetic/comparison/boolean operators with XPath
//! 1.0 node-set comparison semantics, and a core function library
//! (`position`, `last`, `count`, `string`, `number`, `boolean`, `not`,
//! `true`, `false`, `contains`, `starts-with`, `string-length`,
//! `normalize-space`, `name`, `local-name`, `concat`, `substring`,
//! `substring-before`, `substring-after`, `translate`, `floor`,
//! `ceiling`, `round`, `sum`).
//!
//! Out of scope (not needed by the paper's workloads): namespace axes,
//! `id()`/`key()`, and the number-formatting corners of the spec.

mod ast;
mod eval;
pub mod explain;
mod interp;
mod lexer;
pub mod par;
mod parser;
pub mod physical;
pub mod plan;
pub mod rewrite;

pub use ast::{Expr, PathExpr, Step, StepTest};
pub use eval::Value;
pub use mbxq_axes::{simd_compiled, simd_width, KernelArm};
pub use par::{ParChoice, WorkerPool};

use mbxq_storage::TreeView;
use std::cell::Cell;
use std::collections::HashMap;

/// A parsed, planned, reusable XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub struct XPath {
    expr: ast::Expr,
    source: String,
    logical: plan::Scalar,
    physical: physical::PhysScalar,
}

/// Errors from parsing or evaluating an XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathError {
    /// Lexical or syntactic problem, with byte offset.
    Parse {
        /// Description of the problem.
        message: String,
        /// Byte offset in the source.
        offset: usize,
    },
    /// Type or cardinality problem during evaluation.
    Eval {
        /// Description of the problem.
        message: String,
    },
}

impl core::fmt::Display for XPathError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            XPathError::Parse { message, offset } => {
                write!(f, "XPath parse error at offset {offset}: {message}")
            }
            XPathError::Eval { message } => write!(f, "XPath evaluation error: {message}"),
        }
    }
}

impl std::error::Error for XPathError {}

/// Result alias for XPath operations.
pub type Result<T> = std::result::Result<T, XPathError>;

/// Variable bindings for `$name` references.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    map: HashMap<String, Value>,
}

impl Bindings {
    /// An empty binding set.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Binds `$name` to `value` (replacing an earlier binding).
    pub fn set(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        self.map.insert(name.into(), value);
        self
    }

    /// The value bound to `$name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.map.get(name)
    }

    /// Iterates over all `(name, value)` bindings in arbitrary order —
    /// how the network layer serializes a binding set onto the wire.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Which arm cost-annotated axis steps execute — [`AxisChoice::Auto`]
/// follows the cost model; the forced arms exist for the `plan_cost`
/// ablation benchmark and the oracle tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AxisChoice {
    /// Per-step cost decision from live statistics (the default).
    #[default]
    Auto,
    /// Always the staircase join (the interpreter's only strategy).
    ForceStaircase,
    /// Always the element-name-index probe + semijoin (falls back to
    /// the staircase on views without an index).
    ForceIndex,
}

/// Which arm value-probe steps execute — the value-predicate analogue
/// of [`AxisChoice`]. [`ValueChoice::Auto`] follows the cost model; the
/// forced arms exist for the `value_probe` ablation benchmark and the
/// oracle tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ValueChoice {
    /// Per-step cost decision from live statistics (the default).
    #[default]
    Auto,
    /// Always the scalar scan (step + per-candidate evaluation).
    ForceScan,
    /// Always the content-index probe + range semijoin (falls back to
    /// the scan on views without a content index).
    ForceProbe,
}

/// Which arm multi-predicate steps ([`physical::PhysRel::MultiProbe`])
/// execute. [`MultiChoice::Auto`] runs the join-order search: rank the
/// predicates by their pessimistic degree-bound cardinality estimate,
/// grow the intersection prefix greedily while materializing the next
/// posting list is cheaper than verifying it per candidate, and compare
/// the result against the scalar scan. The forced arms exist for the
/// `multi_pred` ablation benchmark and the oracle tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MultiChoice {
    /// Per-step cost decision from live statistics (the default).
    #[default]
    Auto,
    /// Always the scalar scan (step + per-candidate evaluation).
    ForceScan,
    /// Always probe the single cheapest predicate and verify the rest
    /// per candidate (no intersection).
    ForceBestProbe,
    /// Always intersect every predicate's posting list (ranked order).
    ForceIntersect,
}

/// When a cached plan's multi-predicate strategy is re-derived from
/// live statistics — the adaptive-replan policy threaded through
/// [`EvalOptions::replan`] and recorded in a [`PlanFeedback`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplanMode {
    /// Reuse the recorded strategy while its estimated cardinality
    /// tracked what was observed; re-derive (one replan) when the two
    /// diverge beyond the threshold (the default).
    #[default]
    Default,
    /// Re-derive the strategy on every execution, discarding whatever
    /// the feedback recorded.
    Force,
    /// Always reuse the recorded strategy, however wrong its estimate
    /// turned out to be.
    Skip,
}

/// The strategy a multi-predicate step settled on — recorded per step
/// in a [`PlanFeedback`] so later executions can reuse or revisit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiStrategy {
    /// Scalar scan: one axis step, every predicate verified per
    /// candidate.
    Scan,
    /// Probe the listed predicates (indices into the step's predicate
    /// vector, cheapest first), intersect their posting lists, verify
    /// the remaining predicates per candidate. A one-element list is
    /// the single-best-probe arm.
    Probe(Vec<usize>),
}

/// Estimated-vs-observed record of one multi-predicate step execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StepFeedback {
    /// The pessimistic cardinality bound the estimator chose the
    /// strategy under (candidate rows, before the context semijoin).
    pub estimated: u64,
    /// Candidate rows actually produced.
    pub observed: u64,
    /// The strategy that ran.
    pub strategy: MultiStrategy,
    /// Observed posting-list length per predicate — `Some` only for
    /// lists the execution materialized. Replans substitute these for
    /// the statistics-derived bounds, so a wrong estimate is corrected
    /// from evidence rather than re-guessed.
    pub pred_lists: Vec<Option<u64>>,
}

impl StepFeedback {
    /// Whether the observation diverged from the estimate far enough
    /// to trigger a replan under [`ReplanMode::Default`]: a 4x ratio
    /// with at least 32 rows of absolute difference (tiny steps never
    /// replan — any strategy is cheap on them).
    pub fn diverged(&self) -> bool {
        let hi = self.estimated.max(self.observed);
        let lo = self.estimated.min(self.observed);
        hi - lo > 32 && hi > lo.saturating_mul(4)
    }
}

/// Per-plan feedback store: one [`StepFeedback`] per multi-predicate
/// step, in execution order. A plan cache attaches one of these to each
/// cached plan ([`EvalOptions::feedback`]); the executor reads it to
/// reuse strategies and writes back what it observed. Mutex-held so the
/// cache can share one instance across sessions.
#[derive(Debug, Default)]
pub struct PlanFeedback {
    steps: std::sync::Mutex<Vec<StepFeedback>>,
}

impl PlanFeedback {
    /// An empty feedback store.
    pub fn new() -> PlanFeedback {
        PlanFeedback::default()
    }

    /// The recorded feedback for the `idx`-th multi-predicate step.
    pub fn step(&self, idx: usize) -> Option<StepFeedback> {
        self.steps.lock().unwrap().get(idx).cloned()
    }

    /// Records (or overwrites) the `idx`-th step's feedback.
    pub fn record(&self, idx: usize, fb: StepFeedback) {
        let mut steps = self.steps.lock().unwrap();
        if steps.len() <= idx {
            steps.resize(
                idx + 1,
                StepFeedback {
                    estimated: 0,
                    observed: 0,
                    strategy: MultiStrategy::Scan,
                    pred_lists: Vec::new(),
                },
            );
        }
        steps[idx] = fb;
    }

    /// Snapshot of every recorded step, in execution order.
    pub fn snapshot(&self) -> Vec<StepFeedback> {
        self.steps.lock().unwrap().clone()
    }

    /// Whether any recorded step diverged beyond the replan threshold.
    pub fn any_diverged(&self) -> bool {
        self.steps
            .lock()
            .unwrap()
            .iter()
            .any(StepFeedback::diverged)
    }
}

/// Which chunk-kernel arm scan operators run —
/// [`KernelChoice::Auto`] picks the vectorized arm whenever this build
/// compiled real vector instructions ([`simd_compiled`]); the forced
/// arms exist for the kernel-equivalence oracle and the `par_scaling`
/// micro-bench grid. Both arms are always available: without the
/// `simd` feature the vectorized arm is a hand-unrolled scalar twin
/// with identical results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KernelChoice {
    /// [`KernelArm::auto`] (the default).
    #[default]
    Auto,
    /// Always the plain scalar chunk loops.
    ForceScalar,
    /// Always the vectorized ([`KernelArm::Simd`]) chunk loops.
    ForceSimd,
}

impl KernelChoice {
    /// The concrete arm this choice resolves to.
    pub fn arm(self) -> KernelArm {
        match self {
            KernelChoice::Auto => KernelArm::auto(),
            KernelChoice::ForceScalar => KernelArm::Scalar,
            KernelChoice::ForceSimd => KernelArm::Simd,
        }
    }
}

/// Per-evaluation counters of the strategy decisions actually taken
/// (shared-cell based so one immutable `EvalOptions` can thread them
/// through the executor).
#[derive(Debug, Default)]
pub struct EvalStats {
    /// Axis steps served by the element-name index.
    pub index_steps: Cell<u64>,
    /// Axis steps served by the staircase join.
    pub staircase_steps: Cell<u64>,
    /// Value-predicate steps served by the content index.
    pub value_probe_steps: Cell<u64>,
    /// Value-predicate steps served by the scalar scan.
    pub value_scan_steps: Cell<u64>,
    /// Morsels executed on the worker pool.
    pub morsels: Cell<u64>,
    /// Morsels a worker stole from a sibling's queue.
    pub steals: Cell<u64>,
    /// Physical operators that actually ran morsel-parallel.
    pub par_steps: Cell<u64>,
    /// Filter/GroupFilter predicates whose row evaluation fanned out
    /// across the worker pool.
    pub pred_par_steps: Cell<u64>,
    /// Scan operators that ran on the vectorized kernel arm.
    pub simd_steps: Cell<u64>,
    /// Multi-predicate steps executed (any strategy).
    pub multi_probe_steps: Cell<u64>,
    /// Candidate rows surviving posting-list intersections.
    pub intersect_rows: Cell<u64>,
    /// Multi-predicate strategies re-derived after their recorded
    /// estimate diverged from observation (or under
    /// [`ReplanMode::Force`]).
    pub replans: Cell<u64>,
}

impl EvalStats {
    /// Folds another counter set into this one. Cross-document fan-out
    /// (a catalog querying many stores) evaluates each document with a
    /// private `EvalStats` — `Cell` counters are not `Sync`, so one set
    /// cannot be shared across worker threads — and merges them into
    /// the caller's set afterwards.
    pub fn absorb(&self, other: &EvalStats) {
        self.index_steps
            .set(self.index_steps.get() + other.index_steps.get());
        self.staircase_steps
            .set(self.staircase_steps.get() + other.staircase_steps.get());
        self.value_probe_steps
            .set(self.value_probe_steps.get() + other.value_probe_steps.get());
        self.value_scan_steps
            .set(self.value_scan_steps.get() + other.value_scan_steps.get());
        self.morsels.set(self.morsels.get() + other.morsels.get());
        self.steals.set(self.steals.get() + other.steals.get());
        self.par_steps
            .set(self.par_steps.get() + other.par_steps.get());
        self.pred_par_steps
            .set(self.pred_par_steps.get() + other.pred_par_steps.get());
        self.simd_steps
            .set(self.simd_steps.get() + other.simd_steps.get());
        self.multi_probe_steps
            .set(self.multi_probe_steps.get() + other.multi_probe_steps.get());
        self.intersect_rows
            .set(self.intersect_rows.get() + other.intersect_rows.get());
        self.replans.set(self.replans.get() + other.replans.get());
    }
}

/// Evaluation-time options, assembled builder-style:
///
/// ```ignore
/// let opts = EvalOptions::new().axis(AxisChoice::ForceIndex).stats(&stats);
/// ```
///
/// Every knob defaults to the production setting (`Auto` strategies, no
/// bindings, no counters, sequential execution), so call sites only name
/// the knobs they change.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions<'a> {
    pub(crate) bindings: Option<&'a Bindings>,
    pub(crate) axis: AxisChoice,
    pub(crate) value: ValueChoice,
    pub(crate) stats: Option<&'a EvalStats>,
    pub(crate) threads: usize,
    pub(crate) pool: Option<&'a par::WorkerPool>,
    pub(crate) par: ParChoice,
    pub(crate) morsel_rows: usize,
    pub(crate) kernel: KernelChoice,
    pub(crate) multi: MultiChoice,
    pub(crate) replan: ReplanMode,
    pub(crate) feedback: Option<&'a PlanFeedback>,
}

impl<'a> EvalOptions<'a> {
    /// All defaults — identical to [`EvalOptions::default`].
    pub fn new() -> EvalOptions<'a> {
        EvalOptions::default()
    }

    /// Variable bindings for `$name` references.
    pub fn bindings(mut self, bindings: &'a Bindings) -> Self {
        self.bindings = Some(bindings);
        self
    }

    /// Axis-strategy override.
    pub fn axis(mut self, axis: AxisChoice) -> Self {
        self.axis = axis;
        self
    }

    /// Value-predicate strategy override.
    pub fn value(mut self, value: ValueChoice) -> Self {
        self.value = value;
        self
    }

    /// Decision counters to fill during evaluation.
    pub fn stats(mut self, stats: &'a EvalStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Caps how many pool threads this evaluation may occupy
    /// (`0` = all of the pool's threads, the default). Without a
    /// [`EvalOptions::pool`] the evaluation is sequential regardless.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker pool parallel operators run on. Queries through
    /// `Store::query_opts` get the store's shared pool injected
    /// automatically; standalone evaluations pass one explicitly.
    pub fn pool(mut self, pool: &'a par::WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Sets the pool only if none is set yet — how a `Store` injects
    /// its shared pool without overriding an explicit caller choice.
    pub fn or_pool(mut self, pool: &'a par::WorkerPool) -> Self {
        if self.pool.is_none() {
            self.pool = Some(pool);
        }
        self
    }

    /// Parallelism policy (auto / forced-sequential / forced-parallel).
    pub fn par(mut self, par: ParChoice) -> Self {
        self.par = par;
        self
    }

    /// Forces a morsel-size target of roughly `rows` relation rows
    /// (`0` = auto). Tests force tiny morsels to stress boundaries.
    pub fn morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows;
        self
    }

    /// Chunk-kernel arm override (auto / forced-scalar / forced-simd).
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Multi-predicate strategy override (auto / forced-scan /
    /// forced-best-probe / forced-intersect).
    pub fn multi(mut self, multi: MultiChoice) -> Self {
        self.multi = multi;
        self
    }

    /// Replan policy for cached multi-predicate strategies. Only
    /// meaningful with a [`EvalOptions::feedback`] store attached.
    pub fn replan(mut self, replan: ReplanMode) -> Self {
        self.replan = replan;
        self
    }

    /// Attaches the plan's feedback store: recorded strategies are
    /// reused or replanned per [`EvalOptions::replan`], and this
    /// execution's estimated/observed cardinalities are written back.
    pub fn feedback(mut self, feedback: &'a PlanFeedback) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Sets the feedback store only if none is set yet — how a plan
    /// cache attaches its per-entry store without overriding an
    /// explicit caller choice.
    pub fn or_feedback(mut self, feedback: &'a PlanFeedback) -> Self {
        if self.feedback.is_none() {
            self.feedback = Some(feedback);
        }
        self
    }

    /// The feedback store set on these options, if any.
    pub fn feedback_ref(&self) -> Option<&'a PlanFeedback> {
        self.feedback
    }

    /// The decision-counter sink set on these options, if any. Fan-out
    /// layers (the catalog's cross-document queries) read it to know
    /// where per-document counters should be folded: each document
    /// evaluates with a private [`EvalStats`] (the cells are not
    /// `Sync`), absorbed into this sink afterwards.
    pub fn stats_ref(&self) -> Option<&'a EvalStats> {
        self.stats
    }

    /// The variable bindings set on these options, if any.
    pub fn bindings_ref(&self) -> Option<&'a Bindings> {
        self.bindings
    }

    /// The thread-shareable subset of these options. `EvalOptions`
    /// itself is never `Sync` — it may carry an [`EvalOptions::stats`]
    /// sink whose `Cell` counters are not — so a parallel fan-out copies
    /// the caller's options into one [`SharedOptions`], shares *that*
    /// across its workers, and has each worker reattach a private sink
    /// with [`SharedOptions::with_stats`].
    pub fn shared(&self) -> SharedOptions<'a> {
        SharedOptions {
            bindings: self.bindings,
            axis: self.axis,
            value: self.value,
            threads: self.threads,
            pool: self.pool,
            par: self.par,
            morsel_rows: self.morsel_rows,
            kernel: self.kernel,
            multi: self.multi,
            replan: self.replan,
            feedback: self.feedback,
        }
    }
}

/// Everything in an [`EvalOptions`] except the `EvalStats` sink — the
/// subset that is `Sync` and can therefore be captured by a fan-out
/// closure running on many worker threads at once. Obtained via
/// [`EvalOptions::shared`]; turned back into full options (with a
/// worker-private sink) via [`SharedOptions::with_stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedOptions<'a> {
    bindings: Option<&'a Bindings>,
    axis: AxisChoice,
    value: ValueChoice,
    threads: usize,
    pool: Option<&'a par::WorkerPool>,
    par: ParChoice,
    morsel_rows: usize,
    kernel: KernelChoice,
    multi: MultiChoice,
    replan: ReplanMode,
    feedback: Option<&'a PlanFeedback>,
}

impl<'a> SharedOptions<'a> {
    /// Full [`EvalOptions`] with `stats` as the decision-counter sink —
    /// typically a worker-private [`EvalStats`] folded into the caller's
    /// sink (see [`EvalStats::absorb`]) after the parallel section.
    pub fn with_stats<'b>(&self, stats: &'b EvalStats) -> EvalOptions<'b>
    where
        'a: 'b,
    {
        EvalOptions {
            bindings: self.bindings,
            axis: self.axis,
            value: self.value,
            stats: Some(stats),
            threads: self.threads,
            pool: self.pool,
            par: self.par,
            morsel_rows: self.morsel_rows,
            kernel: self.kernel,
            multi: self.multi,
            replan: self.replan,
            feedback: self.feedback,
        }
    }
}

impl XPath {
    /// Parses an expression and runs the whole plan pipeline
    /// (compile → rewrite → lower).
    pub fn parse(source: &str) -> Result<XPath> {
        let tokens = lexer::lex(source)?;
        let expr = parser::parse(&tokens, source)?;
        let logical = rewrite::rewrite(plan::compile(&expr));
        let physical = physical::lower(&logical);
        Ok(XPath {
            expr,
            source: source.to_string(),
            logical,
            physical,
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The rewritten logical plan.
    pub fn logical_plan(&self) -> &plan::Scalar {
        &self.logical
    }

    /// The physical plan.
    pub fn physical_plan(&self) -> &physical::PhysScalar {
        &self.physical
    }

    /// Renders the rewritten logical plan.
    pub fn explain(&self) -> String {
        explain::logical(&self.logical)
    }

    /// Renders the physical plan with its strategy slots.
    pub fn explain_physical(&self) -> String {
        explain::physical(&self.physical)
    }

    /// Renders the physical plan with every multi-predicate step
    /// annotated from a [`PlanFeedback`] snapshot: per-predicate
    /// posting-list sizes, the strategy that ran, and the recorded
    /// estimated-vs-observed candidate cardinality.
    pub fn explain_physical_annotated(&self, feedback: &[StepFeedback]) -> String {
        explain::physical_annotated(&self.physical, feedback)
    }

    /// Evaluates the compiled plan with `context` as the context node
    /// set (sorted pre ranks; for absolute paths the document root is
    /// used regardless).
    pub fn eval<V: TreeView + ?Sized>(&self, view: &V, context: &[u64]) -> Result<Value> {
        self.eval_opts(view, context, &EvalOptions::default())
    }

    /// [`XPath::eval`] with variable bindings.
    pub fn eval_with<V: TreeView + ?Sized>(
        &self,
        view: &V,
        context: &[u64],
        bindings: &Bindings,
    ) -> Result<Value> {
        self.eval_opts(view, context, &EvalOptions::new().bindings(bindings))
    }

    /// [`XPath::eval`] with full evaluation options (bindings, axis
    /// strategy override, decision counters).
    pub fn eval_opts<V: TreeView + ?Sized>(
        &self,
        view: &V,
        context: &[u64],
        opts: &EvalOptions<'_>,
    ) -> Result<Value> {
        let exec = eval::Exec {
            view,
            bindings: opts.bindings,
            choice: opts.axis,
            value_choice: opts.value,
            stats: opts.stats,
            pool: opts.pool,
            par: opts.par,
            threads: opts.threads,
            morsel_rows: opts.morsel_rows,
            kernel: opts.kernel.arm(),
            multi_choice: opts.multi,
            replan: opts.replan,
            feedback: opts.feedback,
            multi_seq: Cell::new(0),
        };
        exec.run(&self.physical, context)
    }

    /// Evaluates through the retained reference interpreter — the
    /// oracle arm plan-correctness tests compare against. Production
    /// callers use [`XPath::eval`], which executes the physical plan.
    pub fn eval_interpreted<V: TreeView + ?Sized>(
        &self,
        view: &V,
        context: &[u64],
    ) -> Result<Value> {
        interp::eval_expr(view, &self.expr, context, None)
    }

    /// [`XPath::eval_interpreted`] with variable bindings.
    pub fn eval_interpreted_with<V: TreeView + ?Sized>(
        &self,
        view: &V,
        context: &[u64],
        bindings: &Bindings,
    ) -> Result<Value> {
        interp::eval_expr(view, &self.expr, context, Some(bindings))
    }

    /// Evaluates and coerces to a node set (tree nodes only, document
    /// order). Errors if the expression yields a non-node value.
    pub fn select<V: TreeView + ?Sized>(&self, view: &V, context: &[u64]) -> Result<Vec<u64>> {
        self.select_opts(view, context, &EvalOptions::default())
    }

    /// [`XPath::select`] with evaluation options.
    pub fn select_opts<V: TreeView + ?Sized>(
        &self,
        view: &V,
        context: &[u64],
        opts: &EvalOptions<'_>,
    ) -> Result<Vec<u64>> {
        match self.eval_opts(view, context, opts)? {
            Value::Nodes(ns) => Ok(ns),
            other => Err(XPathError::Eval {
                message: format!(
                    "expression '{}' yields {} — expected a node set",
                    self.source,
                    other.type_name()
                ),
            }),
        }
    }

    /// Convenience: evaluate from the document root.
    pub fn select_from_root<V: TreeView + ?Sized>(&self, view: &V) -> Result<Vec<u64>> {
        let root: Vec<u64> = view.root_pre().into_iter().collect();
        self.select(view, &root)
    }

    /// [`XPath::select_from_root`] with evaluation options.
    pub fn select_from_root_opts<V: TreeView + ?Sized>(
        &self,
        view: &V,
        opts: &EvalOptions<'_>,
    ) -> Result<Vec<u64>> {
        let root: Vec<u64> = view.root_pre().into_iter().collect();
        self.select_opts(view, &root, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::{PageConfig, PagedDoc, ReadOnlyDoc};

    const DOC: &str = r#"<site><people><person id="p0"><name>Ann</name><age>37</age></person><person id="p1"><name>Bob</name><age>9</age></person><person id="p2"><name>Cer</name></person></people><regions><africa><item id="i0"><name>Mask</name></item></africa><asia><item id="i1"><name>Vase</name></item><item id="i2"><name>Bowl</name></item></asia></regions></site>"#;

    fn doc() -> ReadOnlyDoc {
        ReadOnlyDoc::parse_str(DOC).unwrap()
    }

    fn names<V: TreeView>(v: &V, pres: &[u64]) -> Vec<String> {
        pres.iter()
            .map(|&p| v.pool().qname(v.name_id(p).unwrap()).unwrap().local.clone())
            .collect()
    }

    #[test]
    fn absolute_child_path() {
        let d = doc();
        let p = XPath::parse("/site/people/person").unwrap();
        let got = p.select_from_root(&d).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(names(&d, &got), ["person", "person", "person"]);
    }

    #[test]
    fn descendant_abbreviation() {
        let d = doc();
        let p = XPath::parse("//item").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 3);
        let p2 = XPath::parse("/site//name").unwrap();
        assert_eq!(p2.select_from_root(&d).unwrap().len(), 6);
    }

    #[test]
    fn attribute_predicate() {
        let d = doc();
        let p = XPath::parse("/site/people/person[@id=\"p1\"]/name").unwrap();
        let got = p.select_from_root(&d).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(d.string_value(got[0]), "Bob");
    }

    #[test]
    fn positional_predicates() {
        let d = doc();
        let p = XPath::parse("/site/people/person[2]").unwrap();
        let got = p.select_from_root(&d).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(
            d.attribute_value(got[0], &mbxq_xml::QName::local("id")),
            Some("p1".into())
        );
        let last = XPath::parse("/site/people/person[last()]").unwrap();
        let got = last.select_from_root(&d).unwrap();
        assert_eq!(
            d.attribute_value(got[0], &mbxq_xml::QName::local("id")),
            Some("p2".into())
        );
    }

    #[test]
    fn existence_and_value_predicates() {
        let d = doc();
        let p = XPath::parse("/site/people/person[age]").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 2);
        let p2 = XPath::parse("/site/people/person[age > 10]/name").unwrap();
        let got = p2.select_from_root(&d).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(d.string_value(got[0]), "Ann");
    }

    #[test]
    fn union_and_parent() {
        let d = doc();
        let p = XPath::parse("//africa/item | //asia/item").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 3);
        let p2 = XPath::parse("//item[@id=\"i2\"]/..").unwrap();
        let got = p2.select_from_root(&d).unwrap();
        assert_eq!(names(&d, &got), ["asia"]);
    }

    /// `(expr)[pred]` is a *filter expression*: the whole node-set is
    /// one context sequence, unlike step predicates whose `position()`
    /// scopes per context node.
    #[test]
    fn filter_expressions_position_over_whole_set() {
        let d = doc();
        // `//item[1]` is first-item-per-parent (two nodes) …
        assert_eq!(
            XPath::parse("//item[1]")
                .unwrap()
                .select_from_root(&d)
                .unwrap()
                .len(),
            2
        );
        // … but `(//item)[1]` is the first item in the document.
        let first = XPath::parse("(//item)[1]")
            .unwrap()
            .select_from_root(&d)
            .unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(
            d.attribute_value(first[0], &mbxq_xml::QName::local("id")),
            Some("i0".into())
        );
        let second = XPath::parse("(//item)[2]/@id").unwrap();
        assert_eq!(second.eval(&d, &[0]).unwrap().to_str(&d), "i1");
        let last = XPath::parse("(//item)[last()]")
            .unwrap()
            .select_from_root(&d)
            .unwrap();
        assert_eq!(last.len(), 1);
        assert_eq!(
            d.attribute_value(last[0], &mbxq_xml::QName::local("id")),
            Some("i2".into())
        );
        // Filter + further steps.
        let p = XPath::parse("(//person)[2]/name").unwrap();
        let got = p.select_from_root(&d).unwrap();
        assert_eq!(d.string_value(got[0]), "Bob");
        // Filters inside a predicate (nested lifted scope).
        let p = XPath::parse("//person[count((//item)[2]) = 1]").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 3);
    }

    /// `or`/`and` short-circuit per context node: the right operand is
    /// not evaluated for nodes the left operand already decides.
    #[test]
    fn boolean_operators_short_circuit_per_node() {
        let d = doc();
        // Every person has a name, so the unknown function on the right
        // must never be evaluated.
        let p = XPath::parse("//person[name or nosuchfn()]").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 3);
        let p = XPath::parse("//person[count(name) = 0 and nosuchfn()]").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 0);
        // Where the left does NOT decide, the right still runs (and may
        // error): persons without age force evaluation of the right.
        let p = XPath::parse("//person[age or nosuchfn()]").unwrap();
        assert!(p.select_from_root(&d).is_err());
    }

    #[test]
    fn functions() {
        let d = doc();
        let count = XPath::parse("count(//person)").unwrap();
        assert_eq!(count.eval(&d, &[0]).unwrap(), Value::Number(3.0));
        let contains = XPath::parse("//person[contains(name, \"nn\")]").unwrap();
        assert_eq!(contains.select_from_root(&d).unwrap().len(), 1);
        let sw = XPath::parse("//item[starts-with(name, \"B\")]").unwrap();
        assert_eq!(sw.select_from_root(&d).unwrap().len(), 1);
        let b = XPath::parse("not(count(//person) = 2)").unwrap();
        assert_eq!(b.eval(&d, &[0]).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn string_and_number_coercions() {
        let d = doc();
        let s = XPath::parse("string(//person[1]/age)").unwrap();
        assert_eq!(s.eval(&d, &[0]).unwrap(), Value::Str("37".into()));
        let n = XPath::parse("number(//person[1]/age) + 3").unwrap();
        assert_eq!(n.eval(&d, &[0]).unwrap(), Value::Number(40.0));
        let arith = XPath::parse("(2 + 3) * 4 - 6 div 2").unwrap();
        assert_eq!(arith.eval(&d, &[0]).unwrap(), Value::Number(17.0));
        let m = XPath::parse("7 mod 3").unwrap();
        assert_eq!(m.eval(&d, &[0]).unwrap(), Value::Number(1.0));
    }

    #[test]
    fn explicit_axes() {
        let d = doc();
        let p = XPath::parse("//item[@id=\"i1\"]/following-sibling::item").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 1);
        let p2 = XPath::parse("//name[ancestor::regions]").unwrap();
        assert_eq!(p2.select_from_root(&d).unwrap().len(), 3);
        let p3 = XPath::parse("//item[@id=\"i1\"]/ancestor-or-self::*").unwrap();
        assert_eq!(
            names(&d, &p3.select_from_root(&d).unwrap()),
            ["site", "regions", "asia", "item"]
        );
    }

    #[test]
    fn text_nodes_selectable() {
        let d = doc();
        let p = XPath::parse("/site/people/person[1]/name/text()").unwrap();
        let got = p.select_from_root(&d).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(d.string_value(got[0]), "Ann");
    }

    #[test]
    fn attribute_selection_as_value() {
        let d = doc();
        // `//item[1]` is first-item-per-parent: i0 (africa) and i1 (asia).
        let p = XPath::parse("//item[1]/@id").unwrap();
        match p.eval(&d, &[0]).unwrap() {
            Value::Attrs(attrs) => assert_eq!(attrs.len(), 2),
            other => panic!("expected attrs, got {other:?}"),
        }
        let s = XPath::parse("string(//item[1]/@id)").unwrap();
        assert_eq!(s.eval(&d, &[0]).unwrap(), Value::Str("i0".into()));
    }

    #[test]
    fn same_results_on_paged_view() {
        let ro = doc();
        let up = PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap();
        for src in [
            "/site/people/person[@id=\"p1\"]/name",
            "//item",
            "/site//name",
            "//person[age > 10]",
            "//item[@id=\"i2\"]/..",
            "//asia/item[2]",
        ] {
            let p = XPath::parse(src).unwrap();
            let a = p.select_from_root(&ro).unwrap();
            let b = p.select_from_root(&up).unwrap();
            assert_eq!(
                names(&ro, &a),
                names(&up, &b),
                "query {src} diverged between schemas"
            );
            let sa: Vec<String> = a.iter().map(|&x| ro.string_value(x)).collect();
            let sb: Vec<String> = b.iter().map(|&x| up.string_value(x)).collect();
            assert_eq!(sa, sb, "string values diverged for {src}");
        }
    }

    /// Every strategy arm must select the same nodes; the stats
    /// counters prove the arms actually diverge physically.
    #[test]
    fn strategy_arms_agree_and_are_taken() {
        let ro = doc();
        let p = XPath::parse("//item").unwrap();
        let auto = p.select_from_root(&ro).unwrap();
        let stats = EvalStats::default();
        let forced_index = p
            .select_from_root_opts(
                &ro,
                &EvalOptions::new()
                    .axis(AxisChoice::ForceIndex)
                    .stats(&stats),
            )
            .unwrap();
        assert_eq!(auto, forced_index);
        assert!(stats.index_steps.get() > 0, "index arm must actually run");
        let stats2 = EvalStats::default();
        let forced_stair = p
            .select_from_root_opts(
                &ro,
                &EvalOptions::new()
                    .axis(AxisChoice::ForceStaircase)
                    .stats(&stats2),
            )
            .unwrap();
        assert_eq!(auto, forced_stair);
        assert_eq!(stats2.index_steps.get(), 0);
        assert!(stats2.staircase_steps.get() > 0);
    }

    /// Value predicates: every strategy arm must select the same nodes
    /// on every schema, and the counters prove both arms actually run.
    #[test]
    fn value_probe_arms_agree_and_are_taken() {
        let ro = doc();
        let up = PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap();
        for src in [
            "//item[@id = \"i1\"]",
            "/site/people/person[@id = \"p1\"]/name",
            "//person[name = \"Ann\"]",
            "//person[age > 10]",
            "//person[age >= 9]",
            "//age[. = 37]",
            "//age[. = \"37\"]",
            "//age[. < 10]",
            "//*[@id = \"i2\"]",
            "//person[name = \"missing\"]",
        ] {
            let p = XPath::parse(src).unwrap();
            let stats = EvalStats::default();
            let probe_opts = EvalOptions::new()
                .value(ValueChoice::ForceProbe)
                .stats(&stats);
            let scan_stats = EvalStats::default();
            let scan_opts = EvalOptions::new()
                .value(ValueChoice::ForceScan)
                .stats(&scan_stats);
            for view in [&ro as &dyn mbxq_storage::TreeView, &up] {
                let auto = p.select_from_root(view).unwrap();
                let probed = p.select_from_root_opts(view, &probe_opts).unwrap();
                let scanned = p.select_from_root_opts(view, &scan_opts).unwrap();
                assert_eq!(auto, probed, "{src}: probe arm diverged");
                assert_eq!(auto, scanned, "{src}: scan arm diverged");
            }
            assert!(
                stats.value_probe_steps.get() > 0,
                "{src}: probe arm must actually run"
            );
            assert_eq!(stats.value_scan_steps.get(), 0, "{src}");
            assert!(
                scan_stats.value_scan_steps.get() > 0,
                "{src}: scan arm must actually run"
            );
            assert_eq!(scan_stats.value_probe_steps.get(), 0, "{src}");
        }
        // Sanity on actual hits.
        let hit = XPath::parse("//person[name = \"Bob\"]")
            .unwrap()
            .select_from_root_opts(&ro, &EvalOptions::new().value(ValueChoice::ForceProbe))
            .unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(
            ro.attribute_value(hit[0], &mbxq_xml::QName::local("id")),
            Some("p1".into())
        );
    }

    /// Complex-content elements (element children) are served through
    /// the verified unindexed arm — `person` has element children, so
    /// `[. = ...]` on it must still be exact under the probe.
    #[test]
    fn value_probe_handles_complex_content() {
        let xml = r#"<r><p><name>Al</name><x>X</x></p><p>AlX</p><p>other</p></r>"#;
        let ro = ReadOnlyDoc::parse_str(xml).unwrap();
        let p = XPath::parse("//p[. = \"AlX\"]").unwrap();
        let probed = p
            .select_from_root_opts(&ro, &EvalOptions::new().value(ValueChoice::ForceProbe))
            .unwrap();
        let scanned = p
            .select_from_root_opts(&ro, &EvalOptions::new().value(ValueChoice::ForceScan))
            .unwrap();
        assert_eq!(probed, scanned);
        // Both the complex <p><name>Al</name><x>X</x></p> (string value
        // "AlX", served via the verified unindexed arm) and the simple
        // <p>AlX</p> (exact arm) match.
        assert_eq!(probed.len(), 2);
    }

    #[test]
    fn variables_resolve_through_bindings() {
        let d = doc();
        let p = XPath::parse("/site/people/person[@id = $who]/name").unwrap();
        let mut b = Bindings::new();
        b.set("who", Value::Str("p1".into()));
        let got = p.select_opts(&d, &[0], &EvalOptions::new().bindings(&b));
        let got = got.unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(d.string_value(got[0]), "Bob");
        // The interpreter arm agrees.
        let interp = p.eval_interpreted_with(&d, &[0], &b).unwrap();
        assert_eq!(interp, Value::Nodes(got));
        // Numeric binding compares numerically.
        let p2 = XPath::parse("$n + 2").unwrap();
        let mut b2 = Bindings::new();
        b2.set("n", Value::Number(40.0));
        assert_eq!(p2.eval_with(&d, &[0], &b2).unwrap(), Value::Number(42.0));
        // Node-set binding starts a path.
        let people = XPath::parse("/site/people")
            .unwrap()
            .select_from_root(&d)
            .unwrap();
        let mut b3 = Bindings::new();
        b3.set("ctx", Value::Nodes(people));
        let p3 = XPath::parse("$ctx/person/name").unwrap();
        assert_eq!(p3.eval_with(&d, &[0], &b3).unwrap().to_str(&d), "Ann");
    }

    #[test]
    fn unbound_variables_error() {
        let d = doc();
        let p = XPath::parse("$missing").unwrap();
        let err = p.eval(&d, &[0]).unwrap_err();
        assert!(
            err.to_string().contains("unbound variable $missing"),
            "got {err}"
        );
        let err = p.eval_interpreted(&d, &[0]).unwrap_err();
        assert!(err.to_string().contains("unbound variable $missing"));
    }

    #[test]
    fn explain_renders_both_levels() {
        let p = XPath::parse("//person[age > 10]/name").unwrap();
        let logical = p.explain();
        assert!(
            logical.contains("value-probe descendant::person"),
            "{logical}"
        );
        let physical = p.explain_physical();
        assert!(physical.contains("cost-chosen"), "{physical}");
        assert!(
            physical.contains("scalar-scan vs content-index"),
            "{physical}"
        );
        // A predicate the value rules cannot serve stays a filter over
        // its step.
        let pf = XPath::parse("//person[contains(name, \"x\")]").unwrap();
        assert!(pf.explain().contains("filter"), "{}", pf.explain());
        assert!(
            pf.explain().contains("step descendant::person"),
            "{}",
            pf.explain()
        );
        // `//person[1]` keeps its per-parent position scope (no fusion).
        let p2 = XPath::parse("//person[1]").unwrap();
        assert!(p2.explain().contains("pick first-per-group"));
        assert!(p2.explain().contains("child::person"));
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "",
            "/site//",
            "//person[",
            "foo(",
            "1 +",
            "@",
            "//person]",
            "$",
        ] {
            assert!(XPath::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn boolean_operators() {
        let d = doc();
        let p = XPath::parse("//person[age and name]").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 2);
        let p2 = XPath::parse("//person[age or name]").unwrap();
        assert_eq!(p2.select_from_root(&d).unwrap().len(), 3);
        let p3 = XPath::parse("//person[age = 9 or age = 37]").unwrap();
        assert_eq!(p3.select_from_root(&d).unwrap().len(), 2);
    }

    #[test]
    fn relative_paths_from_context() {
        let d = doc();
        let people = XPath::parse("/site/people")
            .unwrap()
            .select_from_root(&d)
            .unwrap();
        let rel = XPath::parse("person/name").unwrap();
        let got = rel.select(&d, &people).unwrap();
        assert_eq!(got.len(), 3);
        let dot = XPath::parse(".").unwrap();
        assert_eq!(dot.select(&d, &people).unwrap(), people);
    }

    #[test]
    fn string_function_library() {
        let d = doc();
        let cases = [
            ("substring-before(\"a-b\", \"-\")", Value::Str("a".into())),
            ("substring-after(\"a-b\", \"-\")", Value::Str("b".into())),
            ("substring-after(\"ab\", \"x\")", Value::Str("".into())),
            (
                "translate(\"bar\", \"abc\", \"ABC\")",
                Value::Str("BAr".into()),
            ),
            ("translate(\"bar\", \"ar\", \"A\")", Value::Str("bA".into())),
            ("floor(2.7)", Value::Number(2.0)),
            ("ceiling(2.1)", Value::Number(3.0)),
            ("round(2.5)", Value::Number(3.0)),
            ("substring(\"hello\", 2, 3)", Value::Str("ell".into())),
            ("string-length(\"héllo\")", Value::Number(5.0)),
            ("normalize-space(\"  a   b \")", Value::Str("a b".into())),
            ("concat(\"x\", \"-\", \"y\")", Value::Str("x-y".into())),
        ];
        for (src, want) in cases {
            let got = XPath::parse(src).unwrap().eval(&d, &[0]).unwrap();
            assert_eq!(got, want, "{src}");
        }
    }

    /// `normalize-space()` / `string-length()` with no arguments read
    /// the context node — in both engine arms.
    #[test]
    fn zero_arg_string_functions_read_the_context_node() {
        let d = ReadOnlyDoc::parse_str(r#"<r><p>  a   b </p><p>xyz</p><p/></r>"#).unwrap();
        let p = XPath::parse("//p[normalize-space() = \"a b\"]").unwrap();
        assert_eq!(p.select_from_root(&d).unwrap().len(), 1);
        let q = XPath::parse("//p[string-length() = 3]").unwrap();
        assert_eq!(q.select_from_root(&d).unwrap().len(), 1);
        let e = XPath::parse("//p[string-length() = 0]").unwrap();
        assert_eq!(e.select_from_root(&d).unwrap().len(), 1);
        // The interpreter arm agrees (the plan oracle's contract).
        for xp in [&p, &q, &e] {
            let root: Vec<u64> = d.root_pre().into_iter().collect();
            assert_eq!(
                xp.eval(&d, &root).unwrap(),
                xp.eval_interpreted(&d, &root).unwrap(),
                "{}",
                xp.source()
            );
        }
    }

    /// Forced-parallel execution with pathologically small morsels must
    /// return bit-identical node sets to forced-sequential, and the
    /// counters must prove the pool actually ran.
    #[test]
    fn parallel_execution_is_bit_identical() {
        let ro = doc();
        let up = PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap();
        let pool = par::WorkerPool::new(4);
        let mut par_steps_total = 0;
        for src in [
            "//item",
            "/site//name",
            "//person[age > 10]",
            "//item[1]",
            "//item[@id=\"i2\"]/..",
            "/site/people/person/name",
            "//person[name]",
        ] {
            let p = XPath::parse(src).unwrap();
            for view in [&ro as &dyn TreeView, &up] {
                let seq = p
                    .select_from_root_opts(
                        view,
                        &EvalOptions::new().par(ParChoice::ForceSequential),
                    )
                    .unwrap();
                let stats = EvalStats::default();
                let par = p
                    .select_from_root_opts(
                        view,
                        &EvalOptions::new()
                            .pool(&pool)
                            .par(ParChoice::ForceParallel)
                            .morsel_rows(1)
                            .stats(&stats),
                    )
                    .unwrap();
                assert_eq!(seq, par, "{src} diverged under parallel execution");
                par_steps_total += stats.par_steps.get();
            }
        }
        assert!(par_steps_total > 0, "no operator ever ran parallel");
    }

    #[test]
    fn sum_function() {
        let d = doc();
        let p = XPath::parse("sum(//person/age)").unwrap();
        assert_eq!(p.eval(&d, &[0]).unwrap(), Value::Number(46.0));
    }

    /// Stacked recognizable value predicates fold into one multi-probe
    /// step; an unrecognizable predicate in the stack stays a filter
    /// above it without un-fusing the recognized ones.
    #[test]
    fn multi_predicates_lower_to_multi_probe() {
        let two = XPath::parse("//person[@id = \"p1\"][name = \"Bob\"]").unwrap();
        let l = two.explain();
        assert!(l.contains("multi-probe descendant::person"), "{l}");
        assert!(
            l.contains("[@id = \"p1\"]") && l.contains("[name = \"Bob\"]"),
            "{l}"
        );
        let phys = two.explain_physical();
        assert!(
            phys.contains("scalar-scan vs best-probe vs intersect"),
            "{phys}"
        );
        let three = XPath::parse("//person[@id = \"p1\"][name = \"Bob\"][age = 9]").unwrap();
        let l3 = three.explain();
        assert!(l3.contains("multi-probe"), "{l3}");
        assert!(l3.contains("[age in [9, 9]]"), "{l3}");
        let mixed = XPath::parse("//person[@id = \"p1\"][contains(name, \"o\")]").unwrap();
        let lm = mixed.explain();
        assert!(lm.contains("filter"), "{lm}");
        assert!(lm.contains("value-probe descendant::person"), "{lm}");
        assert!(!lm.contains("multi-probe"), "{lm}");
    }

    /// Every multi-predicate strategy arm must select the same nodes on
    /// every schema; the counters prove the arms physically diverge
    /// (the intersect arm actually intersects posting lists).
    #[test]
    fn multi_probe_arms_agree_and_are_taken() {
        let ro = doc();
        let up = PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap();
        for src in [
            "//person[@id = \"p1\"][name = \"Bob\"]",
            "//person[@id = \"p1\"][name = \"Ann\"]",
            "//person[name = \"Ann\"][age = 37]",
            "//person[age > 5][age < 20]",
            "//item[@id = \"i1\"][name = \"Vase\"]",
            "//person[@id = \"p1\"][name = \"Bob\"][age = 9]",
            "//person[age >= 9][name = \"Ann\"]",
        ] {
            let p = XPath::parse(src).unwrap();
            let arms = [
                MultiChoice::ForceScan,
                MultiChoice::ForceBestProbe,
                MultiChoice::ForceIntersect,
            ];
            for view in [&ro as &dyn TreeView, &up] {
                let auto = p.select_from_root(view).unwrap();
                let interp = p.eval_interpreted(view, &[0]).unwrap();
                assert_eq!(interp, Value::Nodes(auto.clone()), "{src}: interpreter");
                for arm in arms {
                    let stats = EvalStats::default();
                    let got = p
                        .select_from_root_opts(view, &EvalOptions::new().multi(arm).stats(&stats))
                        .unwrap();
                    assert_eq!(auto, got, "{src}: {arm:?} diverged");
                    assert!(
                        stats.multi_probe_steps.get() > 0,
                        "{src}: {arm:?} skipped the multi step"
                    );
                }
            }
            // The intersect arm must actually run the kernel.
            let stats = EvalStats::default();
            let hits = p
                .select_from_root_opts(
                    &ro,
                    &EvalOptions::new()
                        .multi(MultiChoice::ForceIntersect)
                        .stats(&stats),
                )
                .unwrap();
            assert_eq!(stats.intersect_rows.get(), hits.len() as u64, "{src}");
        }
    }

    /// Feedback wiring: an Auto execution records estimated vs
    /// observed cardinality per multi step; `Skip` reuses the recorded
    /// strategy verbatim, `Force` replans every execution, and
    /// `Default` replans exactly when the record diverges.
    #[test]
    fn replan_feedback_records_and_replans() {
        let d = doc();
        let p = XPath::parse("//person[@id = \"p1\"][name = \"Bob\"]").unwrap();
        let fb = PlanFeedback::new();
        let stats = EvalStats::default();
        let first = p
            .select_from_root_opts(&d, &EvalOptions::new().feedback(&fb).stats(&stats))
            .unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(stats.replans.get(), 0, "first execution is not a replan");
        let snap = fb.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].observed, 1);
        assert!(
            snap[0].estimated >= snap[0].observed,
            "bound must be pessimistic"
        );
        assert!(!snap[0].diverged());
        // Skip: reuse the recorded strategy, never replan.
        let s2 = EvalStats::default();
        let second = p
            .select_from_root_opts(
                &d,
                &EvalOptions::new()
                    .feedback(&fb)
                    .replan(ReplanMode::Skip)
                    .stats(&s2),
            )
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(s2.replans.get(), 0);
        // Default with a non-diverged record: also reuse.
        let s3 = EvalStats::default();
        p.select_from_root_opts(&d, &EvalOptions::new().feedback(&fb).stats(&s3))
            .unwrap();
        assert_eq!(s3.replans.get(), 0);
        // Force: replan even though the record is healthy.
        let s4 = EvalStats::default();
        let fourth = p
            .select_from_root_opts(
                &d,
                &EvalOptions::new()
                    .feedback(&fb)
                    .replan(ReplanMode::Force)
                    .stats(&s4),
            )
            .unwrap();
        assert_eq!(first, fourth);
        assert_eq!(s4.replans.get(), 1);
        // Default with a diverged record: replan once, and the refresh
        // leaves a healthy record behind (recovery within one replan).
        let poisoned = PlanFeedback::new();
        poisoned.record(
            0,
            StepFeedback {
                estimated: 100_000,
                observed: 1,
                strategy: MultiStrategy::Scan,
                pred_lists: vec![None, None],
            },
        );
        assert!(poisoned.any_diverged());
        let s5 = EvalStats::default();
        let fifth = p
            .select_from_root_opts(&d, &EvalOptions::new().feedback(&poisoned).stats(&s5))
            .unwrap();
        assert_eq!(first, fifth);
        assert_eq!(s5.replans.get(), 1);
        assert!(!poisoned.any_diverged(), "replan must repair the record");
    }
}
