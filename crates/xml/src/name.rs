//! Qualified names — the value domain of the paper's `qn` table.

use std::fmt;

/// A qualified XML name: an optional prefix and a local part.
///
/// The storage schema keeps "one tuple for each qualified name (element or
/// attribute)" (§3.1, Figure 5); this type is what those tuples hold.
/// Prefixes are stored verbatim — namespace URI resolution is not part of
/// the paper's storage model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Namespace prefix (empty string = no prefix).
    pub prefix: String,
    /// Local part of the name.
    pub local: String,
}

impl QName {
    /// Builds a name with no prefix.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            prefix: String::new(),
            local: local.into(),
        }
    }

    /// Builds a prefixed name.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> Self {
        QName {
            prefix: prefix.into(),
            local: local.into(),
        }
    }

    /// Parses `prefix:local` or `local` lexical form.
    ///
    /// Returns `None` if the text is not a well-formed name (empty, more
    /// than one colon, bad start character…).
    pub fn parse(text: &str) -> Option<Self> {
        let mut parts = text.split(':');
        let first = parts.next()?;
        match (parts.next(), parts.next()) {
            (None, _) => {
                if is_name(first) {
                    Some(QName::local(first))
                } else {
                    None
                }
            }
            (Some(second), None) => {
                if is_name(first) && is_name(second) {
                    Some(QName::prefixed(first, second))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Whether the name carries a prefix.
    pub fn has_prefix(&self) -> bool {
        !self.prefix.is_empty()
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix.is_empty() {
            write!(f, "{}", self.local)
        } else {
            write!(f, "{}:{}", self.prefix, self.local)
        }
    }
}

/// Whether `c` may start an XML name (simplified to the common subset:
/// letters, `_`; production NameStartChar minus rarely-used planes is
/// approximated by `char::is_alphabetic`).
pub fn is_name_start_char(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Whether `c` may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c) || c.is_ascii_digit() || c == '-' || c == '.' || c == '\u{B7}'
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start_char(c) => chars.all(is_name_char),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_local_names() {
        assert_eq!(QName::parse("item"), Some(QName::local("item")));
        assert_eq!(QName::parse("_a-b.c"), Some(QName::local("_a-b.c")));
    }

    #[test]
    fn parses_prefixed_names() {
        assert_eq!(
            QName::parse("xupdate:remove"),
            Some(QName::prefixed("xupdate", "remove"))
        );
    }

    #[test]
    fn rejects_malformed_names() {
        assert_eq!(QName::parse(""), None);
        assert_eq!(QName::parse("1abc"), None);
        assert_eq!(QName::parse("a:b:c"), None);
        assert_eq!(QName::parse(":x"), None);
        assert_eq!(QName::parse("x:"), None);
        assert_eq!(QName::parse("a b"), None);
    }

    #[test]
    fn display_round_trips() {
        for s in ["item", "xu:remove"] {
            assert_eq!(QName::parse(s).unwrap().to_string(), s);
        }
    }
}
