//! Serialization of documents and nodes back to XML text.
//!
//! MonetDB/XQuery ships "XML Serialization" as a runtime-module primitive
//! (Figure 1). We keep the same contract the storage layer needs: parsing
//! the serializer's output yields the original tree (`parse ∘ serialize =
//! id`), which the property tests in this crate and the round-trip tests
//! in `mbxq-storage` rely on.

use crate::tree::{Document, Node};
use std::fmt::Write;

/// Escapes character data content (`<`, `&`, and `>` for safety).
pub fn escape_text(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value for double-quoted serialization.
pub fn escape_attr(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serializes a single node (and its subtree) to `out`.
pub fn serialize_node(node: &Node, out: &mut String) {
    match node {
        Node::Element {
            name,
            attributes,
            children,
        } => {
            out.push('<');
            let _ = write!(out, "{name}");
            for (aname, avalue) in attributes {
                let _ = write!(out, " {aname}=\"");
                escape_attr(avalue, out);
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    serialize_node(c, out);
                }
                let _ = write!(out, "</{name}>");
            }
        }
        Node::Text(t) => escape_text(t, out),
        Node::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        Node::ProcessingInstruction { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

/// Serializes a whole document (prolog, root, epilog).
pub fn serialize_document(doc: &Document) -> String {
    let mut out = String::new();
    for n in &doc.prolog {
        serialize_node(n, &mut out);
    }
    serialize_node(&doc.root, &mut out);
    for n in &doc.epilog {
        serialize_node(n, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Document;

    fn round_trip(s: &str) -> String {
        serialize_document(&Document::parse(s).unwrap())
    }

    #[test]
    fn simple_round_trip() {
        assert_eq!(
            round_trip("<a><b/>x<c k=\"v\"/></a>"),
            "<a><b/>x<c k=\"v\"/></a>"
        );
    }

    #[test]
    fn escaping_round_trips() {
        let src = "<a k=\"1 &lt; 2 &amp; &quot;q&quot;\">x &lt; y &amp; z</a>";
        let doc = Document::parse(src).unwrap();
        let ser = serialize_document(&doc);
        let reparsed = Document::parse(&ser).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn comments_and_pis_round_trip() {
        let src = "<!--hello--><r><?pi data?></r>";
        assert_eq!(round_trip(src), src);
    }

    #[test]
    fn serialize_parse_is_identity_on_parsed_docs() {
        for src in [
            "<a/>",
            "<a>t</a>",
            "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>",
            "<r a=\"1\" b=\"2\"><x/>mid<y>deep</y>tail</r>",
        ] {
            let d1 = Document::parse(src).unwrap();
            let d2 = Document::parse(&serialize_document(&d1)).unwrap();
            assert_eq!(d1, d2, "round trip failed for {src}");
        }
    }
}
