//! `mbxq-xml` — the XML substrate for the MonetDB/XQuery reproduction.
//!
//! The paper's system shreds *schema-free XML documents* into relational
//! tables. Since the sanctioned offline dependency set contains no XML
//! crate, this crate implements the substrate from scratch:
//!
//! * [`parser`] — a pull (event) parser for the XML subset the paper's
//!   storage schema represents: elements, attributes, text, comments,
//!   processing instructions, CDATA sections, character/entity references,
//!   and an (ignored) XML declaration / DOCTYPE.
//! * [`tree`] — an owned document tree used as the *oracle* by tests and
//!   as the exchange format between the XUpdate executor and the shredder.
//! * [`serialize`] — document-order serialization with correct escaping;
//!   `parse ∘ serialize` is the identity on the supported subset, which
//!   property tests exercise.
//! * [`name`] — qualified names (`prefix:local`), the value domain of the
//!   paper's `qn` table.
//!
//! DTD internal subsets, namespace *resolution* (URI binding) and entity
//! definitions beyond the five predefined ones are out of scope: the
//! pre/size/level storage schema of the paper does not represent them
//! (qualified names are stored verbatim in the `qn` table).

pub mod name;
pub mod parser;
pub mod serialize;
pub mod tree;

pub use name::QName;
pub use parser::{Event, Parser};
pub use serialize::{serialize_document, serialize_node};
pub use tree::{Document, Node, NodeKind};

/// Position of a parse error in the input (byte offset plus 1-based
/// line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextPos {
    /// Byte offset into the input string.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl core::fmt::Display for TextPos {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was reading when input ran out.
        context: &'static str,
    },
    /// A syntactic error at a known position.
    Syntax {
        /// Human-readable description.
        message: String,
        /// Where it happened.
        pos: TextPos,
    },
    /// An end tag did not match the open element.
    MismatchedTag {
        /// Name the parser expected to be closed.
        expected: String,
        /// Name that was actually closed.
        found: String,
        /// Where the end tag was found.
        pos: TextPos,
    },
    /// A reference (`&name;` / `&#n;`) could not be resolved.
    BadReference {
        /// The raw reference text.
        reference: String,
        /// Where it appeared.
        pos: TextPos,
    },
    /// Document-level structure violation (e.g. two root elements).
    Structure {
        /// Human-readable description.
        message: String,
    },
    /// An attribute name occurred twice on the same element.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
        /// Where the repetition was found.
        pos: TextPos,
    },
}

impl core::fmt::Display for XmlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::Syntax { message, pos } => write!(f, "syntax error at {pos}: {message}"),
            XmlError::MismatchedTag {
                expected,
                found,
                pos,
            } => write!(
                f,
                "mismatched end tag at {pos}: expected </{expected}>, found </{found}>"
            ),
            XmlError::BadReference { reference, pos } => {
                write!(f, "unresolvable reference '{reference}' at {pos}")
            }
            XmlError::Structure { message } => write!(f, "document structure: {message}"),
            XmlError::DuplicateAttribute { name, pos } => {
                write!(f, "duplicate attribute '{name}' at {pos}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// Result alias for XML operations.
pub type Result<T> = std::result::Result<T, XmlError>;
