//! A pull (event) parser for the XML subset the storage schema represents.
//!
//! The shredder in `mbxq-storage` consumes this event stream directly: a
//! `StartElement` opens a node (assigning its `pre` rank), `EndElement`
//! closes it (fixing its `size`), and the leaf events become text /
//! comment / processing-instruction tuples. This mirrors how pre and post
//! ranks "count how many tags have been opened and closed, respectively,
//! as seen when parsing the document sequentially" (§2.2).

use crate::{QName, Result, TextPos, XmlError};

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="value" …>` or `<name …/>` (the latter is immediately
    /// followed by a matching [`Event::EndElement`]).
    StartElement {
        /// Element name.
        name: QName,
        /// Attributes in document order, entity references resolved.
        attributes: Vec<(QName, String)>,
    },
    /// `</name>` (or the implicit close of an empty-element tag).
    EndElement {
        /// Element name.
        name: QName,
    },
    /// Character data (entity references resolved, CDATA unwrapped).
    /// Adjacent runs are merged into one event.
    Text(String),
    /// `<!-- … -->`.
    Comment(String),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

/// Streaming XML parser over an in-memory string.
///
/// Iterate with [`Parser::next_event`] until it returns `Ok(None)`.
/// The parser validates well-formedness (tag balance, attribute
/// uniqueness, single root) as it goes.
pub struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Open element stack, used for end-tag matching.
    stack: Vec<QName>,
    /// Whether the root element has been closed.
    root_done: bool,
    /// Whether any root element was seen.
    root_seen: bool,
    /// Pending event (an empty-element tag yields two events).
    pending_end: Option<QName>,
    /// Buffer for coalescing adjacent text runs.
    text_buf: String,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            stack: Vec::new(),
            root_done: false,
            root_seen: false,
            pending_end: None,
            text_buf: String::new(),
        }
    }

    /// Current position (for error reporting).
    fn text_pos(&self) -> TextPos {
        TextPos {
            offset: self.pos,
            line: self.line,
            column: self.col,
        }
    }

    fn syntax(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            message: message.into(),
            pos: self.text_pos(),
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    /// Advances over `n` bytes, maintaining line/column. `n` must land on
    /// a char boundary.
    fn advance(&mut self, n: usize) {
        for c in self.input[self.pos..self.pos + n].chars() {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.advance(1);
            } else {
                break;
            }
        }
    }

    /// Reads bytes until `stop` occurs, returning the slice before it and
    /// consuming both. Errors with `context` on EOF.
    fn take_until(&mut self, stop: &str, context: &'static str) -> Result<&'a str> {
        match self.input[self.pos..].find(stop) {
            Some(rel) => {
                let s = &self.input[self.pos..self.pos + rel];
                self.advance(rel + stop.len());
                Ok(s)
            }
            None => Err(XmlError::UnexpectedEof { context }),
        }
    }

    fn read_name(&mut self) -> Result<QName> {
        let start = self.pos;
        let mut chars = self.input[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if crate::name::is_name_start_char(c) || c == ':' => {}
            _ => return Err(self.syntax("expected a name")),
        }
        let mut end = self.input.len();
        for (i, c) in chars {
            if !(crate::name::is_name_char(c) || c == ':') {
                end = start + i;
                break;
            }
        }
        if end == self.input.len() {
            end = self.input.len();
        }
        let raw = &self.input[start..end];
        self.advance(end - start);
        QName::parse(raw).ok_or_else(|| self.syntax(format!("malformed name '{raw}'")))
    }

    /// Resolves a `&…;` reference starting at the current `&`.
    fn read_reference(&mut self, out: &mut String) -> Result<()> {
        let pos = self.text_pos();
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.advance(1);
        let body = match self.input[self.pos..].find(';') {
            Some(rel) if rel <= 32 => {
                let s = &self.input[self.pos..self.pos + rel];
                self.advance(rel + 1);
                s
            }
            _ => {
                return Err(XmlError::BadReference {
                    reference: "&".into(),
                    pos,
                })
            }
        };
        let resolved = match body {
            "lt" => Some('<'),
            "gt" => Some('>'),
            "amp" => Some('&'),
            "apos" => Some('\''),
            "quot" => Some('"'),
            _ => {
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok().and_then(char::from_u32)
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>().ok().and_then(char::from_u32)
                } else {
                    None
                }
            }
        };
        match resolved {
            Some(c) => {
                out.push(c);
                Ok(())
            }
            None => Err(XmlError::BadReference {
                reference: format!("&{body};"),
                pos,
            }),
        }
    }

    /// Reads an attribute value delimited by `quote`, resolving references.
    fn read_attr_value(&mut self, quote: u8) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "attribute value",
                    })
                }
                Some(b) if b == quote => {
                    self.advance(1);
                    return Ok(out);
                }
                Some(b'&') => self.read_reference(&mut out)?,
                Some(b'<') => return Err(self.syntax("'<' not allowed in attribute value")),
                Some(_) => {
                    let c = self.input[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.advance(c.len_utf8());
                }
            }
        }
    }

    /// Produces the next event, or `Ok(None)` at the end of a well-formed
    /// document.
    #[allow(clippy::should_implement_trait)]
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        if let Some(name) = self.pending_end.take() {
            if self.stack.is_empty() {
                self.root_done = true;
            }
            return Ok(Some(Event::EndElement { name }));
        }
        loop {
            // Coalesce character data until markup (only inside the root).
            if !self.stack.is_empty() {
                self.text_buf.clear();
                loop {
                    match self.peek() {
                        None => {
                            return Err(XmlError::UnexpectedEof {
                                context: "element content",
                            })
                        }
                        Some(b'<') => {
                            if self.starts_with("<![CDATA[") {
                                self.advance("<![CDATA[".len());
                                let data = self.take_until("]]>", "CDATA section")?;
                                self.text_buf.push_str(data);
                                continue;
                            }
                            break;
                        }
                        Some(b'&') => {
                            let mut tmp = std::mem::take(&mut self.text_buf);
                            self.read_reference(&mut tmp)?;
                            self.text_buf = tmp;
                        }
                        Some(_) => {
                            let rest = &self.input[self.pos..];
                            let run = rest.find(['<', '&']).unwrap_or(rest.len());
                            self.text_buf.push_str(&rest[..run]);
                            self.advance(run);
                        }
                    }
                }
                if !self.text_buf.is_empty() {
                    return Ok(Some(Event::Text(std::mem::take(&mut self.text_buf))));
                }
            } else {
                // Prolog / epilog: only whitespace, comments, PIs, doctype.
                self.skip_whitespace();
                if self.peek().is_none() {
                    if !self.root_seen {
                        return Err(XmlError::Structure {
                            message: "document has no root element".into(),
                        });
                    }
                    return Ok(None);
                }
                if self.peek() != Some(b'<') {
                    return Err(self.syntax("character data outside the root element"));
                }
            }

            // At '<'.
            if self.starts_with("<!--") {
                self.advance(4);
                let text = self.take_until("-->", "comment")?;
                if text.contains("--") {
                    return Err(self.syntax("'--' not allowed inside a comment"));
                }
                return Ok(Some(Event::Comment(text.to_string())));
            }
            if self.starts_with("<?") {
                self.advance(2);
                let body = self.take_until("?>", "processing instruction")?;
                let (target, data) = match body.find(|c: char| c.is_ascii_whitespace()) {
                    Some(i) => (&body[..i], body[i..].trim()),
                    None => (body, ""),
                };
                if target.is_empty() {
                    return Err(self.syntax("processing instruction without a target"));
                }
                if target.eq_ignore_ascii_case("xml") {
                    // XML declaration (or a PI reserved target) — skip it.
                    continue;
                }
                return Ok(Some(Event::ProcessingInstruction {
                    target: target.to_string(),
                    data: data.to_string(),
                }));
            }
            if self.starts_with("<!DOCTYPE") {
                // Skip the doctype declaration, tracking bracket nesting
                // for an internal subset.
                self.advance("<!DOCTYPE".len());
                let mut depth = 0i32;
                loop {
                    match self.peek() {
                        None => return Err(XmlError::UnexpectedEof { context: "DOCTYPE" }),
                        Some(b'[') => {
                            depth += 1;
                            self.advance(1);
                        }
                        Some(b']') => {
                            depth -= 1;
                            self.advance(1);
                        }
                        Some(b'>') if depth <= 0 => {
                            self.advance(1);
                            break;
                        }
                        Some(_) => self.advance(1),
                    }
                }
                continue;
            }
            if self.starts_with("</") {
                let pos = self.text_pos();
                self.advance(2);
                let name = self.read_name()?;
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.syntax("expected '>' after end tag name"));
                }
                self.advance(1);
                match self.stack.pop() {
                    Some(open) if open == name => {
                        if self.stack.is_empty() {
                            self.root_done = true;
                        }
                        return Ok(Some(Event::EndElement { name }));
                    }
                    Some(open) => {
                        return Err(XmlError::MismatchedTag {
                            expected: open.to_string(),
                            found: name.to_string(),
                            pos,
                        })
                    }
                    None => {
                        return Err(XmlError::Structure {
                            message: format!("end tag </{name}> with no open element"),
                        })
                    }
                }
            }
            if self.peek() == Some(b'<') {
                // Start tag.
                if self.root_done && self.stack.is_empty() {
                    return Err(XmlError::Structure {
                        message: "content after the root element was closed".into(),
                    });
                }
                self.advance(1);
                let name = self.read_name()?;
                let mut attributes: Vec<(QName, String)> = Vec::new();
                loop {
                    self.skip_whitespace();
                    match self.peek() {
                        None => {
                            return Err(XmlError::UnexpectedEof {
                                context: "start tag",
                            })
                        }
                        Some(b'>') => {
                            self.advance(1);
                            self.stack.push(name.clone());
                            self.root_seen = true;
                            return Ok(Some(Event::StartElement { name, attributes }));
                        }
                        Some(b'/') => {
                            self.advance(1);
                            if self.peek() != Some(b'>') {
                                return Err(self.syntax("expected '>' after '/'"));
                            }
                            self.advance(1);
                            self.root_seen = true;
                            self.pending_end = Some(name.clone());
                            return Ok(Some(Event::StartElement { name, attributes }));
                        }
                        Some(_) => {
                            let apos = self.text_pos();
                            let aname = self.read_name()?;
                            self.skip_whitespace();
                            if self.peek() != Some(b'=') {
                                return Err(self.syntax("expected '=' after attribute name"));
                            }
                            self.advance(1);
                            self.skip_whitespace();
                            let quote = match self.peek() {
                                Some(q @ (b'"' | b'\'')) => q,
                                _ => return Err(self.syntax("expected quoted attribute value")),
                            };
                            self.advance(1);
                            let value = self.read_attr_value(quote)?;
                            if attributes.iter().any(|(n, _)| *n == aname) {
                                return Err(XmlError::DuplicateAttribute {
                                    name: aname.to_string(),
                                    pos: apos,
                                });
                            }
                            attributes.push((aname, value));
                        }
                    }
                }
            }
            unreachable!("markup dispatch is exhaustive");
        }
    }

    /// Collects all events of the document.
    pub fn collect_events(mut self) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<Event> {
        Parser::new(s).collect_events().expect("well-formed")
    }

    fn start(name: &str) -> Event {
        Event::StartElement {
            name: QName::parse(name).unwrap(),
            attributes: vec![],
        }
    }

    fn end(name: &str) -> Event {
        Event::EndElement {
            name: QName::parse(name).unwrap(),
        }
    }

    #[test]
    fn parses_the_papers_example_document() {
        // Figure 2(i) of the paper.
        let doc = "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>";
        let evs = events(doc);
        let opens: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                Event::StartElement { name, .. } => Some(name.local.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(opens, ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]);
        // pre rank = open order; post rank = close order.
        let closes: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                Event::EndElement { name } => Some(name.local.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(closes, ["d", "e", "c", "b", "g", "i", "j", "h", "f", "a"]);
    }

    #[test]
    fn empty_element_tag_yields_start_and_end() {
        assert_eq!(events("<r/>"), vec![start("r"), end("r")]);
    }

    #[test]
    fn attributes_preserve_order_and_resolve_references() {
        let evs = events(r#"<r a="1" b="x &amp; y" c='&#65;&#x42;'/>"#);
        match &evs[0] {
            Event::StartElement { attributes, .. } => {
                assert_eq!(
                    attributes
                        .iter()
                        .map(|(n, v)| (n.to_string(), v.clone()))
                        .collect::<Vec<_>>(),
                    vec![
                        ("a".to_string(), "1".to_string()),
                        ("b".to_string(), "x & y".to_string()),
                        ("c".to_string(), "AB".to_string()),
                    ]
                );
            }
            other => panic!("expected start element, got {other:?}"),
        }
    }

    #[test]
    fn text_runs_are_coalesced_across_cdata_and_references() {
        let evs = events("<r>a&lt;b<![CDATA[<raw>]]>c</r>");
        assert_eq!(evs[1], Event::Text("a<b<raw>c".to_string()));
    }

    #[test]
    fn comments_and_pis_are_events() {
        let evs = events("<?xml version=\"1.0\"?><!-- hi --><r><?php echo ?></r>");
        assert_eq!(evs[0], Event::Comment(" hi ".to_string()));
        assert_eq!(
            evs[2],
            Event::ProcessingInstruction {
                target: "php".to_string(),
                data: "echo".to_string()
            }
        );
    }

    #[test]
    fn doctype_is_skipped() {
        let evs = events("<!DOCTYPE site SYSTEM \"auction.dtd\" [ <!ENTITY x \"y\"> ]><r/>");
        assert_eq!(evs, vec![start("r"), end("r")]);
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        assert!(matches!(
            Parser::new("<a><b></a></b>").collect_events(),
            Err(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn duplicate_attributes_are_rejected() {
        assert!(matches!(
            Parser::new(r#"<a x="1" x="2"/>"#).collect_events(),
            Err(XmlError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn two_roots_are_rejected() {
        assert!(matches!(
            Parser::new("<a/><b/>").collect_events(),
            Err(XmlError::Structure { .. })
        ));
    }

    #[test]
    fn missing_root_is_rejected() {
        assert!(matches!(
            Parser::new("  <!-- only a comment --> ").collect_events(),
            Err(XmlError::Structure { .. })
        ));
    }

    #[test]
    fn truncated_input_is_eof() {
        assert!(matches!(
            Parser::new("<a><b>text").collect_events(),
            Err(XmlError::UnexpectedEof { .. })
        ));
        assert!(matches!(
            Parser::new("<a foo=\"bar").collect_events(),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_references_are_reported() {
        assert!(matches!(
            Parser::new("<a>&nope;</a>").collect_events(),
            Err(XmlError::BadReference { .. })
        ));
        assert!(matches!(
            Parser::new("<a>&#x110000;</a>").collect_events(),
            Err(XmlError::BadReference { .. })
        ));
    }

    #[test]
    fn error_positions_track_lines() {
        let err = Parser::new("<a>\n  <b x=>\n</a>")
            .collect_events()
            .unwrap_err();
        match err {
            XmlError::Syntax { pos, .. } => assert_eq!(pos.line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unicode_text_survives() {
        let evs = events("<r>héllo wörld — ünïcode</r>");
        assert_eq!(evs[1], Event::Text("héllo wörld — ünïcode".to_string()));
    }

    #[test]
    fn whitespace_only_text_is_preserved_inside_root() {
        let evs = events("<r> <a/> </r>");
        assert_eq!(evs[1], Event::Text(" ".to_string()));
        assert_eq!(evs[4], Event::Text(" ".to_string()));
    }
}
