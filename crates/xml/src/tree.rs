//! An owned XML document tree.
//!
//! The tree serves three roles in the reproduction:
//!
//! 1. **Shredder input** for subtree inserts: XUpdate's
//!    `<xupdate:element>` may contain nested XML, which the executor first
//!    builds as a [`Node`] and then shreds into tuples.
//! 2. **Oracle** for tests: axis steps and update semantics over the
//!    relational encodings are checked against a straightforward DOM
//!    evaluation.
//! 3. **Serialization target** when reconstructing documents.

use crate::parser::{Event, Parser};
use crate::{QName, Result, XmlError};

/// The kind of a tree node, mirroring the paper's `kind` column
/// (Figure 5: the `kind` column "determines to which table `ref` refers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element node.
    Element,
    /// A text node.
    Text,
    /// A comment node.
    Comment,
    /// A processing-instruction node.
    ProcessingInstruction,
}

/// One node of the owned tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Element with attributes and children in document order.
    Element {
        /// Element name.
        name: QName,
        /// Attributes in document order.
        attributes: Vec<(QName, String)>,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// Character data.
    Text(String),
    /// Comment.
    Comment(String),
    /// Processing instruction.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

impl Node {
    /// Creates an element node with no attributes or children.
    pub fn element(name: impl Into<String>) -> Node {
        Node::Element {
            name: QName::local(name.into()),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Creates a text node.
    pub fn text(t: impl Into<String>) -> Node {
        Node::Text(t.into())
    }

    /// Builder-style: adds a child and returns the element.
    ///
    /// # Panics
    /// Panics when called on a non-element node (builder misuse).
    pub fn with_child(mut self, child: Node) -> Node {
        match &mut self {
            Node::Element { children, .. } => children.push(child),
            _ => panic!("with_child on a non-element node"),
        }
        self
    }

    /// Builder-style: adds an attribute and returns the element.
    ///
    /// # Panics
    /// Panics when called on a non-element node (builder misuse).
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Node {
        match &mut self {
            Node::Element { attributes, .. } => {
                attributes.push((QName::local(name.into()), value.into()))
            }
            _ => panic!("with_attr on a non-element node"),
        }
        self
    }

    /// The node's kind.
    pub fn kind(&self) -> NodeKind {
        match self {
            Node::Element { .. } => NodeKind::Element,
            Node::Text(_) => NodeKind::Text,
            Node::Comment(_) => NodeKind::Comment,
            Node::ProcessingInstruction { .. } => NodeKind::ProcessingInstruction,
        }
    }

    /// Children slice (empty for non-elements).
    pub fn children(&self) -> &[Node] {
        match self {
            Node::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// Mutable children (empty for non-elements).
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        const EMPTY: Vec<Node> = Vec::new();
        match self {
            Node::Element { children, .. } => children,
            _ => {
                // Non-elements have no children; hand out a leaked empty
                // vec would be wrong — instead panic, as this is misuse.
                let _ = EMPTY;
                panic!("children_mut on a non-element node")
            }
        }
    }

    /// Element name, if this is an element.
    pub fn name(&self) -> Option<&QName> {
        match self {
            Node::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attributes slice (empty for non-elements).
    pub fn attributes(&self) -> &[(QName, String)] {
        match self {
            Node::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Number of *tree tuples* this subtree shreds into: 1 for the node
    /// itself plus all descendants (attributes live in their own table
    /// and do not count, exactly like the paper's `size` column).
    pub fn tuple_count(&self) -> u64 {
        1 + self.children().iter().map(Node::tuple_count).sum::<u64>()
    }

    /// Concatenated descendant text (the XPath string value of an
    /// element).
    pub fn string_value(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        match self {
            Node::Text(t) => out.push_str(t),
            Node::Element { children, .. } => {
                for c in children {
                    c.collect_text(out);
                }
            }
            _ => {}
        }
    }
}

/// A parsed document: an optional prolog (comments/PIs before the root),
/// the root element, and an epilog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Comments / processing instructions before the root element.
    pub prolog: Vec<Node>,
    /// The root element.
    pub root: Node,
    /// Comments / processing instructions after the root element.
    pub epilog: Vec<Node>,
}

impl Document {
    /// Parses a document from text.
    pub fn parse(input: &str) -> Result<Document> {
        let mut parser = Parser::new(input);
        let mut prolog = Vec::new();
        let mut epilog = Vec::new();
        let mut root: Option<Node> = None;
        // Stack of elements under construction.
        let mut stack: Vec<Node> = Vec::new();
        while let Some(ev) = parser.next_event()? {
            match ev {
                Event::StartElement { name, attributes } => {
                    stack.push(Node::Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                Event::EndElement { .. } => {
                    let done = stack.pop().expect("parser guarantees balance");
                    match stack.last_mut() {
                        Some(Node::Element { children, .. }) => children.push(done),
                        Some(_) => unreachable!("only elements are stacked"),
                        None => root = Some(done),
                    }
                }
                Event::Text(t) => match stack.last_mut() {
                    Some(Node::Element { children, .. }) => children.push(Node::Text(t)),
                    _ => {
                        return Err(XmlError::Structure {
                            message: "text outside the root element".into(),
                        })
                    }
                },
                Event::Comment(c) => {
                    let node = Node::Comment(c);
                    match stack.last_mut() {
                        Some(Node::Element { children, .. }) => children.push(node),
                        _ => {
                            if root.is_none() {
                                prolog.push(node)
                            } else {
                                epilog.push(node)
                            }
                        }
                    }
                }
                Event::ProcessingInstruction { target, data } => {
                    let node = Node::ProcessingInstruction { target, data };
                    match stack.last_mut() {
                        Some(Node::Element { children, .. }) => children.push(node),
                        _ => {
                            if root.is_none() {
                                prolog.push(node)
                            } else {
                                epilog.push(node)
                            }
                        }
                    }
                }
            }
        }
        match root {
            Some(root) => Ok(Document {
                prolog,
                root,
                epilog,
            }),
            None => Err(XmlError::Structure {
                message: "document has no root element".into(),
            }),
        }
    }

    /// Parses a *fragment*: text that contains exactly one element (used
    /// for XUpdate `<xupdate:element>` content).
    pub fn parse_fragment(input: &str) -> Result<Node> {
        Ok(Document::parse(input)?.root)
    }

    /// Total number of tree tuples the document shreds into.
    pub fn tuple_count(&self) -> u64 {
        self.root.tuple_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let d = Document::parse("<a><b><c/></b>text<b2 k=\"v\"/></a>").unwrap();
        assert_eq!(d.root.name().unwrap().local, "a");
        assert_eq!(d.root.children().len(), 3);
        assert_eq!(
            d.root.children()[0].children()[0].name().unwrap().local,
            "c"
        );
        assert_eq!(d.root.children()[1], Node::Text("text".into()));
        assert_eq!(d.root.children()[2].attributes()[0].1, "v".to_string());
    }

    #[test]
    fn prolog_and_epilog_captured() {
        let d = Document::parse("<!--p--><r/><!--e-->").unwrap();
        assert_eq!(d.prolog, vec![Node::Comment("p".into())]);
        assert_eq!(d.epilog, vec![Node::Comment("e".into())]);
    }

    #[test]
    fn tuple_count_matches_paper_example() {
        // Figure 2: 10 element nodes a..j.
        let d = Document::parse(
            "<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>",
        )
        .unwrap();
        assert_eq!(d.tuple_count(), 10);
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let d = Document::parse("<a>x<b>y<c>z</c></b>w</a>").unwrap();
        assert_eq!(d.root.string_value(), "xyzw");
    }

    #[test]
    fn builder_helpers() {
        let n = Node::element("k")
            .with_attr("id", "7")
            .with_child(Node::element("l"))
            .with_child(Node::text("hi"));
        assert_eq!(n.children().len(), 2);
        assert_eq!(n.tuple_count(), 3);
        assert_eq!(n.attributes().len(), 1);
    }

    #[test]
    fn parse_fragment_returns_single_element() {
        let n = Document::parse_fragment("<k><l/><m/></k>").unwrap();
        assert_eq!(n.tuple_count(), 3);
    }
}
