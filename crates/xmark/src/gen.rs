//! Deterministic XMark-shaped document generator.
//!
//! Reproduces the structure the XMark benchmark's `xmlgen` emits (an
//! internet-auction site) with the element proportions of the published
//! benchmark: per scale factor 1.0 approximately 21750 items, 25500
//! persons, 12000 open and 9750 closed auctions and 1000 categories.
//! All randomness flows from one seeded [`StdRng`], so a `(scale, seed)`
//! pair always yields byte-identical XML — the `ro` and `up` schemas in
//! the Figure 9 harness load exactly the same document.

use crate::rng::StdRng;
use crate::text;
use std::fmt::Write;

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XMarkConfig {
    /// XMark scale factor (1.0 ≈ 100 MB in the original benchmark).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl XMarkConfig {
    /// A scaled configuration.
    pub fn scaled(scale: f64, seed: u64) -> Self {
        XMarkConfig { scale, seed }
    }

    /// A very small document (hundreds of nodes) for unit tests.
    pub fn tiny(seed: u64) -> Self {
        XMarkConfig {
            scale: 0.0008,
            seed,
        }
    }

    fn count(&self, base: f64, min: usize) -> usize {
        ((base * self.scale).round() as usize).max(min)
    }

    /// Number of items across all regions.
    pub fn items(&self) -> usize {
        self.count(21750.0, 6)
    }

    /// Number of persons.
    pub fn persons(&self) -> usize {
        self.count(25500.0, 8)
    }

    /// Number of open auctions.
    pub fn open_auctions(&self) -> usize {
        self.count(12000.0, 4)
    }

    /// Number of closed auctions.
    pub fn closed_auctions(&self) -> usize {
        self.count(9750.0, 4)
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.count(1000.0, 3)
    }
}

/// Shares of items per region, mirroring XMark's continental skew.
const REGIONS: &[(&str, f64)] = &[
    ("africa", 0.10),
    ("asia", 0.30),
    ("australia", 0.05),
    ("europe", 0.25),
    ("namerica", 0.25),
    ("samerica", 0.05),
];

/// Generates the document as XML text.
pub fn generate(cfg: &XMarkConfig) -> String {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = String::with_capacity((cfg.scale * 100_000_000.0) as usize / 2 + 4096);
    let g = &mut Gen {
        rng: &mut rng,
        cfg: *cfg,
        out: &mut out,
    };
    g.site();
    out
}

/// Generates and parses into an owned tree (convenience for shredders).
pub fn generate_tree(cfg: &XMarkConfig) -> mbxq_xml::Node {
    let xml = generate(cfg);
    mbxq_xml::Document::parse(&xml)
        .expect("generator output is well-formed")
        .root
}

/// Generates the document and splits the root's children into `parts`
/// contiguous ranges, each serialized as its own `<site>` document —
/// the shape that shreds one part per catalog shard. `parts` is clamped
/// to the child count; concatenating the parts' children in order
/// reproduces the whole document's children in order.
pub fn generate_parts(cfg: &XMarkConfig, parts: usize) -> Vec<String> {
    let root = generate_tree(cfg);
    let children = root.children();
    let parts = parts.clamp(1, children.len().max(1));
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 0..parts {
        let len = (children.len() - start) / (parts - k);
        let mut xml = String::from("<site>");
        for child in &children[start..start + len] {
            mbxq_xml::serialize_node(child, &mut xml);
        }
        xml.push_str("</site>");
        out.push(xml);
        start += len;
    }
    out
}

struct Gen<'a> {
    rng: &'a mut StdRng,
    cfg: XMarkConfig,
    out: &'a mut String,
}

impl Gen<'_> {
    fn site(&mut self) {
        self.out.push_str("<site>");
        self.regions();
        self.categories();
        self.catgraph();
        self.people();
        self.open_auctions();
        self.closed_auctions();
        self.out.push_str("</site>");
    }

    fn regions(&mut self) {
        let total = self.cfg.items();
        self.out.push_str("<regions>");
        let mut next_item = 0usize;
        for (i, &(region, share)) in REGIONS.iter().enumerate() {
            let n = if i + 1 == REGIONS.len() {
                total - next_item
            } else {
                ((total as f64) * share).round() as usize
            };
            let _ = write!(self.out, "<{region}>");
            for _ in 0..n.min(total - next_item) {
                self.item(next_item);
                next_item += 1;
            }
            let _ = write!(self.out, "</{region}>");
        }
        self.out.push_str("</regions>");
    }

    fn item(&mut self, id: usize) {
        let country = text::COUNTRIES[self.rng.gen_range(0..text::COUNTRIES.len())];
        let quantity = self.rng.gen_range(1..6);
        let _ = write!(
            self.out,
            "<item id=\"item{id}\"><location>{country}</location>\
             <quantity>{quantity}</quantity><name>{}</name>\
             <payment>Creditcard</payment>",
            text::words(self.rng, 3)
        );
        self.description();
        self.out
            .push_str("<shipping>Will ship internationally</shipping>");
        let ncat = self.rng.gen_range(1..4usize).min(self.cfg.categories());
        for _ in 0..ncat {
            let c = self.rng.gen_range(0..self.cfg.categories());
            let _ = write!(self.out, "<incategory category=\"category{c}\"/>");
        }
        self.out.push_str("<mailbox>");
        for _ in 0..self.rng.gen_range(0..3) {
            let _ = write!(
                self.out,
                "<mail><from>{} {}</from><to>{} {}</to>\
                 <date>{}</date><text>{}</text></mail>",
                first(self.rng),
                last(self.rng),
                first(self.rng),
                last(self.rng),
                date(self.rng),
                text::sentence(self.rng)
            );
        }
        self.out.push_str("</mailbox></item>");
    }

    /// `<description>` with either flat text or the nested
    /// `parlist/listitem` markup Q15/Q16 traverse.
    fn description(&mut self) {
        self.out.push_str("<description>");
        if self.rng.gen_bool(0.4) {
            // Nested markup, two levels deep.
            let _ = write!(
                self.out,
                "<parlist><listitem><text>{} <keyword>{}</keyword> {} <bold>{}</bold></text>\
                 </listitem><listitem><parlist><listitem><text><emph><keyword>{}</keyword>\
                 </emph> {}</text></listitem></parlist></listitem></parlist>",
                text::sentence(self.rng),
                text::word(self.rng),
                text::sentence(self.rng),
                text::word(self.rng),
                text::word(self.rng),
                text::sentence(self.rng),
            );
        } else {
            let _ = write!(self.out, "<text>{}</text>", text::sentence(self.rng));
        }
        self.out.push_str("</description>");
    }

    fn categories(&mut self) {
        self.out.push_str("<categories>");
        for c in 0..self.cfg.categories() {
            let _ = write!(
                self.out,
                "<category id=\"category{c}\"><name>{}</name>",
                text::words(self.rng, 2)
            );
            self.description();
            self.out.push_str("</category>");
        }
        self.out.push_str("</categories>");
    }

    fn catgraph(&mut self) {
        let n = self.cfg.categories();
        self.out.push_str("<catgraph>");
        for _ in 0..n.saturating_mul(2) {
            let from = self.rng.gen_range(0..n);
            let to = self.rng.gen_range(0..n);
            let _ = write!(
                self.out,
                "<edge from=\"category{from}\" to=\"category{to}\"/>"
            );
        }
        self.out.push_str("</catgraph>");
    }

    fn people(&mut self) {
        self.out.push_str("<people>");
        for p in 0..self.cfg.persons() {
            let fname = first(self.rng);
            let lname = last(self.rng);
            let _ = write!(
                self.out,
                "<person id=\"person{p}\"><name>{fname} {lname}</name>\
                 <emailaddress>mailto:{fname}.{lname}@example.net</emailaddress>",
            );
            if self.rng.gen_bool(0.6) {
                let _ = write!(
                    self.out,
                    "<phone>+{} ({}) {}</phone>",
                    self.rng.gen_range(1..99),
                    self.rng.gen_range(100..999),
                    self.rng.gen_range(1_000_000..9_999_999)
                );
            }
            if self.rng.gen_bool(0.5) {
                let city = text::CITIES[self.rng.gen_range(0..text::CITIES.len())];
                let country = text::COUNTRIES[self.rng.gen_range(0..text::COUNTRIES.len())];
                let _ = write!(
                    self.out,
                    "<address><street>{} {} St</street><city>{city}</city>\
                     <country>{country}</country><zipcode>{}</zipcode></address>",
                    self.rng.gen_range(1..99),
                    text::word(self.rng),
                    self.rng.gen_range(10000..99999)
                );
            }
            if self.rng.gen_bool(0.5) {
                let _ = write!(
                    self.out,
                    "<homepage>http://www.example.net/~{lname}{p}</homepage>"
                );
            }
            if self.rng.gen_bool(0.7) {
                let _ = write!(
                    self.out,
                    "<creditcard>{} {} {} {}</creditcard>",
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999)
                );
            }
            // Profile; income drives Q11/Q12/Q20. About 10 % of profiles
            // carry no income attribute (Q20's fourth bracket).
            if self.rng.gen_bool(0.9) {
                let income = (self.rng.gen_range(20_000.0..150_000.0f64) * 100.0).round() / 100.0;
                let _ = write!(self.out, "<profile income=\"{income:.2}\">");
            } else {
                self.out.push_str("<profile>");
            }
            for _ in 0..self.rng.gen_range(0..4usize) {
                let c = self.rng.gen_range(0..self.cfg.categories());
                let _ = write!(self.out, "<interest category=\"category{c}\"/>");
            }
            if self.rng.gen_bool(0.4) {
                let _ = write!(self.out, "<education>Graduate School</education>");
            }
            if self.rng.gen_bool(0.5) {
                let g = if self.rng.gen_bool(0.5) {
                    "male"
                } else {
                    "female"
                };
                let _ = write!(self.out, "<gender>{g}</gender>");
            }
            let _ = write!(
                self.out,
                "<business>{}</business>",
                if self.rng.gen_bool(0.5) { "Yes" } else { "No" }
            );
            if self.rng.gen_bool(0.6) {
                let _ = write!(self.out, "<age>{}</age>", self.rng.gen_range(18..80));
            }
            self.out.push_str("</profile>");
            // Watches reference open auctions.
            self.out.push_str("<watches>");
            for _ in 0..self.rng.gen_range(0..3usize) {
                let a = self.rng.gen_range(0..self.cfg.open_auctions());
                let _ = write!(self.out, "<watch open_auction=\"open_auction{a}\"/>");
            }
            self.out.push_str("</watches></person>");
        }
        self.out.push_str("</people>");
    }

    fn open_auctions(&mut self) {
        self.out.push_str("<open_auctions>");
        for a in 0..self.cfg.open_auctions() {
            let initial = (self.rng.gen_range(1.0..100.0f64) * 100.0).round() / 100.0;
            let _ = write!(
                self.out,
                "<open_auction id=\"open_auction{a}\"><initial>{initial:.2}</initial>"
            );
            let nbid = self.rng.gen_range(0..6usize);
            let mut current = initial;
            for _ in 0..nbid {
                let p = self.rng.gen_range(0..self.cfg.persons());
                let inc = (self.rng.gen_range(1.5..12.0f64) * 100.0).round() / 100.0;
                current += inc;
                let _ = write!(
                    self.out,
                    "<bidder><date>{}</date><time>{}</time>\
                     <personref person=\"person{p}\"/><increase>{inc:.2}</increase></bidder>",
                    date(self.rng),
                    time(self.rng)
                );
            }
            let _ = write!(self.out, "<current>{current:.2}</current>");
            if self.rng.gen_bool(0.3) {
                self.out.push_str("<privacy>Yes</privacy>");
            }
            let item = self.rng.gen_range(0..self.cfg.items());
            let seller = self.rng.gen_range(0..self.cfg.persons());
            let _ = write!(
                self.out,
                "<itemref item=\"item{item}\"/><seller person=\"person{seller}\"/>"
            );
            self.annotation();
            let _ = write!(
                self.out,
                "<quantity>{}</quantity><type>Regular</type>\
                 <interval><start>{}</start><end>{}</end></interval></open_auction>",
                self.rng.gen_range(1..4),
                date(self.rng),
                date(self.rng)
            );
        }
        self.out.push_str("</open_auctions>");
    }

    fn closed_auctions(&mut self) {
        self.out.push_str("<closed_auctions>");
        for _ in 0..self.cfg.closed_auctions() {
            let seller = self.rng.gen_range(0..self.cfg.persons());
            let buyer = self.rng.gen_range(0..self.cfg.persons());
            let item = self.rng.gen_range(0..self.cfg.items());
            let price = (self.rng.gen_range(5.0..200.0f64) * 100.0).round() / 100.0;
            let _ = write!(
                self.out,
                "<closed_auction><seller person=\"person{seller}\"/>\
                 <buyer person=\"person{buyer}\"/><itemref item=\"item{item}\"/>\
                 <price>{price:.2}</price><date>{}</date>\
                 <quantity>{}</quantity><type>Regular</type>",
                date(self.rng),
                self.rng.gen_range(1..4)
            );
            self.annotation();
            self.out.push_str("</closed_auction>");
        }
        self.out.push_str("</closed_auctions>");
    }

    fn annotation(&mut self) {
        let p = self.rng.gen_range(0..self.cfg.persons());
        let _ = write!(self.out, "<annotation><author person=\"person{p}\"/>");
        self.description();
        let _ = write!(
            self.out,
            "<happiness>{}</happiness></annotation>",
            self.rng.gen_range(1..11)
        );
    }
}

fn first(rng: &mut StdRng) -> &'static str {
    text::FIRST_NAMES[rng.gen_range(0..text::FIRST_NAMES.len())]
}

fn last(rng: &mut StdRng) -> &'static str {
    text::LAST_NAMES[rng.gen_range(0..text::LAST_NAMES.len())]
}

fn date(rng: &mut StdRng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.gen_range(1..13),
        rng.gen_range(1..29),
        rng.gen_range(1998..2006)
    )
}

fn time(rng: &mut StdRng) -> String {
    format!(
        "{:02}:{:02}:{:02}",
        rng.gen_range(0..24),
        rng.gen_range(0..60),
        rng.gen_range(0..60)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_with_factor() {
        let c = XMarkConfig::scaled(0.01, 1);
        assert_eq!(c.items(), 218);
        assert_eq!(c.persons(), 255);
        assert_eq!(c.open_auctions(), 120);
        assert_eq!(c.closed_auctions(), 98);
        assert_eq!(c.categories(), 10);
    }

    #[test]
    fn minimums_keep_tiny_docs_non_degenerate() {
        let c = XMarkConfig::scaled(0.00001, 1);
        assert!(c.items() >= 6 && c.persons() >= 8);
    }

    #[test]
    fn output_contains_the_expected_sections() {
        let xml = generate(&XMarkConfig::tiny(9));
        for marker in [
            "<regions>",
            "<africa>",
            "<categories>",
            "<catgraph>",
            "<people>",
            "<open_auctions>",
            "<closed_auctions>",
            "person0",
            "<parlist>",
        ] {
            assert!(xml.contains(marker), "missing {marker}");
        }
    }

    #[test]
    fn size_tracks_scale_roughly() {
        let s1 = generate(&XMarkConfig::scaled(0.002, 1)).len();
        let s2 = generate(&XMarkConfig::scaled(0.004, 1)).len();
        let ratio = s2 as f64 / s1 as f64;
        assert!((1.5..2.6).contains(&ratio), "ratio {ratio}");
    }
}
