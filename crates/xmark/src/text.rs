//! Word material for the generator.
//!
//! The original XMark `xmlgen` fills text content with Shakespeare
//! vocabulary; we use a fixed word list (with the marker words the
//! queries grep for, e.g. `gold` for Q14) sampled by a seeded RNG, so
//! documents are deterministic per seed and text-predicate selectivities
//! are stable across runs.

use crate::rng::StdRng;

/// Vocabulary sampled for prose.
pub(crate) const WORDS: &[&str] = &[
    "against",
    "ancient",
    "argosies",
    "beseech",
    "bondman",
    "calamity",
    "candle",
    "caesar",
    "disgrace",
    "dream",
    "emerald",
    "empire",
    "fortune",
    "gentle",
    "gold",
    "gracious",
    "honour",
    "hollow",
    "juliet",
    "kingdom",
    "labour",
    "lament",
    "marble",
    "merchant",
    "midnight",
    "mirth",
    "noble",
    "oracle",
    "orchard",
    "pageant",
    "purse",
    "quarrel",
    "raiment",
    "reason",
    "romeo",
    "scepter",
    "shadow",
    "silver",
    "sonnet",
    "sovereign",
    "tempest",
    "thunder",
    "treason",
    "twilight",
    "velvet",
    "venture",
    "whisper",
    "wonder",
];

/// Location / country names for addresses and item locations.
pub(crate) const COUNTRIES: &[&str] = &[
    "United States",
    "Germany",
    "Netherlands",
    "Japan",
    "Brazil",
    "Kenya",
    "Australia",
    "India",
    "Canada",
    "France",
    "Italy",
    "Spain",
];

/// City names.
pub(crate) const CITIES: &[&str] = &[
    "Amsterdam",
    "Konstanz",
    "Kyoto",
    "Nairobi",
    "Recife",
    "Perth",
    "Pune",
    "Toronto",
    "Lyon",
    "Turin",
    "Sevilla",
    "Boston",
];

/// Personal names (first) for `<name>` elements.
pub(crate) const FIRST_NAMES: &[&str] = &[
    "Ada",
    "Alan",
    "Barbara",
    "Edsger",
    "Grace",
    "Hedy",
    "John",
    "Katherine",
    "Ken",
    "Leslie",
    "Margaret",
    "Niklaus",
    "Radia",
    "Tony",
];

/// Personal names (last).
pub(crate) const LAST_NAMES: &[&str] = &[
    "Lovelace", "Turing", "Liskov", "Dijkstra", "Hopper", "Lamarr", "Backus", "Johnson",
    "Thompson", "Lamport", "Hamilton", "Wirth", "Perlman", "Hoare",
];

/// A random word.
pub(crate) fn word(rng: &mut StdRng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

/// `n` random words joined by spaces.
pub(crate) fn words(rng: &mut StdRng, n: usize) -> String {
    let mut out = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(word(rng));
    }
    out
}

/// A sentence of 4–14 words.
pub(crate) fn sentence(rng: &mut StdRng) -> String {
    let n = rng.gen_range(4..15usize);
    words(rng, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(words(&mut a, 20), words(&mut b, 20));
    }

    #[test]
    fn gold_is_in_the_vocabulary() {
        // Q14's text predicate depends on it.
        assert!(WORDS.contains(&"gold"));
    }
}
