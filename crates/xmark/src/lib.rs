//! `mbxq-xmark` — the XMark benchmark workload (§4.1 of the paper).
//!
//! The paper's evaluation runs "the XMark benchmark" at document sizes
//! from 1.1 MB to 1.1 GB and reports, for queries Q1–Q20, the evaluation
//! time on the read-only schema (`ro`) versus the updateable schema
//! (`up`) — Figure 9. This crate supplies both halves of that workload:
//!
//! * [`gen`] — a deterministic, seeded generator that produces documents
//!   with the XMark *shape* (an auction site: regions/items, people with
//!   profiles and watches, open/closed auctions with bidders, categories
//!   and a category graph, and the `parlist/listitem` description markup
//!   the deep-path queries traverse). The original `xmlgen` is not
//!   redistributable here, so this is a faithful synthetic equivalent;
//!   the scale knob calibrates to approximate output bytes.
//! * [`queries`] — hand-compiled plans for Q1–Q20 against the engine API
//!   (staircase-join steps, loop-lifted joins, value scans). They play
//!   the role of Pathfinder's compiled plans: both storage schemas run
//!   the *identical* plan, which is precisely the comparison Figure 9
//!   makes.

pub mod gen;
pub mod queries;
pub mod rng;
mod text;

pub use gen::{generate, generate_parts, generate_tree, XMarkConfig};
pub use queries::{run_query, run_query_opts, QueryResult, QUERY_COUNT, QUERY_PATHS};

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::{PageConfig, PagedDoc, ReadOnlyDoc, TreeView};

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&XMarkConfig::tiny(42));
        let b = generate(&XMarkConfig::tiny(42));
        assert_eq!(a, b);
        let c = generate(&XMarkConfig::tiny(7));
        assert_ne!(a, c);
    }

    #[test]
    fn generated_document_parses_and_shreds() {
        let xml = generate(&XMarkConfig::tiny(1));
        let ro = ReadOnlyDoc::parse_str(&xml).unwrap();
        assert!(ro.len() > 100);
        let up = PagedDoc::parse_str(&xml, PageConfig::new(64, 80).unwrap()).unwrap();
        mbxq_storage::invariants::check_paged(&up).unwrap();
        assert_eq!(ro.len() as u64, up.used_count());
    }

    #[test]
    fn scale_controls_size() {
        let small = generate(&XMarkConfig::scaled(0.001, 1));
        let bigger = generate(&XMarkConfig::scaled(0.002, 1));
        assert!(bigger.len() > small.len());
    }

    #[test]
    fn all_twenty_queries_run_and_agree_across_schemas() {
        let xml = generate(&XMarkConfig::tiny(3));
        let ro = ReadOnlyDoc::parse_str(&xml).unwrap();
        let up = PagedDoc::parse_str(&xml, PageConfig::new(64, 80).unwrap()).unwrap();
        for q in 1..=QUERY_COUNT {
            let a = run_query(&ro, q).unwrap_or_else(|e| panic!("Q{q} on ro: {e}"));
            let b = run_query(&up, q).unwrap_or_else(|e| panic!("Q{q} on up: {e}"));
            assert_eq!(a, b, "Q{q} diverged between read-only and paged schemas");
        }
    }

    #[test]
    fn queries_touch_real_data() {
        // On a tiny but non-degenerate document, the structural queries
        // must produce non-empty results.
        let xml = generate(&XMarkConfig::tiny(5));
        let ro = ReadOnlyDoc::parse_str(&xml).unwrap();
        for q in [1usize, 2, 5, 6, 7, 8, 11, 13, 17, 19, 20] {
            let r = run_query(&ro, q).unwrap();
            assert!(r.rows > 0, "Q{q} returned no rows");
        }
    }
}
