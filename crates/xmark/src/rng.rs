//! Minimal seeded PRNG for the generator.
//!
//! The workload only needs *deterministic* pseudo-randomness — a `(scale,
//! seed)` pair must always produce byte-identical XML so the `ro` and
//! `up` schemas load the same document. A xoshiro256** generator seeded
//! through SplitMix64 provides that without an external dependency; the
//! API mirrors the subset of `rand` the generator uses (`seed_from_u64`,
//! `gen_range`, `gen_bool`).

use std::ops::Range;

/// A small, fast, seedable generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value (also the substrate for the integration
    /// test suite's generator helpers).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` below `bound` (> 0), by widening multiply — unbiased
    /// enough for workload generation and branch-free.
    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range (mirrors `rand::Rng`).
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// Range types [`StdRng::gen_range`] accepts.
pub trait RangeSample {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl RangeSample for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl RangeSample for Range<i32> {
    type Output = i32;
    fn sample(self, rng: &mut StdRng) -> i32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below((self.end - self.start) as u64) as i32
    }
}

impl RangeSample for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5..5);
            assert!((-5..5).contains(&y));
            let z = r.gen_range(1.0..2.0f64);
            assert!((1.0..2.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
